//! GraphDef / TensorProto serialization and checkpointing.
//!
//! Graphs and variable checkpoints serialize through `tfhpc-proto`'s
//! protobuf-style wire format, subject to the same 2 GB message limit
//! the paper discusses (§IV: an unrolled-loop graph can exceed it; the
//! fix — keeping state in variables and running only the loop body —
//! is exactly how the CG application is written).
//!
//! `PyFunc` and `Custom` nodes are not serializable, matching
//! TensorFlow's own limitation for `tf.py_func`.

use crate::device::Placement;
use crate::error::{CoreError, Result};
use crate::graph::{Graph, NodeId};
use crate::op::Op;
use crate::resources::Resources;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tfhpc_proto::{frame, Decoder, Encoder, Message, ProtoError};
use tfhpc_tensor::{Complex64, DType, Shape, Storage, Tensor, TensorData};

// ---- TensorProto -----------------------------------------------------------

/// Wire wrapper for [`Tensor`].
pub struct TensorProto(pub Tensor);

impl Message for TensorProto {
    fn encode(&self, enc: &mut Encoder) -> std::result::Result<(), ProtoError> {
        let t = &self.0;
        enc.put_u64(1, t.dtype().wire_id());
        enc.put_packed_u64(
            2,
            &t.shape()
                .dims()
                .iter()
                .map(|d| *d as u64)
                .collect::<Vec<_>>(),
        );
        match t.storage() {
            Storage::Synthetic { seed } => {
                enc.put_bool(3, true);
                enc.put_u64(4, *seed);
            }
            Storage::Dense(data) => {
                enc.put_bool(3, false);
                match data.as_ref() {
                    TensorData::F32(v) => enc.put_packed_f32(5, v),
                    TensorData::F64(v) => enc.put_packed_f64(6, v),
                    TensorData::C128(v) => {
                        let flat: Vec<f64> = v.iter().flat_map(|c| [c.re, c.im]).collect();
                        enc.put_packed_f64(7, &flat);
                    }
                    TensorData::I64(v) => {
                        enc.put_packed_u64(8, &v.iter().map(|x| *x as u64).collect::<Vec<_>>())
                    }
                    TensorData::I32(v) => enc
                        .put_packed_u64(9, &v.iter().map(|x| *x as u32 as u64).collect::<Vec<_>>()),
                    TensorData::U8(v) => enc.put_bytes(10, v),
                    TensorData::Bool(v) => {
                        enc.put_bytes(11, &v.iter().map(|b| *b as u8).collect::<Vec<_>>())
                    }
                }
            }
        }
        Ok(())
    }

    fn decode(bytes: &[u8]) -> std::result::Result<Self, ProtoError> {
        let mut d = Decoder::new(bytes)?;
        let mut dtype = None;
        let mut dims: Vec<usize> = Vec::new();
        let mut synthetic = false;
        let mut seed = 0u64;
        let mut data: Option<TensorData> = None;
        while let Some((field, value)) = d.next_field()? {
            match field {
                1 => {
                    dtype = DType::from_wire_id(value.as_u64()?);
                }
                2 => dims = value.as_packed_u64()?.iter().map(|d| *d as usize).collect(),
                3 => synthetic = value.as_bool()?,
                4 => seed = value.as_u64()?,
                5 => data = Some(TensorData::F32(value.as_packed_f32()?)),
                6 => data = Some(TensorData::F64(value.as_packed_f64()?)),
                7 => {
                    let flat = value.as_packed_f64()?;
                    if flat.len() % 2 != 0 {
                        return Err(ProtoError::InvalidField("c128 payload"));
                    }
                    data = Some(TensorData::C128(
                        flat.chunks_exact(2)
                            .map(|p| Complex64::new(p[0], p[1]))
                            .collect(),
                    ));
                }
                8 => {
                    data = Some(TensorData::I64(
                        value.as_packed_u64()?.iter().map(|x| *x as i64).collect(),
                    ))
                }
                9 => {
                    data = Some(TensorData::I32(
                        value
                            .as_packed_u64()?
                            .iter()
                            .map(|x| *x as u32 as i32)
                            .collect(),
                    ))
                }
                10 => data = Some(TensorData::U8(value.as_bytes()?.to_vec())),
                11 => {
                    data = Some(TensorData::Bool(
                        value.as_bytes()?.iter().map(|b| *b != 0).collect(),
                    ))
                }
                _ => {}
            }
        }
        let dtype = dtype.ok_or(ProtoError::InvalidField("dtype"))?;
        let shape = Shape::new(dims);
        if synthetic {
            return Ok(TensorProto(Tensor::synthetic(dtype, shape, seed)));
        }
        let data = data.ok_or(ProtoError::InvalidField("tensor payload"))?;
        let t = match data {
            TensorData::F32(v) => Tensor::from_f32(shape, v),
            TensorData::F64(v) => Tensor::from_f64(shape, v),
            TensorData::C128(v) => Tensor::from_c128(shape, v),
            TensorData::I32(v) => Tensor::from_i32(shape, v),
            TensorData::I64(v) => Tensor::from_i64(shape, v),
            TensorData::U8(v) => Tensor::from_u8(shape, v),
            TensorData::Bool(v) => Tensor::from_bool(shape, v),
        }
        .map_err(|_| ProtoError::InvalidField("tensor payload length"))?;
        Ok(TensorProto(t))
    }
}

// ---- GraphDef ---------------------------------------------------------------

fn encode_node(g: &Graph, id: NodeId, enc: &mut Encoder) -> Result<()> {
    let node = g.node(id);
    enc.put_str(1, &node.name);
    enc.put_str(2, node.op.name());
    enc.put_packed_u64(
        3,
        &node
            .inputs
            .iter()
            .map(|(n, _)| n.index() as u64)
            .collect::<Vec<_>>(),
    );
    enc.put_packed_u64(
        4,
        &node
            .inputs
            .iter()
            .map(|(_, o)| *o as u64)
            .collect::<Vec<_>>(),
    );
    enc.put_packed_u64(
        5,
        &node
            .control_inputs
            .iter()
            .map(|n| n.index() as u64)
            .collect::<Vec<_>>(),
    );
    enc.put_str(6, &node.device.to_string());
    match &node.op {
        Op::Placeholder { dtype, shape } => {
            enc.put_u64(7, dtype.wire_id());
            if let Some(s) = shape {
                enc.put_packed_u64(8, &s.dims().iter().map(|d| *d as u64).collect::<Vec<_>>());
                enc.put_bool(14, true);
            }
        }
        Op::RandomUniform { dtype, shape, seed } | Op::RandomNormal { dtype, shape, seed } => {
            enc.put_u64(7, dtype.wire_id());
            enc.put_packed_u64(
                8,
                &shape.dims().iter().map(|d| *d as u64).collect::<Vec<_>>(),
            );
            enc.put_u64(9, *seed);
        }
        Op::Scale { factor } => enc.put_f64(10, *factor),
        Op::VarRead { var } | Op::Assign { var } | Op::AssignAdd { var } => enc.put_str(11, var),
        Op::QueueEnqueue { queue } | Op::QueueClose { queue } | Op::QueueSize { queue } => {
            enc.put_str(11, queue)
        }
        Op::QueueDequeue { queue, arity } => {
            enc.put_str(11, queue);
            enc.put_u64(12, *arity as u64);
        }
        Op::DatasetNext { iterator, arity } => {
            enc.put_str(11, iterator);
            enc.put_u64(12, *arity as u64);
        }
        Op::ReadTile { store } | Op::WriteTile { store } => enc.put_str(11, store),
        Op::Reshape { shape } => enc.put_packed_u64(
            8,
            &shape.dims().iter().map(|d| *d as u64).collect::<Vec<_>>(),
        ),
        Op::SliceRange { start, end } | Op::SliceRows { start, end } => {
            enc.put_u64(15, *start as u64);
            enc.put_u64(16, *end as u64);
        }
        Op::Cast { to } => enc.put_u64(7, to.wire_id()),
        Op::Const { value } => {
            enc.put_message(13, &TensorProto(value.clone()))?;
        }
        Op::PyFunc { label, .. } => {
            return Err(CoreError::Graph(format!(
                "py_func `{label}` is not serializable"
            )))
        }
        Op::Custom(k) => {
            return Err(CoreError::Graph(format!(
                "custom op `{}` is not serializable",
                k.name()
            )))
        }
        _ => {}
    }
    Ok(())
}

fn decode_node(bytes: &[u8], g: &mut Graph) -> Result<()> {
    let mut d = Decoder::new(bytes)?;
    let mut name = String::new();
    let mut op_name = String::new();
    let mut in_nodes: Vec<u64> = Vec::new();
    let mut in_outs: Vec<u64> = Vec::new();
    let mut controls: Vec<u64> = Vec::new();
    let mut device = Placement::Auto;
    let mut dtype = DType::F32;
    let mut dims: Vec<usize> = Vec::new();
    let mut have_shape = false;
    let mut seed = 0u64;
    let mut factor = 0f64;
    let mut resource = String::new();
    let mut arity = 0usize;
    let mut slice_start = 0usize;
    let mut slice_end = 0usize;
    let mut const_value: Option<Tensor> = None;
    while let Some((field, value)) = d.next_field()? {
        match field {
            1 => name = value.as_str()?.to_string(),
            2 => op_name = value.as_str()?.to_string(),
            3 => in_nodes = value.as_packed_u64()?,
            4 => in_outs = value.as_packed_u64()?,
            5 => controls = value.as_packed_u64()?,
            6 => device = Placement::parse(value.as_str()?).unwrap_or(Placement::Auto),
            7 => {
                dtype =
                    DType::from_wire_id(value.as_u64()?).ok_or(ProtoError::InvalidField("dtype"))?
            }
            8 => {
                dims = value.as_packed_u64()?.iter().map(|v| *v as usize).collect();
                have_shape = true;
            }
            9 => seed = value.as_u64()?,
            10 => factor = value.as_f64()?,
            11 => resource = value.as_str()?.to_string(),
            12 => arity = value.as_u64()? as usize,
            13 => const_value = Some(TensorProto::decode(value.as_bytes()?)?.0),
            14 => have_shape = value.as_bool()? || have_shape,
            15 => slice_start = value.as_u64()? as usize,
            16 => slice_end = value.as_u64()? as usize,
            _ => {}
        }
    }
    let op = match op_name.as_str() {
        "Placeholder" => Op::Placeholder {
            dtype,
            shape: have_shape.then(|| Shape::new(dims.clone())),
        },
        "Const" => Op::Const {
            value: const_value.ok_or(ProtoError::InvalidField("const value"))?,
        },
        "RandomUniform" => Op::RandomUniform {
            dtype,
            shape: Shape::new(dims.clone()),
            seed,
        },
        "RandomNormal" => Op::RandomNormal {
            dtype,
            shape: Shape::new(dims.clone()),
            seed,
        },
        "VarRead" => Op::VarRead { var: resource },
        "Assign" => Op::Assign { var: resource },
        "AssignAdd" => Op::AssignAdd { var: resource },
        "Add" => Op::Add,
        "Sub" => Op::Sub,
        "Mul" => Op::Mul,
        "Div" => Op::Div,
        "Neg" => Op::Neg,
        "Scale" => Op::Scale { factor },
        "MulScalar" => Op::MulScalar,
        "AddN" => Op::AddN,
        "MatMul" => Op::MatMul,
        "MatVec" => Op::MatVec,
        "Dot" => Op::Dot,
        "Sum" => Op::Sum,
        "Norm2" => Op::Norm2,
        "Max" => Op::Max,
        "Sqrt" => Op::Sqrt,
        "FFT" => Op::Fft,
        "Reshape" => Op::Reshape {
            shape: Shape::new(dims.clone()),
        },
        "SliceRange" => Op::SliceRange {
            start: slice_start,
            end: slice_end,
        },
        "SliceRows" => Op::SliceRows {
            start: slice_start,
            end: slice_end,
        },
        "ConcatVecs" => Op::ConcatVecs,
        "Transpose" => Op::Transpose,
        "Cast" => Op::Cast { to: dtype },
        "Identity" => Op::Identity,
        "NoOp" => Op::NoOp,
        "QueueEnqueue" => Op::QueueEnqueue { queue: resource },
        "QueueDequeue" => Op::QueueDequeue {
            queue: resource,
            arity,
        },
        "QueueClose" => Op::QueueClose { queue: resource },
        "QueueSize" => Op::QueueSize { queue: resource },
        "DatasetNext" => Op::DatasetNext {
            iterator: resource,
            arity,
        },
        "ReadTile" => Op::ReadTile { store: resource },
        "WriteTile" => Op::WriteTile { store: resource },
        other => return Err(CoreError::Graph(format!("cannot deserialize op `{other}`"))),
    };
    let inputs = in_nodes
        .iter()
        .zip(in_outs.iter())
        .map(|(n, o)| (NodeId(*n as usize), *o as usize))
        .collect();
    let control_inputs = controls.iter().map(|n| NodeId(*n as usize)).collect();
    g.push_raw(name, op, inputs, control_inputs, device);
    Ok(())
}

/// Serialize a graph to bytes (errors past 2 GB, like TensorFlow).
pub fn graph_to_bytes(g: &Graph) -> Result<Vec<u8>> {
    let mut enc = Encoder::new();
    for node in g.nodes() {
        let mut inner = Encoder::new();
        encode_node(g, node.id, &mut inner)?;
        enc.put_bytes(1, &inner.finish()?);
    }
    Ok(enc.finish()?)
}

/// Rebuild a graph from bytes.
pub fn graph_from_bytes(bytes: &[u8]) -> Result<Graph> {
    let mut d = Decoder::new(bytes)?;
    let mut g = Graph::new();
    while let Some((field, value)) = d.next_field()? {
        if field == 1 {
            decode_node(value.as_bytes()?, &mut g)?;
        }
    }
    Ok(g)
}

// ---- Checkpoints --------------------------------------------------------------

/// Saves and restores variable state (`tf.train.Saver` analogue) —
/// the checkpoint/restart capability §II-B highlights for HPC users.
pub struct Saver;

impl Saver {
    /// Serialize all variables of `resources` to bytes.
    pub fn save_to_bytes(resources: &Resources) -> Result<Vec<u8>> {
        let mut enc = Encoder::new();
        for name in resources.variable_names() {
            let var = resources.variable(&name)?;
            let mut entry = Encoder::new();
            entry.put_str(1, &name);
            entry.put_message(2, &TensorProto(var.read()))?;
            enc.put_bytes(1, &entry.finish()?);
        }
        Ok(enc.finish()?)
    }

    /// Parse a checkpoint payload into `(name, tensor)` pairs without
    /// touching any [`Resources`]. Used to fully validate a candidate
    /// checkpoint *before* applying it, so a corrupt generation can
    /// never leave variables half-restored.
    fn parse_checkpoint(bytes: &[u8]) -> Result<Vec<(String, Tensor)>> {
        let mut d = Decoder::new(bytes)?;
        let mut entries = Vec::new();
        while let Some((field, value)) = d.next_field()? {
            if field != 1 {
                continue;
            }
            let mut entry = Decoder::new(value.as_bytes()?)?;
            let mut name = String::new();
            let mut tensor: Option<Tensor> = None;
            while let Some((f, v)) = entry.next_field()? {
                match f {
                    1 => name = v.as_str()?.to_string(),
                    2 => tensor = Some(TensorProto::decode(v.as_bytes()?)?.0),
                    _ => {}
                }
            }
            let tensor = tensor.ok_or(ProtoError::InvalidField("checkpoint tensor"))?;
            entries.push((name, tensor));
        }
        Ok(entries)
    }

    /// Restore variables from bytes into `resources` (creates or
    /// overwrites).
    pub fn restore_from_bytes(resources: &Arc<Resources>, bytes: &[u8]) -> Result<usize> {
        let entries = Self::parse_checkpoint(bytes)?;
        let count = entries.len();
        for (name, tensor) in entries {
            resources.create_variable(&name, tensor);
        }
        Ok(count)
    }

    /// Save variables to a file: the payload is sealed in a checksummed
    /// frame and written atomically (temp file + rename), so a reader
    /// never observes a half-written checkpoint and any later
    /// corruption is detected on restore.
    pub fn save(resources: &Resources, path: &Path) -> Result<()> {
        let bytes = frame::seal(&Self::save_to_bytes(resources)?);
        atomic_write(path, &bytes)
    }

    /// Restore variables from a file; returns how many were restored.
    /// A failed frame checksum (torn or bit-flipped file) reports
    /// [`CoreError::DataLoss`] naming the file.
    pub fn restore(resources: &Arc<Resources>, path: &Path) -> Result<usize> {
        let bytes = std::fs::read(path).map_err(|e| {
            CoreError::data_loss(format!("checkpoint `{}` unreadable: {e}", path.display()))
        })?;
        let payload = frame::open(&bytes).map_err(|_| {
            CoreError::data_loss(format!(
                "checkpoint `{}` failed checksum verification",
                path.display()
            ))
        })?;
        Self::restore_from_bytes(resources, payload)
    }

    /// Save variables as the next generation in `dir`'s checkpoint
    /// chain, updating the sealed `MANIFEST`. Both the generation file
    /// and the manifest are written atomically; the generation number
    /// is embedded in the sealed payload so a stale file swapped in
    /// under a newer manifest entry is detected on restore. Returns the
    /// generation number written.
    pub fn save_generation(resources: &Resources, dir: &Path) -> Result<u64> {
        std::fs::create_dir_all(dir).map_err(|e| {
            CoreError::Invalid(format!(
                "checkpoint dir `{}` unavailable: {e}",
                dir.display()
            ))
        })?;
        let entries = match read_manifest(dir) {
            Ok(entries) => entries,
            Err(CoreError::NotFound(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        let generation = entries.last().map(|e| e.generation + 1).unwrap_or(0);
        let file = generation_file_name(generation);

        let mut payload = Encoder::new();
        payload.put_u64(1, generation);
        payload.put_bytes(2, &Self::save_to_bytes(resources)?);
        atomic_write(&dir.join(&file), &frame::seal(&payload.finish()?))?;

        let mut chain = entries;
        chain.push(ManifestEntry { generation, file });
        write_manifest(dir, &chain)?;
        Ok(generation)
    }

    /// Restore the newest *valid* generation from `dir`'s checkpoint
    /// chain. Walks the manifest newest-first, skipping generations
    /// whose file fails checksum verification or carries a mismatched
    /// embedded generation (stale file), so a torn latest checkpoint
    /// falls back to the previous good one instead of aborting. A
    /// manifest entry whose file is *missing* is unrecoverable external
    /// damage and reports [`CoreError::DataLoss`] naming the path.
    /// Returns the generation restored.
    pub fn restore_latest(resources: &Arc<Resources>, dir: &Path) -> Result<u64> {
        let entries = read_manifest(dir)?;
        for entry in entries.iter().rev() {
            let path = dir.join(&entry.file);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(CoreError::data_loss(format!(
                        "manifest `{}` references missing checkpoint `{}`",
                        dir.join(MANIFEST_FILE).display(),
                        path.display()
                    )));
                }
                Err(_) => continue,
            };
            let Ok(payload) = frame::open(&bytes) else {
                continue; // torn or bit-flipped: fall back to older gen
            };
            let Ok((embedded_gen, saver_bytes)) = decode_generation_payload(payload) else {
                continue;
            };
            if embedded_gen != entry.generation {
                continue; // stale file under a newer manifest entry
            }
            let Ok(parsed) = Self::parse_checkpoint(&saver_bytes) else {
                continue;
            };
            for (name, tensor) in parsed {
                resources.create_variable(&name, tensor);
            }
            return Ok(entry.generation);
        }
        Err(CoreError::data_loss(format!(
            "no valid checkpoint generation in `{}`",
            dir.display()
        )))
    }

    /// Newest generation number recorded in `dir`'s manifest, if any.
    pub fn latest_generation(dir: &Path) -> Result<Option<u64>> {
        match read_manifest(dir) {
            Ok(entries) => Ok(entries.last().map(|e| e.generation)),
            Err(CoreError::NotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

// ---- Checkpoint generation chain ------------------------------------------

const MANIFEST_FILE: &str = "MANIFEST";

struct ManifestEntry {
    generation: u64,
    file: String,
}

fn generation_file_name(generation: u64) -> String {
    format!("ckpt-{generation:08}.tfhf")
}

/// Write `bytes` to `path` atomically: write a sibling temp file, then
/// rename over the destination. A crash mid-write leaves either the old
/// file or no file — never a torn one — and the rename is the commit
/// point of the checkpoint.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp: PathBuf = path.to_path_buf();
    let mut name = tmp
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    tmp.set_file_name(name);
    std::fs::write(&tmp, bytes).map_err(|e| {
        CoreError::Invalid(format!("checkpoint write `{}` failed: {e}", tmp.display()))
    })?;
    std::fs::rename(&tmp, path).map_err(|e| {
        CoreError::Invalid(format!(
            "checkpoint rename `{}` -> `{}` failed: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

fn write_manifest(dir: &Path, entries: &[ManifestEntry]) -> Result<()> {
    let mut enc = Encoder::new();
    for entry in entries {
        let mut inner = Encoder::new();
        inner.put_u64(1, entry.generation);
        inner.put_str(2, &entry.file);
        enc.put_bytes(1, &inner.finish()?);
    }
    atomic_write(&dir.join(MANIFEST_FILE), &frame::seal(&enc.finish()?))
}

fn read_manifest(dir: &Path) -> Result<Vec<ManifestEntry>> {
    let path = dir.join(MANIFEST_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(CoreError::NotFound(format!(
                "checkpoint manifest `{}`",
                path.display()
            )));
        }
        Err(e) => {
            return Err(CoreError::Invalid(format!(
                "manifest `{}` unreadable: {e}",
                path.display()
            )));
        }
    };
    let payload = frame::open(&bytes).map_err(|_| {
        CoreError::data_loss(format!(
            "manifest `{}` failed checksum verification",
            path.display()
        ))
    })?;
    let mut d = Decoder::new(payload)?;
    let mut entries = Vec::new();
    while let Some((field, value)) = d.next_field()? {
        if field != 1 {
            continue;
        }
        let mut inner = Decoder::new(value.as_bytes()?)?;
        let mut generation = 0u64;
        let mut file = String::new();
        while let Some((f, v)) = inner.next_field()? {
            match f {
                1 => generation = v.as_u64()?,
                2 => file = v.as_str()?.to_string(),
                _ => {}
            }
        }
        if file.is_empty() {
            return Err(CoreError::data_loss(format!(
                "manifest `{}` entry for generation {generation} has no file",
                path.display()
            )));
        }
        entries.push(ManifestEntry { generation, file });
    }
    Ok(entries)
}

fn decode_generation_payload(payload: &[u8]) -> Result<(u64, Vec<u8>)> {
    let mut d = Decoder::new(payload)?;
    let mut generation = None;
    let mut bytes = None;
    while let Some((field, value)) = d.next_field()? {
        match field {
            1 => generation = Some(value.as_u64()?),
            2 => bytes = Some(value.as_bytes()?.to_vec()),
            _ => {}
        }
    }
    match (generation, bytes) {
        (Some(g), Some(b)) => Ok((g, b)),
        _ => Err(CoreError::data_loss("generation payload missing fields")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_proto_roundtrips_all_dtypes() {
        let cases = vec![
            Tensor::from_f32([2, 2], vec![1.0, -2.0, 3.5, 0.0]).unwrap(),
            Tensor::from_f64([3], vec![1.0, f64::MIN_POSITIVE, -0.5]).unwrap(),
            Tensor::from_c128([2], vec![Complex64::new(1.0, -1.0), Complex64::I]).unwrap(),
            Tensor::from_i64([2], vec![i64::MIN, i64::MAX]).unwrap(),
            Tensor::from_i32([2], vec![i32::MIN, i32::MAX]).unwrap(),
            Tensor::from_u8([3], vec![0, 128, 255]).unwrap(),
            Tensor::scalar_f64(4.25),
        ];
        for t in cases {
            let bytes = TensorProto(t.clone()).to_bytes().unwrap();
            let back = TensorProto::decode(&bytes).unwrap().0;
            assert_eq!(back.shape(), t.shape());
            assert_eq!(back.dtype(), t.dtype());
            assert_eq!(
                format!("{:?}", back.data().unwrap()),
                format!("{:?}", t.data().unwrap())
            );
        }
    }

    #[test]
    fn synthetic_tensor_roundtrips_as_metadata() {
        let t = Tensor::synthetic(DType::F32, [1 << 16, 1 << 10], 1234);
        let bytes = TensorProto(t.clone()).to_bytes().unwrap();
        // Metadata-only: tiny on the wire despite the huge logical size.
        assert!(bytes.len() < 128);
        let back = TensorProto::decode(&bytes).unwrap().0;
        assert!(back.is_synthetic());
        assert_eq!(back.synthetic_seed(), Some(1234));
        assert_eq!(back.shape(), t.shape());
    }

    #[test]
    fn graphdef_roundtrip_preserves_structure() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::scalar_f64(2.0));
        let p = g.placeholder(DType::F64, None);
        let c = g.add(a, p);
        let d = g.with_device(Placement::Gpu(0), |g| g.scale(c, 3.0));
        let bump = g.assign_add("v", d);
        g.add_control(bump, a).unwrap();

        let bytes = graph_to_bytes(&g).unwrap();
        let g2 = graph_from_bytes(&bytes).unwrap();
        assert_eq!(g2.len(), g.len());
        let n = g2.node(d);
        assert_eq!(n.op.name(), "Scale");
        assert_eq!(n.device, Placement::Gpu(0));
        assert_eq!(g2.node(c).inputs, vec![(a, 0), (p, 0)]);
        assert_eq!(g2.node(bump).control_inputs, vec![a]);

        // The deserialized graph executes identically.
        let s = crate::session::Session::new(
            Arc::new(g2),
            Resources::new(),
            crate::device::DeviceCtx::real(1),
        );
        s.resources().create_variable("v", Tensor::scalar_f64(0.0));
        let out = s.run(&[d], &[(p, Tensor::scalar_f64(1.0))]).unwrap();
        assert_eq!(out[0].scalar_value_f64().unwrap(), 9.0);
    }

    #[test]
    fn slice_concat_graph_roundtrip() {
        let mut g = Graph::new();
        let p = g.placeholder(DType::F64, None);
        let head = g.slice_range(p, 0, 2);
        let tail = g.slice_range(p, 2, 4);
        let swapped = g.concat_vecs(&[tail, head]);
        let bytes = graph_to_bytes(&g).unwrap();
        let g2 = graph_from_bytes(&bytes).unwrap();
        let sess = crate::session::Session::new(
            Arc::new(g2),
            Resources::new(),
            crate::device::DeviceCtx::real(0),
        );
        let out = sess
            .run(
                &[swapped],
                &[(p, Tensor::from_f64([4], vec![1., 2., 3., 4.]).unwrap())],
            )
            .unwrap();
        assert_eq!(out[0].as_f64().unwrap(), &[3., 4., 1., 2.]);
    }

    #[test]
    fn pyfunc_graphs_are_not_serializable() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::scalar_f64(1.0));
        g.py_func("m", &[a], 1, 0.0, Arc::new(|_, i| Ok(i.to_vec())));
        assert!(graph_to_bytes(&g).is_err());
    }

    #[test]
    fn checkpoint_roundtrip() {
        let res = Resources::new();
        res.create_variable("x", Tensor::from_f64([2], vec![1.0, 2.0]).unwrap());
        res.create_variable("step", Tensor::scalar_i64(41));
        let bytes = Saver::save_to_bytes(&res).unwrap();

        let res2 = Resources::new();
        let n = Saver::restore_from_bytes(&res2, &bytes).unwrap();
        assert_eq!(n, 2);
        assert_eq!(
            res2.variable("x").unwrap().read().as_f64().unwrap(),
            &[1.0, 2.0]
        );
        assert_eq!(
            res2.variable("step")
                .unwrap()
                .read()
                .scalar_value_i64()
                .unwrap(),
            41
        );
    }

    #[test]
    fn checkpoint_file_roundtrip() {
        let dir = std::env::temp_dir().join("tfhpc-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let res = Resources::new();
        res.create_variable("w", Tensor::scalar_f64(7.5));
        Saver::save(&res, &path).unwrap();
        let res2 = Resources::new();
        assert_eq!(Saver::restore(&res2, &path).unwrap(), 1);
        assert_eq!(
            res2.variable("w")
                .unwrap()
                .read()
                .scalar_value_f64()
                .unwrap(),
            7.5
        );
        std::fs::remove_file(&path).ok();
    }

    fn fresh_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tfhpc-ckpt-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn corrupted_checkpoint_file_reports_data_loss() {
        let dir = fresh_dir("corrupt");
        let path = dir.join("model.ckpt");
        let res = Resources::new();
        res.create_variable("w", Tensor::scalar_f64(1.25));
        Saver::save(&res, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = Saver::restore(&Resources::new(), &path).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::DataLoss {
                    transient: false,
                    ..
                }
            ),
            "got {err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generation_chain_restores_latest_and_falls_back_when_torn() {
        let dir = fresh_dir("chain");
        let res = Resources::new();
        res.create_variable("x", Tensor::scalar_f64(1.0));
        assert_eq!(Saver::save_generation(&res, &dir).unwrap(), 0);
        res.variable("x")
            .unwrap()
            .assign(Tensor::scalar_f64(2.0))
            .unwrap();
        assert_eq!(Saver::save_generation(&res, &dir).unwrap(), 1);
        assert_eq!(Saver::latest_generation(&dir).unwrap(), Some(1));

        // Intact chain restores the newest generation.
        let fresh = Resources::new();
        assert_eq!(Saver::restore_latest(&fresh, &dir).unwrap(), 1);
        assert_eq!(
            fresh
                .variable("x")
                .unwrap()
                .read()
                .scalar_value_f64()
                .unwrap(),
            2.0
        );

        // Tear the latest generation file at EVERY byte offset: the
        // chain must always fall back to generation 0 without aborting.
        let latest = dir.join(generation_file_name(1));
        let pristine = std::fs::read(&latest).unwrap();
        for cut in 0..pristine.len() {
            std::fs::write(&latest, &pristine[..cut]).unwrap();
            let r = Resources::new();
            assert_eq!(
                Saver::restore_latest(&r, &dir).unwrap(),
                0,
                "cut at byte {cut} should fall back to gen 0"
            );
            assert_eq!(
                r.variable("x").unwrap().read().scalar_value_f64().unwrap(),
                1.0
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_generation_file_is_skipped() {
        let dir = fresh_dir("stale");
        let res = Resources::new();
        res.create_variable("x", Tensor::scalar_f64(10.0));
        Saver::save_generation(&res, &dir).unwrap();
        res.variable("x")
            .unwrap()
            .assign(Tensor::scalar_f64(20.0))
            .unwrap();
        Saver::save_generation(&res, &dir).unwrap();
        // Swap the old generation's bytes in under the new file name:
        // the frame checksum still passes, but the embedded generation
        // number does not match the manifest entry.
        let gen0 = std::fs::read(dir.join(generation_file_name(0))).unwrap();
        std::fs::write(dir.join(generation_file_name(1)), &gen0).unwrap();
        let r = Resources::new();
        assert_eq!(Saver::restore_latest(&r, &dir).unwrap(), 0);
        assert_eq!(
            r.variable("x").unwrap().read().scalar_value_f64().unwrap(),
            10.0
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_referencing_missing_file_reports_data_loss_with_path() {
        let dir = fresh_dir("missing");
        let res = Resources::new();
        res.create_variable("x", Tensor::scalar_f64(3.0));
        Saver::save_generation(&res, &dir).unwrap();
        let victim = dir.join(generation_file_name(0));
        std::fs::remove_file(&victim).unwrap();
        let err = Saver::restore_latest(&Resources::new(), &dir).unwrap_err();
        match &err {
            CoreError::DataLoss { what, transient } => {
                assert!(!transient);
                assert!(
                    what.contains(&victim.display().to_string()),
                    "error should name the missing file, got: {what}"
                );
            }
            other => panic!("expected DataLoss, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_generations_torn_reports_data_loss() {
        let dir = fresh_dir("all-torn");
        let res = Resources::new();
        res.create_variable("x", Tensor::scalar_f64(5.0));
        Saver::save_generation(&res, &dir).unwrap();
        let path = dir.join(generation_file_name(0));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = Saver::restore_latest(&Resources::new(), &dir).unwrap_err();
        assert!(matches!(err, CoreError::DataLoss { .. }), "got {err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
