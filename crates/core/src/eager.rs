//! Eager execution — the imperative mode §II notes "will likely become
//! the default execution mode in future releases of TensorFlow" (and
//! the model PyTorch, §VII, is built on).
//!
//! An [`EagerContext`] executes ops immediately against a resource
//! manager and device context — no graph, no session. The same kernels
//! and the same cost accounting run underneath, so eager code is
//! virtual-time-accurate on simulated clusters too; what it gives up is
//! exactly what the paper credits to deferred execution: whole-graph
//! optimization and auto-parallelization.

use crate::device::{DeviceCtx, Placement};
use crate::error::Result;
use crate::kernels;
use crate::op::Op;
use crate::resources::Resources;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tfhpc_tensor::{DType, Shape, Tensor};

/// Immediate-mode executor.
pub struct EagerContext {
    resources: Arc<Resources>,
    devices: DeviceCtx,
    default_device: Placement,
    op_counter: AtomicU64,
}

impl EagerContext {
    /// Eager context over a resource manager and device context.
    pub fn new(resources: Arc<Resources>, devices: DeviceCtx) -> EagerContext {
        EagerContext {
            resources,
            devices,
            default_device: Placement::Auto,
            op_counter: AtomicU64::new(0),
        }
    }

    /// Host-only context for quick interactive use.
    pub fn cpu() -> EagerContext {
        EagerContext::new(Resources::new(), DeviceCtx::real(0))
    }

    /// The resource manager (variables persist across calls).
    pub fn resources(&self) -> &Arc<Resources> {
        &self.resources
    }

    /// Pin subsequent ops to `device` (eager `tf.device`).
    pub fn set_device(&mut self, device: Placement) {
        self.default_device = device;
    }

    /// Execute one op immediately, charging device time in sim mode.
    pub fn execute(&self, op: &Op, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let placement = self
            .devices
            .resolve(self.default_device, op.gpu_capable())?;
        // Input residency: eager inputs live on the host between calls,
        // so GPU ops pay the staging both ways (the per-op transfer
        // overhead deferred graphs avoid by chaining on-device).
        if self.devices.sim.is_some() {
            let in_bytes: u64 = inputs.iter().map(|t| t.byte_size() as u64).sum();
            self.devices
                .charge_transfer(Placement::Cpu, placement, in_bytes);
        }
        let seed = self.op_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let outputs = kernels::execute(op, inputs, &self.resources, seed)?;
        let cost = kernels::cost_of(op, inputs, &outputs);
        let dp = kernels::is_double_precision(inputs, &outputs);
        self.devices.charge_kernel(placement, &cost, dp);
        if self.devices.sim.is_some() {
            let out_bytes: u64 = outputs.iter().map(|t| t.byte_size() as u64).sum();
            self.devices
                .charge_transfer(placement, Placement::Cpu, out_bytes);
        }
        Ok(outputs)
    }

    fn one(&self, op: &Op, inputs: &[Tensor]) -> Result<Tensor> {
        Ok(self.execute(op, inputs)?.remove(0))
    }

    // ---- the imperative op surface ----------------------------------------

    /// `a + b`.
    pub fn add(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        self.one(&Op::Add, &[a.clone(), b.clone()])
    }

    /// `a - b`.
    pub fn sub(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        self.one(&Op::Sub, &[a.clone(), b.clone()])
    }

    /// Elementwise `a * b`.
    pub fn mul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        self.one(&Op::Mul, &[a.clone(), b.clone()])
    }

    /// `a · b` matrix product.
    pub fn matmul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        self.one(&Op::MatMul, &[a.clone(), b.clone()])
    }

    /// Dot product.
    pub fn dot(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        self.one(&Op::Dot, &[a.clone(), b.clone()])
    }

    /// 1-D FFT.
    pub fn fft(&self, a: &Tensor) -> Result<Tensor> {
        self.one(&Op::Fft, std::slice::from_ref(a))
    }

    /// Fresh uniform sample.
    pub fn random_uniform(&self, dtype: DType, shape: impl Into<Shape>) -> Result<Tensor> {
        self.one(
            &Op::RandomUniform {
                dtype,
                shape: shape.into(),
                seed: 0x0EA6E4,
            },
            &[],
        )
    }

    /// Create or overwrite a variable.
    pub fn variable(&self, name: &str, init: Tensor) {
        self.resources.create_variable(name, init);
    }

    /// Read a variable.
    pub fn read(&self, name: &str) -> Result<Tensor> {
        self.one(&Op::VarRead { var: name.into() }, &[])
    }

    /// `var += value`.
    pub fn assign_add(&self, name: &str, value: &Tensor) -> Result<Tensor> {
        self.one(
            &Op::AssignAdd { var: name.into() },
            std::slice::from_ref(value),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    #[test]
    fn imperative_arithmetic() {
        let ctx = EagerContext::cpu();
        let a = Tensor::from_f64([2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_f64([2], vec![3.0, 4.0]).unwrap();
        let c = ctx.add(&a, &b).unwrap();
        let d = ctx.mul(&c, &c).unwrap();
        assert_eq!(d.as_f64().unwrap(), &[16.0, 36.0]);
        assert_eq!(ctx.dot(&a, &b).unwrap().scalar_value_f64().unwrap(), 11.0);
    }

    #[test]
    fn variables_persist_across_calls() {
        let ctx = EagerContext::cpu();
        ctx.variable("acc", Tensor::scalar_f64(0.0));
        for _ in 0..4 {
            ctx.assign_add("acc", &Tensor::scalar_f64(2.5)).unwrap();
        }
        assert_eq!(ctx.read("acc").unwrap().scalar_value_f64().unwrap(), 10.0);
    }

    #[test]
    fn random_resamples_every_call() {
        let ctx = EagerContext::cpu();
        let a = ctx.random_uniform(DType::F64, [8]).unwrap();
        let b = ctx.random_uniform(DType::F64, [8]).unwrap();
        assert_ne!(a.as_f64().unwrap(), b.as_f64().unwrap());
    }

    #[test]
    fn eager_matches_graph_mode_result() {
        // Same computation, both modes, same answer.
        let a = Tensor::from_f64([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_f64([2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let ctx = EagerContext::cpu();
        let eager = ctx.matmul(&a, &b).unwrap();

        let mut g = crate::graph::Graph::new();
        let ca = g.constant(a);
        let cb = g.constant(b);
        let cc = g.matmul(ca, cb);
        let sess = crate::session::Session::new(Arc::new(g), Resources::new(), DeviceCtx::real(0));
        let graph = sess.run(&[cc], &[]).unwrap().remove(0);
        assert_eq!(eager.as_f64().unwrap(), graph.as_f64().unwrap());
    }

    #[test]
    fn eager_pays_per_op_transfers_in_sim() {
        // Paper's §II rationale for graph mode: eager chains move data
        // host<->device on every op. Verify the modeled penalty exists.
        use tfhpc_sim::des::Sim;
        use tfhpc_sim::platform;
        use tfhpc_sim::topology::ClusterSim;

        let elapsed = Arc::new(Mutex::new((0.0f64, 0.0f64)));
        let e2 = Arc::clone(&elapsed);
        let sim = Sim::new();
        {
            let sim2 = Arc::clone(&sim);
            sim.spawn("eager-vs-graph", move || {
                let cluster = Arc::new(ClusterSim::new(&sim2, platform::tegner_k80(), 1));
                let devices = DeviceCtx::simulated(Arc::clone(&cluster), 0, vec![0]);
                let me = tfhpc_sim::des::current().unwrap();
                let a = Tensor::synthetic(DType::F32, [2048, 2048], 1);

                // Eager: three chained multiplies, host round trip each.
                let ctx = EagerContext::new(Resources::new(), devices.clone());
                let t0 = me.now();
                let x = ctx.matmul(&a, &a).unwrap();
                let y = ctx.matmul(&x, &a).unwrap();
                let _ = ctx.matmul(&y, &a).unwrap();
                let eager_t = me.now() - t0;

                // Graph: the same chain stays on-device.
                let mut g = crate::graph::Graph::new();
                let ca = g.constant(a);
                let x = g.matmul(ca, ca);
                let y = g.matmul(x, ca);
                let z = g.matmul(y, ca);
                let sess = crate::session::Session::new(Arc::new(g), Resources::new(), devices);
                let t1 = me.now();
                sess.run(&[z], &[]).unwrap();
                let graph_t = me.now() - t1;
                *e2.lock() = (eager_t, graph_t);
            });
        }
        sim.run();
        let (eager_t, graph_t) = *elapsed.lock();
        assert!(
            eager_t > graph_t,
            "eager {eager_t}s should exceed graph {graph_t}s"
        );
    }
}
