//! A `tfdbg`-style graph debugger (§II-B): inspect the tensors flowing
//! through a session run — values, shapes, numeric health — without
//! modifying the graph.
//!
//! Attach a [`Debugger`] to a session with
//! [`crate::session::Session::set_debugger`]; every executed node
//! records a [`TensorWatch`] per output. Watches can be filtered by
//! node-name prefix at capture time, queried afterwards, and scanned
//! with health predicates like [`Debugger::first_nonfinite`] (the
//! classic `has_inf_or_nan` tfdbg filter).

use parking_lot::Mutex;
use tfhpc_tensor::{DType, Tensor, TensorData};

/// Numeric summary of one tensor observed during execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorWatch {
    /// Producing node name.
    pub node: String,
    /// Output slot.
    pub output: usize,
    /// Element type.
    pub dtype: DType,
    /// Shape dims.
    pub dims: Vec<usize>,
    /// Whether the payload was synthetic (metadata-only).
    pub synthetic: bool,
    /// Min element (float tensors; NaN-propagating).
    pub min: Option<f64>,
    /// Max element.
    pub max: Option<f64>,
    /// Mean element.
    pub mean: Option<f64>,
    /// Count of non-finite elements (NaN/Inf).
    pub nonfinite: usize,
}

fn float_stats(t: &Tensor) -> (Option<f64>, Option<f64>, Option<f64>, usize) {
    let Ok(data) = t.data() else {
        return (None, None, None, 0);
    };
    let values: Vec<f64> = match data {
        TensorData::F64(v) => v.clone(),
        TensorData::F32(v) => v.iter().map(|x| *x as f64).collect(),
        TensorData::C128(v) => v.iter().map(|c| c.abs()).collect(),
        _ => return (None, None, None, 0),
    };
    if values.is_empty() {
        return (None, None, None, 0);
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut nonfinite = 0;
    for v in &values {
        if !v.is_finite() {
            nonfinite += 1;
            continue;
        }
        min = min.min(*v);
        max = max.max(*v);
        sum += v;
    }
    let finite = values.len() - nonfinite;
    if finite == 0 {
        (None, None, None, nonfinite)
    } else {
        (Some(min), Some(max), Some(sum / finite as f64), nonfinite)
    }
}

/// Recorder of tensor watches for one or more session runs.
#[derive(Default)]
pub struct Debugger {
    watches: Mutex<Vec<TensorWatch>>,
    prefixes: Mutex<Vec<String>>,
}

impl Debugger {
    /// Watch every node.
    pub fn new() -> Debugger {
        Debugger::default()
    }

    /// Restrict capture to nodes whose name starts with any `prefix`
    /// (no prefixes = watch everything).
    pub fn watch_prefix(&self, prefix: &str) {
        self.prefixes.lock().push(prefix.to_string());
    }

    /// Whether `node` passes the prefix filter.
    pub fn interested_in(&self, node: &str) -> bool {
        let p = self.prefixes.lock();
        p.is_empty() || p.iter().any(|pre| node.starts_with(pre.as_str()))
    }

    /// Record the outputs of one node execution.
    pub fn record(&self, node: &str, outputs: &[Tensor]) {
        if !self.interested_in(node) {
            return;
        }
        let mut watches = self.watches.lock();
        for (i, t) in outputs.iter().enumerate() {
            let (min, max, mean, nonfinite) = float_stats(t);
            watches.push(TensorWatch {
                node: node.to_string(),
                output: i,
                dtype: t.dtype(),
                dims: t.shape().dims().to_vec(),
                synthetic: t.is_synthetic(),
                min,
                max,
                mean,
                nonfinite,
            });
        }
    }

    /// All recorded watches.
    pub fn watches(&self) -> Vec<TensorWatch> {
        self.watches.lock().clone()
    }

    /// Number of recorded watches.
    pub fn len(&self) -> usize {
        self.watches.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Watches for one node, in execution order.
    pub fn node_history(&self, node: &str) -> Vec<TensorWatch> {
        self.watches
            .lock()
            .iter()
            .filter(|w| w.node == node)
            .cloned()
            .collect()
    }

    /// The tfdbg `has_inf_or_nan` filter: first watch carrying a
    /// non-finite element, if any.
    pub fn first_nonfinite(&self) -> Option<TensorWatch> {
        self.watches
            .lock()
            .iter()
            .find(|w| w.nonfinite > 0)
            .cloned()
    }

    /// Drop recorded watches (keep filters).
    pub fn clear(&self) {
        self.watches.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceCtx;
    use crate::graph::Graph;
    use crate::resources::Resources;
    use crate::session::Session;
    use std::sync::Arc;

    fn traced_session(g: Graph) -> (Session, Arc<Debugger>) {
        let mut sess = Session::new(Arc::new(g), Resources::new(), DeviceCtx::real(0));
        let dbg = Arc::new(Debugger::new());
        sess.set_debugger(Arc::clone(&dbg));
        (sess, dbg)
    }

    #[test]
    fn records_values_through_a_run() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_f64([3], vec![1.0, -2.0, 4.0]).unwrap());
        let n = g.neg(a);
        let (sess, dbg) = traced_session(g);
        sess.run(&[n], &[]).unwrap();
        let watches = dbg.watches();
        assert_eq!(watches.len(), 2);
        let neg = watches.iter().find(|w| w.node.starts_with("Neg")).unwrap();
        assert_eq!(neg.min, Some(-4.0));
        assert_eq!(neg.max, Some(2.0));
        assert_eq!(neg.dims, vec![3]);
        assert_eq!(neg.nonfinite, 0);
    }

    #[test]
    fn prefix_filter_limits_capture() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::scalar_f64(1.0));
        let n = g.neg(a);
        let mut sess = Session::new(Arc::new(g), Resources::new(), DeviceCtx::real(0));
        let dbg = Arc::new(Debugger::new());
        dbg.watch_prefix("Neg");
        sess.set_debugger(Arc::clone(&dbg));
        sess.run(&[n], &[]).unwrap();
        assert_eq!(dbg.len(), 1);
        assert!(dbg.watches()[0].node.starts_with("Neg"));
    }

    #[test]
    fn detects_nonfinite_values() {
        let mut g = Graph::new();
        let num = g.constant(Tensor::scalar_f64(1.0));
        let zero = g.constant(Tensor::scalar_f64(0.0));
        let div = g.div(num, zero); // inf
        let (sess, dbg) = traced_session(g);
        sess.run(&[div], &[]).unwrap();
        let bad = dbg.first_nonfinite().expect("must flag inf");
        assert!(bad.node.starts_with("Div"));
        assert_eq!(bad.nonfinite, 1);
    }

    #[test]
    fn synthetic_tensors_recorded_as_metadata() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::synthetic(tfhpc_tensor::DType::F32, [1024, 1024], 7));
        let b = g.constant(Tensor::synthetic(tfhpc_tensor::DType::F32, [1024, 1024], 8));
        let c = g.matmul(a, b);
        let (sess, dbg) = traced_session(g);
        sess.run(&[c], &[]).unwrap();
        let mm = dbg.node_history(&dbg.watches().last().unwrap().node.clone());
        assert!(mm[0].synthetic);
        assert_eq!(mm[0].dims, vec![1024, 1024]);
        assert_eq!(mm[0].min, None);
    }

    #[test]
    fn history_accumulates_across_runs_and_clears() {
        let mut g = Graph::new();
        let one = g.constant(Tensor::scalar_f64(1.0));
        let bump = g.assign_add("v", one);
        let (sess, dbg) = traced_session(g);
        sess.resources()
            .create_variable("v", Tensor::scalar_f64(0.0));
        for _ in 0..3 {
            sess.run(&[bump], &[]).unwrap();
        }
        let hist = dbg.node_history(&dbg.watches().last().unwrap().node.clone());
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0].mean, Some(1.0));
        assert_eq!(hist[2].mean, Some(3.0));
        dbg.clear();
        assert!(dbg.is_empty());
    }
}
