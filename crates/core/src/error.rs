//! Unified error type for the dataflow framework.

use tfhpc_proto::ProtoError;
use tfhpc_tensor::TensorError;

/// Errors surfaced by graph construction, session execution, queues,
/// datasets, checkpoints and placement.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Tensor math / shape error.
    Tensor(TensorError),
    /// Serialization error (includes the 2 GB GraphDef limit).
    Proto(ProtoError),
    /// Graph is structurally invalid (cycle, bad input arity, ...).
    Graph(String),
    /// No kernel/device combination satisfies the placement request.
    Placement(String),
    /// Queue was closed and drained (TensorFlow's `OutOfRangeError`).
    QueueClosed(String),
    /// Dataset iterator is exhausted.
    EndOfSequence,
    /// A device ran out of memory.
    OutOfMemory {
        /// Device name.
        device: String,
        /// Bytes the op needed resident.
        needed: u64,
        /// Usable capacity of the device.
        capacity: u64,
    },
    /// Named resource (variable, queue, iterator, tile) not found.
    NotFound(String),
    /// A peer task or link is (possibly temporarily) unreachable —
    /// TensorFlow's `UnavailableError`. The only transient code: safe
    /// to retry with backoff.
    Unavailable(String),
    /// A blocking operation's deadline expired before it completed —
    /// TensorFlow's `DeadlineExceededError`.
    DeadlineExceeded(String),
    /// The operation was torn down mid-flight (injected crash, stale
    /// server generation after a supervisor restart) — TensorFlow's
    /// `AbortedError`. Not retryable at the op level; the supervisor
    /// handles it by restarting the gang from a checkpoint.
    Aborted(String),
    /// The operation was cancelled before it ran — TensorFlow's
    /// `CancelledError`.
    Cancelled(String),
    /// Unrecoverable data corruption or loss was detected — a failed
    /// frame checksum, a torn checkpoint, a missing shard —
    /// TensorFlow's `DataLossError`. Non-transient by default (the
    /// stored bytes are gone); transient when a *link* raised it, since
    /// the sender still holds the pristine copy and a retry is a
    /// retransmission.
    DataLoss {
        /// What was corrupted and where.
        what: String,
        /// True when a retry can retransmit the data (wire corruption);
        /// false when the authoritative copy itself is damaged (disk).
        transient: bool,
    },
    /// A quota or capacity limit was hit — TensorFlow's
    /// `ResourceExhaustedError`. Raised by the serving plane's
    /// admission controller when a tenant exceeds its in-flight,
    /// queue-depth or node budget. Not transient: retrying immediately
    /// re-hits the same limit; the caller must shed load or wait for
    /// its own jobs to finish.
    ResourceExhausted(String),
    /// A configuration value is malformed — TensorFlow's
    /// `InvalidArgumentError`. Raised by strict env-knob parsing
    /// (`SessionOptions::from_env`, `TFHPC_SERVE_*`) instead of
    /// silently falling back to defaults.
    InvalidArgument(String),
    /// Anything else.
    Invalid(String),
}

impl CoreError {
    /// TF-style transience classification: `true` only for errors a
    /// retry-with-backoff policy may safely re-attempt (`Unavailable`,
    /// and `DataLoss` raised by a link — the sender still has the
    /// pristine bytes, so a retry is a retransmission).
    /// `DeadlineExceeded` is the caller's budget expiring (retrying
    /// cannot help), and `Aborted`/`Cancelled` require recovery above
    /// the op level.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            CoreError::Unavailable(_)
                | CoreError::DataLoss {
                    transient: true,
                    ..
                }
        )
    }

    /// Data-loss constructor for corrupted *stored* bytes (checkpoint,
    /// manifest): retrying re-reads the same damaged data, so the error
    /// is non-transient.
    pub fn data_loss(what: impl Into<String>) -> CoreError {
        CoreError::DataLoss {
            what: what.into(),
            transient: false,
        }
    }

    /// Data-loss constructor for corrupted *in-flight* bytes: the
    /// sender still holds the pristine copy, so the error is transient
    /// and a retry policy will retransmit.
    pub fn link_data_loss(what: impl Into<String>) -> CoreError {
        CoreError::DataLoss {
            what: what.into(),
            transient: true,
        }
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Proto(e) => write!(f, "proto error: {e}"),
            CoreError::Graph(s) => write!(f, "graph error: {s}"),
            CoreError::Placement(s) => write!(f, "placement error: {s}"),
            CoreError::QueueClosed(q) => write!(f, "queue `{q}` is closed"),
            CoreError::EndOfSequence => write!(f, "end of sequence"),
            CoreError::OutOfMemory {
                device,
                needed,
                capacity,
            } => write!(
                f,
                "out of memory on {device}: need {needed} bytes, capacity {capacity}"
            ),
            CoreError::NotFound(s) => write!(f, "not found: {s}"),
            CoreError::Unavailable(s) => write!(f, "unavailable: {s}"),
            CoreError::DeadlineExceeded(s) => write!(f, "deadline exceeded: {s}"),
            CoreError::Aborted(s) => write!(f, "aborted: {s}"),
            CoreError::Cancelled(s) => write!(f, "cancelled: {s}"),
            CoreError::DataLoss { what, transient } => {
                let kind = if *transient {
                    "retransmittable"
                } else {
                    "permanent"
                };
                write!(f, "data loss ({kind}): {what}")
            }
            CoreError::ResourceExhausted(s) => write!(f, "resource exhausted: {s}"),
            CoreError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            CoreError::Invalid(s) => write!(f, "invalid: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<ProtoError> for CoreError {
    fn from(e: ProtoError) -> Self {
        match e {
            // A failed frame checksum is data loss, not a format error.
            // Non-transient here; link paths that can retransmit remap
            // it with `CoreError::link_data_loss`.
            ProtoError::ChecksumMismatch => CoreError::data_loss(e.to_string()),
            other => CoreError::Proto(other),
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;
