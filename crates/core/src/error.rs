//! Unified error type for the dataflow framework.

use tfhpc_proto::ProtoError;
use tfhpc_tensor::TensorError;

/// Errors surfaced by graph construction, session execution, queues,
/// datasets, checkpoints and placement.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Tensor math / shape error.
    Tensor(TensorError),
    /// Serialization error (includes the 2 GB GraphDef limit).
    Proto(ProtoError),
    /// Graph is structurally invalid (cycle, bad input arity, ...).
    Graph(String),
    /// No kernel/device combination satisfies the placement request.
    Placement(String),
    /// Queue was closed and drained (TensorFlow's `OutOfRangeError`).
    QueueClosed(String),
    /// Dataset iterator is exhausted.
    EndOfSequence,
    /// A device ran out of memory.
    OutOfMemory {
        /// Device name.
        device: String,
        /// Bytes the op needed resident.
        needed: u64,
        /// Usable capacity of the device.
        capacity: u64,
    },
    /// Named resource (variable, queue, iterator, tile) not found.
    NotFound(String),
    /// A peer task or link is (possibly temporarily) unreachable —
    /// TensorFlow's `UnavailableError`. The only transient code: safe
    /// to retry with backoff.
    Unavailable(String),
    /// A blocking operation's deadline expired before it completed —
    /// TensorFlow's `DeadlineExceededError`.
    DeadlineExceeded(String),
    /// The operation was torn down mid-flight (injected crash, stale
    /// server generation after a supervisor restart) — TensorFlow's
    /// `AbortedError`. Not retryable at the op level; the supervisor
    /// handles it by restarting the gang from a checkpoint.
    Aborted(String),
    /// The operation was cancelled before it ran — TensorFlow's
    /// `CancelledError`.
    Cancelled(String),
    /// Anything else.
    Invalid(String),
}

impl CoreError {
    /// TF-style transience classification: `true` only for errors a
    /// retry-with-backoff policy may safely re-attempt (`Unavailable`).
    /// `DeadlineExceeded` is the caller's budget expiring (retrying
    /// cannot help), and `Aborted`/`Cancelled` require recovery above
    /// the op level.
    pub fn is_transient(&self) -> bool {
        matches!(self, CoreError::Unavailable(_))
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Proto(e) => write!(f, "proto error: {e}"),
            CoreError::Graph(s) => write!(f, "graph error: {s}"),
            CoreError::Placement(s) => write!(f, "placement error: {s}"),
            CoreError::QueueClosed(q) => write!(f, "queue `{q}` is closed"),
            CoreError::EndOfSequence => write!(f, "end of sequence"),
            CoreError::OutOfMemory {
                device,
                needed,
                capacity,
            } => write!(
                f,
                "out of memory on {device}: need {needed} bytes, capacity {capacity}"
            ),
            CoreError::NotFound(s) => write!(f, "not found: {s}"),
            CoreError::Unavailable(s) => write!(f, "unavailable: {s}"),
            CoreError::DeadlineExceeded(s) => write!(f, "deadline exceeded: {s}"),
            CoreError::Aborted(s) => write!(f, "aborted: {s}"),
            CoreError::Cancelled(s) => write!(f, "cancelled: {s}"),
            CoreError::Invalid(s) => write!(f, "invalid: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<ProtoError> for CoreError {
    fn from(e: ProtoError) -> Self {
        CoreError::Proto(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;
