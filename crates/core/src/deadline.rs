//! Ambient end-to-end deadline propagation.
//!
//! A request that enters the runtime with a time budget must have that
//! *remaining* budget — not a fresh per-hop timeout — bound every
//! blocking wait on its path: `Session::run` → queue waits →
//! rendezvous receives → remote-op retries. This module carries the
//! budget implicitly, the way gRPC propagates deadlines through a call
//! chain: an absolute expiry installed in a thread-local scope that
//! every layer below can consult without plumbing a parameter through
//! the whole stack. (Each simulated process is an OS thread, so the
//! thread-local is also a per-sim-process local.)
//!
//! The expiry is absolute in the caller's time domain — virtual
//! seconds inside a simulated process, monotonic wall seconds
//! otherwise — so sleeping through it is impossible to miss. Scopes
//! nest by shrinking: an inner `with_deadline` can only tighten the
//! budget, never extend what the outer request granted.
//!
//! Consumers:
//! * [`crate::queue::FifoQueue`] turns blocking waits into bounded
//!   waits when a deadline is ambient, surfacing `DeadlineExceeded`.
//! * [`crate::retry::RetryConfig::run`] refuses to schedule a backoff
//!   past the remaining budget.
//! * `tfhpc-dist` remote ops and rendezvous receives check the budget
//!   before (and bound their parks by) every blocking step.

use std::cell::Cell;

use crate::error::{CoreError, Result};

thread_local! {
    static DEADLINE_S: Cell<Option<f64>> = const { Cell::new(None) };
}

/// Current time in the caller's domain: virtual seconds inside a
/// simulated process, monotonic wall seconds (process-relative)
/// otherwise.
pub fn now_s() -> f64 {
    match tfhpc_sim::des::current() {
        Some(me) => me.now(),
        None => {
            use std::sync::OnceLock;
            use std::time::Instant;
            static EPOCH: OnceLock<Instant> = OnceLock::new();
            EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
        }
    }
}

/// RAII scope for an ambient deadline: restores the previous budget
/// (if any) on drop, so scopes nest and unwind correctly.
#[must_use = "dropping the guard immediately removes the deadline"]
pub struct DeadlineGuard {
    prev: Option<f64>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        DEADLINE_S.with(|d| d.set(self.prev));
    }
}

/// Install an ambient deadline `timeout_s` seconds from now for the
/// current thread/sim-process. Nested scopes take the *minimum* of the
/// inner and outer expiry — a callee can tighten the caller's budget
/// but never extend it.
pub fn with_deadline(timeout_s: f64) -> DeadlineGuard {
    let abs = now_s() + timeout_s.max(0.0);
    let prev = DEADLINE_S.with(|d| d.get());
    let effective = match prev {
        Some(p) => p.min(abs),
        None => abs,
    };
    DEADLINE_S.with(|d| d.set(Some(effective)));
    DeadlineGuard { prev }
}

/// The ambient absolute expiry, if a deadline scope is active.
pub fn deadline_s() -> Option<f64> {
    DEADLINE_S.with(|d| d.get())
}

/// Remaining budget in seconds (may be ≤ 0 once expired); `None` when
/// no deadline scope is active.
pub fn remaining_s() -> Option<f64> {
    deadline_s().map(|d| d - now_s())
}

/// Fail with [`CoreError::DeadlineExceeded`] when the ambient budget
/// has expired; a no-op without an active deadline scope.
pub fn check(what: &str) -> Result<()> {
    match remaining_s() {
        Some(r) if r <= 0.0 => Err(CoreError::DeadlineExceeded(format!(
            "{what}: request budget exhausted {:.6}s ago",
            -r
        ))),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scope_means_no_deadline() {
        assert_eq!(deadline_s(), None);
        assert_eq!(remaining_s(), None);
        assert!(check("op").is_ok());
    }

    #[test]
    fn scope_installs_and_restores() {
        {
            let _g = with_deadline(1000.0);
            let d = deadline_s().expect("deadline installed");
            assert!(remaining_s().unwrap() > 0.0);
            {
                // Inner scopes only tighten.
                let _g2 = with_deadline(1.0);
                assert!(deadline_s().unwrap() < d);
            }
            assert_eq!(deadline_s(), Some(d), "inner scope restored");
            assert!(check("op").is_ok());
        }
        assert_eq!(deadline_s(), None, "outer scope restored");
    }

    #[test]
    fn expired_budget_fails_check() {
        let _g = with_deadline(0.0);
        let err = check("remote op").unwrap_err();
        match err {
            CoreError::DeadlineExceeded(msg) => assert!(msg.contains("remote op"), "{msg}"),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn inner_scope_cannot_extend_outer() {
        let _g = with_deadline(0.0);
        let _g2 = with_deadline(1000.0);
        assert!(check("op").is_err(), "outer expiry must win");
    }
}
