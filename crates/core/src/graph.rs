//! The dataflow graph and its builder API.
//!
//! Mirrors TensorFlow's deferred-execution (Graph) mode: you first
//! *construct* a graph of tensor-valued nodes, then execute (parts of)
//! it through a [`crate::session::Session`]. Nodes carry an optional
//! device pin (`tf.device()`), data inputs and control dependencies.

use crate::device::Placement;
use crate::error::{CoreError, Result};
use crate::op::Op;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tfhpc_tensor::{DType, Shape, Tensor};

/// Identifier of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One node: an op application with inputs and placement.
pub struct NodeDef {
    /// Node id.
    pub id: NodeId,
    /// Unique node name.
    pub name: String,
    /// The operation.
    pub op: Op,
    /// Data inputs (each an output-0 reference of another node; for
    /// multi-output producers an explicit output index is encoded).
    pub inputs: Vec<(NodeId, usize)>,
    /// Control dependencies: nodes that must run before this one.
    pub control_inputs: Vec<NodeId>,
    /// Requested placement.
    pub device: Placement,
}

/// A dataflow graph under construction (append-only).
pub struct Graph {
    nodes: Vec<NodeDef>,
    default_device: Vec<Placement>,
    name_seq: u64,
    /// Mutation counter: bumped by every structural change so cached
    /// execution plans keyed on it invalidate (TF's "graph version").
    generation: AtomicU64,
    /// Process-unique id, used as the plan-cache fingerprint fallback
    /// for graphs that cannot be serialized (e.g. `py_func` closures).
    uid: u64,
}

/// Next [`Graph::uid`]; never reused within a process.
static GRAPH_UID: AtomicU64 = AtomicU64::new(1);

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Graph {
        Graph {
            nodes: Vec::new(),
            default_device: vec![Placement::Auto],
            name_seq: 0,
            generation: AtomicU64::new(0),
            uid: GRAPH_UID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Process-unique graph id. Unlike the content fingerprint, two
    /// identically-built graphs have *different* uids — this is only
    /// the identity of last resort for unserializable graphs.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Current mutation generation. A [`crate::session::Session`]
    /// stamps this into every cached execution plan; a mismatch at
    /// lookup time means the graph changed and the plan is rebuilt.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Force every cached execution plan over this graph stale.
    /// Structural mutators call this automatically; it is public for
    /// out-of-band changes (and for tests exercising invalidation on a
    /// graph already shared behind an `Arc`).
    pub fn invalidate_plans(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// All nodes, in creation order (a valid topological order).
    pub fn nodes(&self) -> &[NodeDef] {
        &self.nodes
    }

    /// Node definition by id.
    pub fn node(&self, id: NodeId) -> &NodeDef {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Find a node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.id)
    }

    /// Enter a `tf.device()` scope: nodes added inside `f` default to
    /// `device`.
    pub fn with_device<R>(&mut self, device: Placement, f: impl FnOnce(&mut Graph) -> R) -> R {
        self.default_device.push(device);
        let r = f(self);
        self.default_device.pop();
        r
    }

    fn fresh_name(&mut self, op: &Op) -> String {
        self.name_seq += 1;
        format!("{}_{}", op.name(), self.name_seq)
    }

    /// Add a node with explicit inputs/controls. Inputs must predate
    /// the node (the builder API guarantees acyclicity).
    pub fn add_node(
        &mut self,
        op: Op,
        inputs: Vec<(NodeId, usize)>,
        control_inputs: Vec<NodeId>,
    ) -> Result<NodeId> {
        let id = NodeId(self.nodes.len());
        for (input, out_idx) in &inputs {
            if input.0 >= id.0 {
                return Err(CoreError::Graph(format!(
                    "input {} does not precede new node {}",
                    input.0, id.0
                )));
            }
            let producer = &self.nodes[input.0];
            if *out_idx >= producer.op.n_outputs() {
                return Err(CoreError::Graph(format!(
                    "node {} output {} requested but `{}` has {} outputs",
                    producer.name,
                    out_idx,
                    producer.op.name(),
                    producer.op.n_outputs()
                )));
            }
        }
        for c in &control_inputs {
            if c.0 >= id.0 {
                return Err(CoreError::Graph(
                    "control input does not precede node".into(),
                ));
            }
        }
        let name = self.fresh_name(&op);
        let device = *self.default_device.last().unwrap();
        self.nodes.push(NodeDef {
            id,
            name,
            op,
            inputs,
            control_inputs,
            device,
        });
        self.invalidate_plans();
        Ok(id)
    }

    fn unary(&mut self, op: Op, a: NodeId) -> NodeId {
        self.add_node(op, vec![(a, 0)], vec![]).expect("builder")
    }

    fn binary(&mut self, op: Op, a: NodeId, b: NodeId) -> NodeId {
        self.add_node(op, vec![(a, 0), (b, 0)], vec![])
            .expect("builder")
    }

    // ---- sources ---------------------------------------------------------

    /// `tf.placeholder`.
    pub fn placeholder(&mut self, dtype: DType, shape: Option<Shape>) -> NodeId {
        self.add_node(Op::Placeholder { dtype, shape }, vec![], vec![])
            .expect("builder")
    }

    /// `tf.constant`.
    pub fn constant(&mut self, value: Tensor) -> NodeId {
        self.add_node(Op::Const { value }, vec![], vec![])
            .expect("builder")
    }

    /// `tf.random_uniform`.
    pub fn random_uniform(&mut self, dtype: DType, shape: impl Into<Shape>, seed: u64) -> NodeId {
        self.add_node(
            Op::RandomUniform {
                dtype,
                shape: shape.into(),
                seed,
            },
            vec![],
            vec![],
        )
        .expect("builder")
    }

    /// `tf.random_normal`.
    pub fn random_normal(&mut self, dtype: DType, shape: impl Into<Shape>, seed: u64) -> NodeId {
        self.add_node(
            Op::RandomNormal {
                dtype,
                shape: shape.into(),
                seed,
            },
            vec![],
            vec![],
        )
        .expect("builder")
    }

    // ---- variables -------------------------------------------------------

    /// Read variable `var`.
    pub fn var_read(&mut self, var: &str) -> NodeId {
        self.add_node(Op::VarRead { var: var.into() }, vec![], vec![])
            .expect("builder")
    }

    /// `var.assign(value)`.
    pub fn assign(&mut self, var: &str, value: NodeId) -> NodeId {
        self.add_node(Op::Assign { var: var.into() }, vec![(value, 0)], vec![])
            .expect("builder")
    }

    /// `var.assign_add(value)`.
    pub fn assign_add(&mut self, var: &str, value: NodeId) -> NodeId {
        self.add_node(Op::AssignAdd { var: var.into() }, vec![(value, 0)], vec![])
            .expect("builder")
    }

    // ---- math ------------------------------------------------------------

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(Op::Add, a, b)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(Op::Sub, a, b)
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(Op::Mul, a, b)
    }

    /// Elementwise `a / b`.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(Op::Div, a, b)
    }

    /// `-a`.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Neg, a)
    }

    /// `factor * a` with a static scalar.
    pub fn scale(&mut self, a: NodeId, factor: f64) -> NodeId {
        self.unary(Op::Scale { factor }, a)
    }

    /// `s * a` with a runtime rank-0 scalar `s`.
    pub fn mul_scalar(&mut self, a: NodeId, s: NodeId) -> NodeId {
        self.binary(Op::MulScalar, a, s)
    }

    /// Sum of same-shaped tensors.
    pub fn add_n(&mut self, xs: &[NodeId]) -> NodeId {
        self.add_node(Op::AddN, xs.iter().map(|x| (*x, 0)).collect(), vec![])
            .expect("builder")
    }

    /// `tf.matmul`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(Op::MatMul, a, b)
    }

    /// Matrix-vector product.
    pub fn matvec(&mut self, a: NodeId, x: NodeId) -> NodeId {
        self.binary(Op::MatVec, a, x)
    }

    /// Dot product.
    pub fn dot(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(Op::Dot, a, b)
    }

    /// Scalar sum reduction.
    pub fn sum(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Sum, a)
    }

    /// Euclidean norm.
    pub fn norm2(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Norm2, a)
    }

    /// Scalar max reduction.
    pub fn max(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Max, a)
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Sqrt, a)
    }

    /// 1-D complex FFT.
    pub fn fft(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Fft, a)
    }

    /// Reshape to `shape`.
    pub fn reshape(&mut self, a: NodeId, shape: impl Into<Shape>) -> NodeId {
        self.unary(
            Op::Reshape {
                shape: shape.into(),
            },
            a,
        )
    }

    /// Copy elements `[start, end)` of a rank-1 tensor.
    pub fn slice_range(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        self.unary(Op::SliceRange { start, end }, a)
    }

    /// Copy rows `[start, end)` of a rank-2 tensor.
    pub fn slice_rows(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        self.unary(Op::SliceRows { start, end }, a)
    }

    /// Concatenate rank-1 tensors.
    pub fn concat_vecs(&mut self, xs: &[NodeId]) -> NodeId {
        self.add_node(Op::ConcatVecs, xs.iter().map(|x| (*x, 0)).collect(), vec![])
            .expect("builder")
    }

    /// Transpose a rank-2 tensor.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Transpose, a)
    }

    /// Cast to another float dtype.
    pub fn cast(&mut self, a: NodeId, to: DType) -> NodeId {
        self.unary(Op::Cast { to }, a)
    }

    /// Identity (device-transfer anchor).
    pub fn identity(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Identity, a)
    }

    /// Group control dependencies into one no-output node.
    pub fn group(&mut self, deps: &[NodeId]) -> NodeId {
        self.add_node(Op::NoOp, vec![], deps.to_vec())
            .expect("builder")
    }

    // ---- queues / datasets / tiles ----------------------------------------

    /// Enqueue a tuple into queue `queue`.
    pub fn queue_enqueue(&mut self, queue: &str, values: &[NodeId]) -> NodeId {
        self.add_node(
            Op::QueueEnqueue {
                queue: queue.into(),
            },
            values.iter().map(|v| (*v, 0)).collect(),
            vec![],
        )
        .expect("builder")
    }

    /// Dequeue a tuple of `arity` tensors from queue `queue`; returns
    /// one NodeId per component.
    pub fn queue_dequeue(&mut self, queue: &str, arity: usize) -> Vec<NodeId> {
        let node = self
            .add_node(
                Op::QueueDequeue {
                    queue: queue.into(),
                    arity,
                },
                vec![],
                vec![],
            )
            .expect("builder");
        // Components are accessed through Identity taps on each output.
        (0..arity)
            .map(|i| {
                self.add_node(Op::Identity, vec![(node, i)], vec![])
                    .expect("builder")
            })
            .collect()
    }

    /// Close queue `queue`.
    pub fn queue_close(&mut self, queue: &str) -> NodeId {
        self.add_node(
            Op::QueueClose {
                queue: queue.into(),
            },
            vec![],
            vec![],
        )
        .expect("builder")
    }

    /// Current size of queue `queue`.
    pub fn queue_size(&mut self, queue: &str) -> NodeId {
        self.add_node(
            Op::QueueSize {
                queue: queue.into(),
            },
            vec![],
            vec![],
        )
        .expect("builder")
    }

    /// Next element of iterator `iterator` (arity components).
    pub fn dataset_next(&mut self, iterator: &str, arity: usize) -> Vec<NodeId> {
        let node = self
            .add_node(
                Op::DatasetNext {
                    iterator: iterator.into(),
                    arity,
                },
                vec![],
                vec![],
            )
            .expect("builder");
        (0..arity)
            .map(|i| {
                self.add_node(Op::Identity, vec![(node, i)], vec![])
                    .expect("builder")
            })
            .collect()
    }

    /// Read the tile keyed by `key` (i64 tensor) from `store`.
    pub fn read_tile(&mut self, store: &str, key: NodeId) -> NodeId {
        self.add_node(
            Op::ReadTile {
                store: store.into(),
            },
            vec![(key, 0)],
            vec![],
        )
        .expect("builder")
    }

    /// Write `value` under `key` into `store`.
    pub fn write_tile(&mut self, store: &str, key: NodeId, value: NodeId) -> NodeId {
        self.add_node(
            Op::WriteTile {
                store: store.into(),
            },
            vec![(key, 0), (value, 0)],
            vec![],
        )
        .expect("builder")
    }

    /// Host callback with `outputs` outputs (`tf.py_func`).
    ///
    /// `host_cost_factor` models the Python tax (see [`Op::PyFunc`]);
    /// the paper-calibrated default for NumPy-style merge loops is
    /// [`crate::kernels::PY_FUNC_DEFAULT_COST_FACTOR`].
    pub fn py_func(
        &mut self,
        label: &str,
        inputs: &[NodeId],
        outputs: usize,
        host_cost_factor: f64,
        func: Arc<crate::op::PyFuncBody>,
    ) -> Vec<NodeId> {
        let node = self
            .add_node(
                Op::PyFunc {
                    func,
                    label: label.into(),
                    outputs,
                    host_cost_factor,
                },
                inputs.iter().map(|i| (*i, 0)).collect(),
                vec![],
            )
            .expect("builder");
        (0..outputs)
            .map(|i| {
                self.add_node(Op::Identity, vec![(node, i)], vec![])
                    .expect("builder")
            })
            .collect()
    }

    /// Custom kernel node.
    pub fn custom(
        &mut self,
        kernel: Arc<dyn crate::op::OpKernel>,
        inputs: &[NodeId],
        controls: &[NodeId],
    ) -> NodeId {
        self.add_node(
            Op::Custom(kernel),
            inputs.iter().map(|i| (*i, 0)).collect(),
            controls.to_vec(),
        )
        .expect("builder")
    }

    /// Append a fully-specified node (GraphDef deserialization path).
    pub(crate) fn push_raw(
        &mut self,
        name: String,
        op: Op,
        inputs: Vec<(NodeId, usize)>,
        control_inputs: Vec<NodeId>,
        device: Placement,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeDef {
            id,
            name,
            op,
            inputs,
            control_inputs,
            device,
        });
        self.invalidate_plans();
        id
    }

    /// Add a control dependency `before -> after` post hoc.
    pub fn add_control(&mut self, after: NodeId, before: NodeId) -> Result<()> {
        if before.0 >= after.0 {
            return Err(CoreError::Graph(
                "control edge must point from earlier to later node".into(),
            ));
        }
        self.nodes[after.0].control_inputs.push(before);
        self.invalidate_plans();
        Ok(())
    }

    /// The set of nodes needed to produce `fetches` (reverse reachability
    /// over data + control edges), as a sorted id list.
    pub fn required_for(&self, fetches: &[NodeId]) -> Vec<NodeId> {
        let mut needed = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = fetches.iter().map(|f| f.0).collect();
        while let Some(i) = stack.pop() {
            if needed[i] {
                continue;
            }
            needed[i] = true;
            let n = &self.nodes[i];
            for (inp, _) in &n.inputs {
                stack.push(inp.0);
            }
            for c in &n.control_inputs {
                stack.push(c.0);
            }
        }
        (0..self.nodes.len())
            .filter(|i| needed[*i])
            .map(NodeId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_graph() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::scalar_f64(2.0));
        let b = g.constant(Tensor::scalar_f64(3.0));
        let c = g.add(a, b);
        assert_eq!(g.len(), 3);
        assert_eq!(g.node(c).inputs, vec![(a, 0), (b, 0)]);
        assert_eq!(g.node(c).op.name(), "Add");
    }

    #[test]
    fn device_scopes_nest() {
        let mut g = Graph::new();
        let outer = g.constant(Tensor::scalar_f64(1.0));
        let (inner_cpu, inner_gpu) = g.with_device(Placement::Cpu, |g| {
            let c = g.constant(Tensor::scalar_f64(2.0));
            let gpu = g.with_device(Placement::Gpu(0), |g| g.constant(Tensor::scalar_f64(3.0)));
            (c, gpu)
        });
        let after = g.constant(Tensor::scalar_f64(4.0));
        assert_eq!(g.node(outer).device, Placement::Auto);
        assert_eq!(g.node(inner_cpu).device, Placement::Cpu);
        assert_eq!(g.node(inner_gpu).device, Placement::Gpu(0));
        assert_eq!(g.node(after).device, Placement::Auto);
    }

    #[test]
    fn required_for_prunes_unreachable() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::scalar_f64(1.0));
        let _unused = g.constant(Tensor::scalar_f64(9.0));
        let b = g.neg(a);
        let needed = g.required_for(&[b]);
        assert_eq!(needed, vec![a, b]);
    }

    #[test]
    fn required_for_includes_control_deps() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::scalar_f64(1.0));
        let side = g.assign("v", a);
        let b = g.neg(a);
        g.add_control(b, side).unwrap();
        let needed = g.required_for(&[b]);
        assert!(needed.contains(&side));
    }

    #[test]
    fn multi_output_taps() {
        let mut g = Graph::new();
        let parts = g.queue_dequeue("q", 3);
        assert_eq!(parts.len(), 3);
        // Each tap references a distinct output index of the dequeue.
        let dq = g.find("QueueDequeue_1").unwrap();
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(g.node(*p).inputs, vec![(dq, i)]);
        }
    }

    #[test]
    fn bad_output_index_rejected() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::scalar_f64(1.0));
        let err = g.add_node(Op::Identity, vec![(a, 5)], vec![]).unwrap_err();
        assert!(matches!(err, CoreError::Graph(_)));
    }

    #[test]
    fn names_unique() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::scalar_f64(1.0));
        let b = g.constant(Tensor::scalar_f64(2.0));
        assert_ne!(g.node(a).name, g.node(b).name);
        assert_eq!(g.find(&g.node(b).name.clone()), Some(b));
        assert_eq!(g.find("nope"), None);
    }
}
