//! Graph operations: the op vocabulary of the framework.

use crate::error::Result;
use crate::resources::Resources;
use std::sync::Arc;
use tfhpc_sim::device::Cost;
use tfhpc_tensor::{DType, Shape, Tensor};

/// Host-callback type for [`Op::PyFunc`].
pub type PyFuncBody = dyn Fn(&Resources, &[Tensor]) -> Result<Vec<Tensor>> + Send + Sync;

/// A custom operation kernel — the extension mechanism used by the
/// distributed runtime (Send/Recv) and by applications (`py_func`-style
/// host callbacks).
pub trait OpKernel: Send + Sync {
    /// Kernel name for diagnostics and timelines.
    fn name(&self) -> &str;
    /// Execute: consume input tensors, produce outputs.
    fn compute(&self, resources: &Resources, inputs: &[Tensor]) -> Result<Vec<Tensor>>;
    /// Modeled device cost (defaults to zero — pure control/host ops).
    fn cost(&self, _inputs: &[Tensor]) -> Cost {
        Cost::zero()
    }
    /// Whether a GPU kernel exists for this op.
    fn gpu_capable(&self) -> bool {
        false
    }
}

/// The built-in operation set.
///
/// This is the op vocabulary the paper's four applications need, plus
/// the framework ops (variables, queues, datasets) that make the
/// data-driven formulation possible.
#[derive(Clone)]
pub enum Op {
    /// Graph input fed at `Session::run` time.
    Placeholder {
        /// Expected element type.
        dtype: DType,
        /// Expected shape, if constrained.
        shape: Option<Shape>,
    },
    /// Embedded constant.
    Const {
        /// The constant value.
        value: Tensor,
    },
    /// `tf.random_uniform`.
    RandomUniform {
        /// Element type.
        dtype: DType,
        /// Output shape.
        shape: Shape,
        /// Graph-level seed.
        seed: u64,
    },
    /// `tf.random_normal`.
    RandomNormal {
        /// Element type.
        dtype: DType,
        /// Output shape.
        shape: Shape,
        /// Graph-level seed.
        seed: u64,
    },
    /// Read a `tf.Variable`'s current value.
    VarRead {
        /// Variable name in the resource manager.
        var: String,
    },
    /// `var <- input`, returns the new value.
    Assign {
        /// Variable name.
        var: String,
    },
    /// `var <- var + input`, returns the new value (the STREAM op).
    AssignAdd {
        /// Variable name.
        var: String,
    },
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise division.
    Div,
    /// Negation.
    Neg,
    /// Multiply by a compile-time scalar.
    Scale {
        /// The scalar factor.
        factor: f64,
    },
    /// Multiply a tensor by a runtime rank-0 scalar (second input) —
    /// the CG update `alpha * p`.
    MulScalar,
    /// Sum of N same-shaped inputs.
    AddN,
    /// Dense matrix multiply.
    MatMul,
    /// Dense matrix-vector multiply.
    MatVec,
    /// Vector dot product (rank-0 output).
    Dot,
    /// Sum-reduce to a scalar.
    Sum,
    /// Euclidean norm (rank-0 f64).
    Norm2,
    /// Max-reduce to a scalar.
    Max,
    /// Elementwise square root.
    Sqrt,
    /// 1-D complex FFT.
    Fft,
    /// Reshape to a static shape.
    Reshape {
        /// Target shape.
        shape: Shape,
    },
    /// Copy elements `[start, end)` of a rank-1 tensor.
    SliceRange {
        /// First element.
        start: usize,
        /// One past the last element.
        end: usize,
    },
    /// Copy rows `[start, end)` of a rank-2 tensor.
    SliceRows {
        /// First row.
        start: usize,
        /// One past the last row.
        end: usize,
    },
    /// Concatenate N rank-1 tensors.
    ConcatVecs,
    /// Transpose a rank-2 tensor.
    Transpose,
    /// Cast a float tensor to another float dtype (the paper's apps mix
    /// f32 tiles with f64 solvers).
    Cast {
        /// Target element type.
        to: DType,
    },
    /// Pass-through (device-transfer anchor).
    Identity,
    /// No output; groups control dependencies.
    NoOp,
    /// Push a tuple into a named FIFO queue.
    QueueEnqueue {
        /// Queue name.
        queue: String,
    },
    /// Pop a tuple from a named FIFO queue (one output per component).
    QueueDequeue {
        /// Queue name.
        queue: String,
        /// Number of tensors per queue element.
        arity: usize,
    },
    /// Close a named queue.
    QueueClose {
        /// Queue name.
        queue: String,
    },
    /// Current size of a named queue (rank-0 i64).
    QueueSize {
        /// Queue name.
        queue: String,
    },
    /// Pull the next element from a named dataset iterator.
    DatasetNext {
        /// Iterator name.
        iterator: String,
        /// Number of tensors per element.
        arity: usize,
    },
    /// Read a tile from a named tile store; input is the i64 key.
    ReadTile {
        /// Tile store name.
        store: String,
    },
    /// Write a tile (inputs: key, value) to a named tile store.
    WriteTile {
        /// Tile store name.
        store: String,
    },
    /// Host-side callback (the `tf.py_func` escape hatch the paper uses
    /// for FFT merging and reducer logic).
    PyFunc {
        /// The callback.
        func: Arc<PyFuncBody>,
        /// Label for timelines.
        label: String,
        /// Number of outputs.
        outputs: usize,
        /// Modeled slowdown versus native memory bandwidth: input bytes
        /// are charged as `bytes * factor` of host memory traffic. The
        /// paper's FFT merge is throttled by exactly this Python tax
        /// (§VIII); 0 makes the callback free.
        host_cost_factor: f64,
    },
    /// Fully custom kernel.
    Custom(Arc<dyn OpKernel>),
}

impl Op {
    /// Op name as it appears in GraphDefs and timelines.
    pub fn name(&self) -> &str {
        match self {
            Op::Placeholder { .. } => "Placeholder",
            Op::Const { .. } => "Const",
            Op::RandomUniform { .. } => "RandomUniform",
            Op::RandomNormal { .. } => "RandomNormal",
            Op::VarRead { .. } => "VarRead",
            Op::Assign { .. } => "Assign",
            Op::AssignAdd { .. } => "AssignAdd",
            Op::Add => "Add",
            Op::Sub => "Sub",
            Op::Mul => "Mul",
            Op::Div => "Div",
            Op::Neg => "Neg",
            Op::Scale { .. } => "Scale",
            Op::MulScalar => "MulScalar",
            Op::AddN => "AddN",
            Op::MatMul => "MatMul",
            Op::MatVec => "MatVec",
            Op::Dot => "Dot",
            Op::Sum => "Sum",
            Op::Norm2 => "Norm2",
            Op::Max => "Max",
            Op::Sqrt => "Sqrt",
            Op::Fft => "FFT",
            Op::Reshape { .. } => "Reshape",
            Op::SliceRange { .. } => "SliceRange",
            Op::SliceRows { .. } => "SliceRows",
            Op::ConcatVecs => "ConcatVecs",
            Op::Transpose => "Transpose",
            Op::Cast { .. } => "Cast",
            Op::Identity => "Identity",
            Op::NoOp => "NoOp",
            Op::QueueEnqueue { .. } => "QueueEnqueue",
            Op::QueueDequeue { .. } => "QueueDequeue",
            Op::QueueClose { .. } => "QueueClose",
            Op::QueueSize { .. } => "QueueSize",
            Op::DatasetNext { .. } => "DatasetNext",
            Op::ReadTile { .. } => "ReadTile",
            Op::WriteTile { .. } => "WriteTile",
            Op::PyFunc { .. } => "PyFunc",
            Op::Custom(k) => k.name(),
        }
    }

    /// Number of output tensors this op produces.
    pub fn n_outputs(&self) -> usize {
        match self {
            Op::NoOp | Op::QueueEnqueue { .. } | Op::QueueClose { .. } | Op::WriteTile { .. } => 0,
            Op::QueueDequeue { arity, .. } | Op::DatasetNext { arity, .. } => *arity,
            Op::PyFunc { outputs, .. } => *outputs,
            _ => 1,
        }
    }

    /// Whether a GPU kernel exists (drives simple placement).
    pub fn gpu_capable(&self) -> bool {
        match self {
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Neg
            | Op::Scale { .. }
            | Op::MulScalar
            | Op::AddN
            | Op::MatMul
            | Op::MatVec
            | Op::Dot
            | Op::Sum
            | Op::Norm2
            | Op::Max
            | Op::Sqrt
            | Op::Fft
            | Op::Identity
            | Op::Reshape { .. }
            | Op::SliceRange { .. }
            | Op::SliceRows { .. }
            | Op::ConcatVecs
            | Op::RandomUniform { .. }
            | Op::RandomNormal { .. }
            | Op::VarRead { .. }
            | Op::Assign { .. }
            | Op::AssignAdd { .. } => true,
            Op::Custom(k) => k.gpu_capable(),
            _ => false,
        }
    }

    /// Whether the op can block on external progress (queue ops waiting
    /// for space/items) or consumes from a shared ordered stream
    /// (dataset iterators). Runs containing such ops execute on the
    /// sequential path: a blocking kernel must not tie up inter-op pool
    /// workers, and stream consumption order must stay deterministic.
    /// `PyFunc` and `Custom` kernels run arbitrary host code (the dist
    /// Send/Recv kernels and app reducers block on remote queues), so
    /// they are conservatively treated as blocking too.
    pub fn may_block(&self) -> bool {
        matches!(
            self,
            Op::QueueEnqueue { .. }
                | Op::QueueDequeue { .. }
                | Op::DatasetNext { .. }
                | Op::PyFunc { .. }
                | Op::Custom(_)
        )
    }

    /// Whether the op has side effects (must not be pruned and must
    /// execute even if its outputs are unused).
    pub fn stateful(&self) -> bool {
        matches!(
            self,
            Op::Assign { .. }
                | Op::AssignAdd { .. }
                | Op::QueueEnqueue { .. }
                | Op::QueueClose { .. }
                | Op::QueueDequeue { .. }
                | Op::DatasetNext { .. }
                | Op::WriteTile { .. }
                | Op::PyFunc { .. }
                | Op::Custom(_)
        )
    }
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Op::{}", self.name())
    }
}
