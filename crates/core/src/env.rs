//! Strict environment-knob parsing.
//!
//! Every `TFHPC_*` knob goes through these helpers: an *unset* knob
//! yields `None` (the caller keeps its default), a *malformed* one is
//! a loud [`CoreError::InvalidArgument`] — never a silent fallback.
//! The full knob table lives in the README.

use crate::error::{CoreError, Result};

/// Read `key` as a non-negative integer.
pub fn env_usize(key: &str) -> Result<Option<usize>> {
    parse_with(key, |v| v.parse().ok(), "a non-negative integer")
}

/// Read `key` as a `u64` (seeds).
pub fn env_u64(key: &str) -> Result<Option<u64>> {
    parse_with(key, |v| v.parse().ok(), "a non-negative integer")
}

/// Read `key` as a finite, non-negative float.
pub fn env_f64(key: &str) -> Result<Option<f64>> {
    parse_with(
        key,
        |v| v.parse().ok().filter(|x: &f64| x.is_finite() && *x >= 0.0),
        "a finite non-negative number",
    )
}

/// Read `key` as a non-empty string (trimmed). The caller parses the
/// value domain and reports its own [`CoreError::InvalidArgument`].
pub fn env_str(key: &str) -> Result<Option<String>> {
    parse_with(
        key,
        |v| {
            if v.is_empty() {
                None
            } else {
                Some(v.to_string())
            }
        },
        "a non-empty string",
    )
}

/// Read `key` as a boolean: `1`/`true`/`on` or `0`/`false`/`off`
/// (case-insensitive).
pub fn env_bool(key: &str) -> Result<Option<bool>> {
    parse_with(
        key,
        |v| {
            if v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on") {
                Some(true)
            } else if v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off") {
                Some(false)
            } else {
                None
            }
        },
        "one of 1/true/on/0/false/off",
    )
}

fn parse_with<T>(
    key: &str,
    parse: impl FnOnce(&str) -> Option<T>,
    expected: &str,
) -> Result<Option<T>> {
    match std::env::var(key) {
        Err(_) => Ok(None),
        Ok(raw) => {
            let v = raw.trim();
            parse(v).map(Some).ok_or_else(|| {
                CoreError::InvalidArgument(format!("{key}=`{raw}` is not {expected}"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malformed_values_fail_loudly() {
        // Unique key names: env vars are process-global.
        std::env::set_var("TFHPC_ENVTEST_USIZE", "banana");
        assert!(matches!(
            env_usize("TFHPC_ENVTEST_USIZE"),
            Err(CoreError::InvalidArgument(_))
        ));
        std::env::set_var("TFHPC_ENVTEST_USIZE", " 8 ");
        assert_eq!(env_usize("TFHPC_ENVTEST_USIZE").unwrap(), Some(8));
        std::env::remove_var("TFHPC_ENVTEST_USIZE");
        assert_eq!(env_usize("TFHPC_ENVTEST_USIZE").unwrap(), None);

        std::env::set_var("TFHPC_ENVTEST_BOOL", "yes");
        assert!(env_bool("TFHPC_ENVTEST_BOOL").is_err());
        std::env::set_var("TFHPC_ENVTEST_BOOL", "OFF");
        assert_eq!(env_bool("TFHPC_ENVTEST_BOOL").unwrap(), Some(false));
        std::env::remove_var("TFHPC_ENVTEST_BOOL");

        std::env::set_var("TFHPC_ENVTEST_F64", "-1.0");
        assert!(env_f64("TFHPC_ENVTEST_F64").is_err());
        std::env::set_var("TFHPC_ENVTEST_F64", "0.25");
        assert_eq!(env_f64("TFHPC_ENVTEST_F64").unwrap(), Some(0.25));
        std::env::remove_var("TFHPC_ENVTEST_F64");
    }
}
