//! # tfhpc-core
//!
//! A TensorFlow-style deferred-execution dataflow framework: the
//! primary substrate this reproduction builds the paper's four HPC
//! applications on. It mirrors the concepts the paper relies on:
//!
//! * [`graph`] — dataflow graphs built first, executed later
//!   ("Graph mode"), with `tf.device()` scoping.
//! * [`session`] — subgraph execution with feeds/fetches, simple and
//!   soft device placement, and virtual-time charging on simulated
//!   clusters.
//! * [`resources`] — variables (the only mutable state), FIFO queues,
//!   dataset iterators and tile stores.
//! * [`queue`] — blocking FIFO queues usable from both OS threads and
//!   simulated processes (the reducer/merger building block).
//! * [`dataset`] — input pipelines with sharding and prefetch.
//! * [`serialize`] — GraphDef/TensorProto wire formats (2 GB limit
//!   included) and variable checkpointing.
//! * [`timeline`] — Chrome-trace op timelines (TensorFlow Timeline).
//! * [`kernels`] — op execution + roofline cost accounting.
//! * [`optimizer`] — Grappler-style graph passes (constant folding,
//!   CSE, identity elimination) — the §II "optimize execution" point.
//! * [`eager`] — imperative execution (§II's future default mode).
//! * [`debugger`] — tfdbg-style tensor watching (§II-B).
//! * [`queue_runner`] — QueueRunners + Coordinator for background
//!   input pipelines (§II-A / the §VIII GIL discussion).

pub mod dataset;
pub mod deadline;
pub mod debugger;
pub mod device;
pub mod eager;
pub mod env;
pub mod error;
pub mod graph;
pub mod kernels;
pub mod op;
pub mod optimizer;
pub mod plan_cache;
pub mod queue;
pub mod queue_runner;
pub mod resources;
pub mod retry;
pub mod serialize;
pub mod session;
pub mod timeline;

pub use dataset::{Dataset, DatasetIterator};
pub use debugger::{Debugger, TensorWatch};
pub use device::{DeviceCtx, Placement};
pub use eager::EagerContext;
pub use error::{CoreError, Result};
pub use graph::{Graph, NodeId};
pub use op::{Op, OpKernel};
pub use optimizer::{optimize, optimize_for, OptimizeStats, Optimized};
pub use plan_cache::{PlanCacheStats, SharedPlanCache};
pub use queue::FifoQueue;
pub use queue_runner::{Coordinator, QueueRunner};
pub use resources::{Resources, TileStore, Variable};
pub use retry::RetryConfig;
pub use serialize::{graph_from_bytes, graph_to_bytes, Saver, TensorProto};
pub use session::{RunMetadata, Session, SessionOptions};
pub use timeline::Timeline;
