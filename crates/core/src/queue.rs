//! Bounded FIFO queues of tensor tuples — the `tf.FIFOQueue` the
//! paper's reducers and map-reduce pipelines are built from.
//!
//! A queue blocks consumers when empty and producers when full, in both
//! execution modes:
//!
//! * **real mode** — parking_lot mutex + condvars across OS threads;
//! * **sim mode** — [`tfhpc_sim::des::SimCondvar`]s, so blocking
//!   dequeues park the simulated process and wake at the notifier's
//!   virtual time (this is what makes the queue-pair reducer pattern
//!   cost what it should).
//!
//! Closing a queue follows TensorFlow semantics: further enqueues fail;
//! dequeues drain remaining elements and then fail with
//! `QueueClosed` (TensorFlow's `OutOfRangeError`).

use crate::error::{CoreError, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tfhpc_sim::des::SimCondvar;
use tfhpc_tensor::Tensor;

struct QueueState {
    /// Tuples paired with their enqueue timestamp (observability
    /// clock), so dequeues can charge residency.
    items: VecDeque<(f64, Vec<Tensor>)>,
    closed: bool,
    /// Sticky abort (TensorFlow's queue cancellation): once set, every
    /// operation — including draining — fails with a clone of this
    /// error. Set when the owning task dies or the supervisor tears a
    /// generation down.
    aborted: Option<CoreError>,
}

enum Waiters {
    Real {
        not_empty: Condvar,
        not_full: Condvar,
    },
    Sim {
        not_empty: SimCondvar,
        not_full: SimCondvar,
    },
}

/// Always-on activity counters backing `StepStats` and the global
/// metrics registry. Updates are relaxed atomics — never a lock, never
/// a clock advance — so collection cannot perturb a simulated run.
struct QueueStats {
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    /// Summed residency seconds of dequeued elements, as f64 bits.
    residency_bits: AtomicU64,
    /// Flow correlation id stitching enqueue→dequeue arrows in traces.
    flow: u64,
    m_enqueued: Arc<tfhpc_obs::Counter>,
    m_dequeued: Arc<tfhpc_obs::Counter>,
    m_depth: Arc<tfhpc_obs::Gauge>,
    m_residency: Arc<tfhpc_obs::Histogram>,
}

impl QueueStats {
    fn new(name: &str) -> QueueStats {
        let reg = tfhpc_obs::global();
        let labels = [("queue", name)];
        QueueStats {
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
            residency_bits: AtomicU64::new(0),
            flow: tfhpc_obs::trace::flow_id(name),
            m_enqueued: reg.counter_with("tfhpc_queue_enqueued_total", &labels),
            m_dequeued: reg.counter_with("tfhpc_queue_dequeued_total", &labels),
            m_depth: reg.gauge_with("tfhpc_queue_depth", &labels),
            m_residency: reg.histogram_with(
                "tfhpc_queue_residency_seconds",
                &labels,
                &tfhpc_obs::metrics::duration_buckets(),
            ),
        }
    }
}

/// A bounded FIFO queue of tensor tuples.
pub struct FifoQueue {
    name: String,
    capacity: usize,
    state: Mutex<QueueState>,
    waiters: Waiters,
    stats: QueueStats,
}

impl FifoQueue {
    /// Create a queue. When called from inside a simulated process the
    /// queue binds to that simulation's virtual clock.
    pub fn new(name: &str, capacity: usize) -> Arc<FifoQueue> {
        let waiters = match tfhpc_sim::des::current() {
            Some(me) => Waiters::Sim {
                not_empty: me.sim().condvar(&format!("queue:{name}:not_empty")),
                not_full: me.sim().condvar(&format!("queue:{name}:not_full")),
            },
            None => Waiters::Real {
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            },
        };
        Arc::new(FifoQueue {
            name: name.to_string(),
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                aborted: None,
            }),
            waiters,
            stats: QueueStats::new(name),
        })
    }

    /// Record an enqueue that left the queue `depth` deep.
    fn note_enqueue(&self, depth: usize) {
        self.stats.enqueued.fetch_add(1, Ordering::Relaxed);
        self.stats.m_enqueued.inc();
        self.stats.m_depth.set(depth as f64);
        let tr = tfhpc_obs::trace::global();
        if tr.is_enabled() {
            tr.counter(&format!("queue.{}.depth", self.name), depth as f64);
            tr.flow_start(&format!("queue.{}", self.name), self.stats.flow);
        }
    }

    /// Record a dequeue of an element enqueued at `ts` that left the
    /// queue `depth` deep.
    fn note_dequeue(&self, ts: f64, depth: usize) {
        let residency = (tfhpc_obs::now_seconds() - ts).max(0.0);
        self.stats.dequeued.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.stats.residency_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + residency).to_bits();
            match self.stats.residency_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.stats.m_dequeued.inc();
        self.stats.m_depth.set(depth as f64);
        self.stats.m_residency.observe(residency);
        let tr = tfhpc_obs::trace::global();
        if tr.is_enabled() {
            tr.counter(&format!("queue.{}.depth", self.name), depth as f64);
            tr.flow_end(&format!("queue.{}", self.name), self.stats.flow);
        }
    }

    /// Snapshot this queue's activity for `StepStats`.
    pub fn step_stat(&self) -> tfhpc_obs::QueueStat {
        let depth = self.state.lock().items.len() as u64;
        tfhpc_obs::QueueStat {
            name: self.name.clone(),
            enqueued: self.stats.enqueued.load(Ordering::Relaxed),
            dequeued: self.stats.dequeued.load(Ordering::Relaxed),
            depth,
            residency_seconds: f64::from_bits(self.stats.residency_bits.load(Ordering::Relaxed)),
        }
    }

    /// Queue name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current element count.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when no elements are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Blocking enqueue of one tuple.
    pub fn enqueue(&self, tuple: Vec<Tensor>) -> Result<()> {
        match &self.waiters {
            Waiters::Real {
                not_empty,
                not_full,
            } => {
                let mut st = self.state.lock();
                while st.items.len() >= self.capacity && !st.closed && st.aborted.is_none() {
                    not_full.wait(&mut st);
                }
                if let Some(err) = &st.aborted {
                    return Err(err.clone());
                }
                if st.closed {
                    return Err(CoreError::QueueClosed(self.name.clone()));
                }
                st.items.push_back((tfhpc_obs::now_seconds(), tuple));
                let depth = st.items.len();
                not_empty.notify_one();
                drop(st);
                self.note_enqueue(depth);
                Ok(())
            }
            Waiters::Sim {
                not_empty,
                not_full,
            } => {
                loop {
                    {
                        let mut st = self.state.lock();
                        if let Some(err) = &st.aborted {
                            return Err(err.clone());
                        }
                        if st.closed {
                            return Err(CoreError::QueueClosed(self.name.clone()));
                        }
                        if st.items.len() < self.capacity {
                            st.items.push_back((tfhpc_obs::now_seconds(), tuple));
                            let depth = st.items.len();
                            drop(st);
                            self.note_enqueue(depth);
                            break;
                        }
                    }
                    // Only one sim process runs at a time: no lost
                    // wakeups between the unlock above and this wait.
                    not_full.wait();
                }
                not_empty.notify_all();
                Ok(())
            }
        }
    }

    /// Blocking dequeue of one tuple. Errors with `QueueClosed` once
    /// the queue is closed *and* drained, or with the abort error once
    /// aborted (aborting cancels pending elements, it does not drain).
    ///
    /// Under an ambient [`crate::deadline`] scope the park is bounded
    /// by the request's *remaining* budget instead of being unbounded:
    /// an available element is still popped (even at zero budget), but
    /// an empty queue surfaces `DeadlineExceeded` once the budget runs
    /// out rather than waiting on a partitioned or dead producer.
    pub fn dequeue(&self) -> Result<Vec<Tensor>> {
        if let Some(remaining) = crate::deadline::remaining_s() {
            return self.dequeue_timeout(remaining.max(0.0));
        }
        match &self.waiters {
            Waiters::Real {
                not_empty,
                not_full,
            } => {
                let mut st = self.state.lock();
                loop {
                    if let Some(err) = &st.aborted {
                        return Err(err.clone());
                    }
                    if let Some((ts, tuple)) = st.items.pop_front() {
                        let depth = st.items.len();
                        not_full.notify_one();
                        drop(st);
                        self.note_dequeue(ts, depth);
                        return Ok(tuple);
                    }
                    if st.closed {
                        return Err(CoreError::QueueClosed(self.name.clone()));
                    }
                    not_empty.wait(&mut st);
                }
            }
            Waiters::Sim {
                not_empty,
                not_full,
            } => loop {
                {
                    let mut st = self.state.lock();
                    if let Some(err) = &st.aborted {
                        return Err(err.clone());
                    }
                    if let Some((ts, tuple)) = st.items.pop_front() {
                        let depth = st.items.len();
                        drop(st);
                        self.note_dequeue(ts, depth);
                        not_full.notify_all();
                        return Ok(tuple);
                    }
                    if st.closed {
                        return Err(CoreError::QueueClosed(self.name.clone()));
                    }
                }
                not_empty.wait();
            },
        }
    }

    /// [`FifoQueue::dequeue`] with a deadline: gives up with
    /// `DeadlineExceeded` after `timeout_s` seconds — *virtual* seconds
    /// when the queue is sim-bound (the caller's clock then sits at
    /// exactly `now + timeout_s`), wall-clock seconds otherwise. This
    /// is the primitive that keeps consumers from parking forever on a
    /// dead producer.
    pub fn dequeue_timeout(&self, timeout_s: f64) -> Result<Vec<Tensor>> {
        match &self.waiters {
            Waiters::Real {
                not_empty,
                not_full,
            } => {
                let deadline =
                    std::time::Instant::now() + std::time::Duration::from_secs_f64(timeout_s);
                let mut st = self.state.lock();
                loop {
                    if let Some(err) = &st.aborted {
                        return Err(err.clone());
                    }
                    if let Some((ts, tuple)) = st.items.pop_front() {
                        let depth = st.items.len();
                        not_full.notify_one();
                        drop(st);
                        self.note_dequeue(ts, depth);
                        return Ok(tuple);
                    }
                    if st.closed {
                        return Err(CoreError::QueueClosed(self.name.clone()));
                    }
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return Err(CoreError::DeadlineExceeded(format!(
                            "dequeue on `{}` after {timeout_s}s",
                            self.name
                        )));
                    }
                    not_empty.wait_for(&mut st, deadline - now);
                }
            }
            Waiters::Sim {
                not_empty,
                not_full,
            } => {
                let me = tfhpc_sim::des::current().ok_or_else(|| {
                    CoreError::Invalid(format!(
                        "queue `{}` is sim-bound but dequeue_timeout was called \
                         from a non-simulated thread",
                        self.name
                    ))
                })?;
                let deadline = me.now() + timeout_s;
                loop {
                    {
                        let mut st = self.state.lock();
                        if let Some(err) = &st.aborted {
                            return Err(err.clone());
                        }
                        if let Some((ts, tuple)) = st.items.pop_front() {
                            let depth = st.items.len();
                            drop(st);
                            self.note_dequeue(ts, depth);
                            not_full.notify_all();
                            return Ok(tuple);
                        }
                        if st.closed {
                            return Err(CoreError::QueueClosed(self.name.clone()));
                        }
                    }
                    if me.now() >= deadline {
                        return Err(CoreError::DeadlineExceeded(format!(
                            "dequeue on `{}` at virtual t={deadline:.6}",
                            self.name
                        )));
                    }
                    not_empty.wait_until(deadline);
                }
            }
        }
    }

    /// Non-blocking dequeue. `Ok(Some(tuple))` when an element was
    /// available (even on a closed queue — closing drains), `Ok(None)`
    /// when the queue is momentarily empty but open, and
    /// `Err(QueueClosed)` once closed *and* drained — the same terminal
    /// signal [`FifoQueue::dequeue`] gives, so pollers can tell "retry
    /// later" from "no more elements will ever arrive".
    pub fn try_dequeue(&self) -> Result<Option<Vec<Tensor>>> {
        let out = {
            let mut st = self.state.lock();
            if let Some(err) = &st.aborted {
                return Err(err.clone());
            }
            match st.items.pop_front() {
                Some((ts, tuple)) => {
                    let depth = st.items.len();
                    drop(st);
                    self.note_dequeue(ts, depth);
                    Some(tuple)
                }
                None if st.closed => return Err(CoreError::QueueClosed(self.name.clone())),
                None => None,
            }
        };
        if out.is_some() {
            match &self.waiters {
                Waiters::Real { not_full, .. } => {
                    not_full.notify_one();
                }
                Waiters::Sim { not_full, .. } => {
                    self.notify_sim(not_full);
                }
            }
        }
        Ok(out)
    }

    /// Close the queue: wake all waiters; enqueues fail from now on.
    /// Consumers drain the buffered elements, then see `QueueClosed`.
    pub fn close(&self) {
        self.close_with_cancel(false);
    }

    /// Close the queue, optionally cancelling the still-buffered
    /// elements — TensorFlow's `close(cancel_pending_enqueues=True)`.
    /// With `cancel_pending_enqueues` false this is [`FifoQueue::close`]
    /// (drain-then-error); with true the buffer is discarded, so parked
    /// and future consumers fail with `QueueClosed` immediately. In
    /// both modes every parked producer and consumer is woken.
    pub fn close_with_cancel(&self, cancel_pending_enqueues: bool) {
        {
            let mut st = self.state.lock();
            st.closed = true;
            if cancel_pending_enqueues {
                st.items.clear();
                self.stats.m_depth.set(0.0);
            }
        }
        match &self.waiters {
            Waiters::Real {
                not_empty,
                not_full,
            } => {
                not_empty.notify_all();
                not_full.notify_all();
            }
            Waiters::Sim {
                not_empty,
                not_full,
            } => {
                self.notify_sim(not_empty);
                self.notify_sim(not_full);
            }
        }
    }

    /// Abort the queue with `err` (first abort wins, later calls are
    /// no-ops): every pending and future operation — enqueue, dequeue,
    /// drain — fails with a clone of `err`, and all parked waiters wake
    /// immediately. This is how a dead peer or a supervisor teardown
    /// unblocks tasks parked on the dead task's queues.
    pub fn abort(&self, err: CoreError) {
        {
            let mut st = self.state.lock();
            if st.aborted.is_some() {
                return;
            }
            st.aborted = Some(err);
        }
        match &self.waiters {
            Waiters::Real {
                not_empty,
                not_full,
            } => {
                not_empty.notify_all();
                not_full.notify_all();
            }
            Waiters::Sim {
                not_empty,
                not_full,
            } => {
                self.notify_sim(not_empty);
                self.notify_sim(not_full);
            }
        }
    }

    /// The sticky abort error, when aborted.
    pub fn abort_error(&self) -> Option<CoreError> {
        self.state.lock().aborted.clone()
    }

    /// Notify one of a sim-bound queue's condvars. A sim condvar can
    /// only be notified from inside a simulated process; silently
    /// dropping the wakeup would leave parked sim processes blocked
    /// forever, so a non-sim caller is a bug worth failing loudly on.
    fn notify_sim(&self, cv: &SimCondvar) {
        assert!(
            tfhpc_sim::des::current().is_some(),
            "queue `{}` is bound to a simulation but was signalled from a \
             non-simulated thread; sim-bound queues must only be used from \
             inside simulated processes",
            self.name
        );
        cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn t(v: f64) -> Vec<Tensor> {
        vec![Tensor::scalar_f64(v)]
    }

    #[test]
    fn fifo_order() {
        let q = FifoQueue::new("q", 10);
        for i in 0..5 {
            q.enqueue(t(i as f64)).unwrap();
        }
        for i in 0..5 {
            let v = q.dequeue().unwrap();
            assert_eq!(v[0].scalar_value_f64().unwrap(), i as f64);
        }
    }

    #[test]
    fn dequeue_blocks_until_enqueue() {
        let q = FifoQueue::new("q", 4);
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.dequeue().unwrap()[0].scalar_value_f64().unwrap());
        thread::sleep(Duration::from_millis(20));
        q.enqueue(t(7.0)).unwrap();
        assert_eq!(h.join().unwrap(), 7.0);
    }

    #[test]
    fn enqueue_blocks_at_capacity() {
        let q = FifoQueue::new("q", 1);
        q.enqueue(t(1.0)).unwrap();
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            q2.enqueue(t(2.0)).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1); // producer is parked
        assert_eq!(q.dequeue().unwrap()[0].scalar_value_f64().unwrap(), 1.0);
        h.join().unwrap();
        assert_eq!(q.dequeue().unwrap()[0].scalar_value_f64().unwrap(), 2.0);
    }

    #[test]
    fn close_drains_then_errors() {
        let q = FifoQueue::new("q", 4);
        q.enqueue(t(1.0)).unwrap();
        q.close();
        assert!(matches!(q.enqueue(t(2.0)), Err(CoreError::QueueClosed(_))));
        assert!(q.dequeue().is_ok()); // drain
        assert!(matches!(q.dequeue(), Err(CoreError::QueueClosed(_))));
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q = FifoQueue::new("q", 4);
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.dequeue());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(matches!(h.join().unwrap(), Err(CoreError::QueueClosed(_))));
    }

    #[test]
    fn close_with_cancel_drops_buffered_elements() {
        let q = FifoQueue::new("q", 4);
        q.enqueue(t(1.0)).unwrap();
        q.enqueue(t(2.0)).unwrap();
        q.close_with_cancel(true);
        // Unlike a plain close, nothing is drained.
        assert!(matches!(q.dequeue(), Err(CoreError::QueueClosed(_))));
        assert!(q.is_empty());
        assert!(matches!(q.enqueue(t(3.0)), Err(CoreError::QueueClosed(_))));
    }

    #[test]
    fn close_wakes_every_consumer_parked_across_the_close() {
        // Regression: consumers already parked in dequeue() when the
        // close lands must all wake with QueueClosed in real-thread
        // mode, not stay parked forever.
        let q = FifoQueue::new("q", 4);
        let mut parked = Vec::new();
        for _ in 0..3 {
            let q2 = Arc::clone(&q);
            parked.push(thread::spawn(move || q2.dequeue()));
        }
        thread::sleep(Duration::from_millis(30));
        q.close_with_cancel(true);
        for h in parked {
            assert!(matches!(h.join().unwrap(), Err(CoreError::QueueClosed(_))));
        }
    }

    #[test]
    fn sim_close_with_cancel_wakes_parked_consumer() {
        use tfhpc_sim::des::{current, Sim};
        let sim = Sim::new();
        let q_slot: Arc<Mutex<Option<Arc<FifoQueue>>>> = Arc::new(Mutex::new(None));
        let outcome = Arc::new(Mutex::new(None));
        {
            let q_slot = Arc::clone(&q_slot);
            let outcome = Arc::clone(&outcome);
            sim.spawn("consumer", move || {
                let q = FifoQueue::new("simq-close", 4);
                *q_slot.lock() = Some(Arc::clone(&q));
                *outcome.lock() = Some(q.dequeue());
            });
        }
        {
            let q_slot = Arc::clone(&q_slot);
            sim.spawn("closer", move || {
                current().unwrap().advance(2.0);
                let q = q_slot.lock().as_ref().unwrap().clone();
                q.enqueue(vec![Tensor::scalar_f64(1.0)]).unwrap();
                // Buffered element is cancelled; the parked consumer
                // wakes with QueueClosed, not the value.
                q.close_with_cancel(true);
            });
        }
        sim.run();
        let got = outcome.lock().take().expect("consumer ran");
        // The consumer either grabbed the element before the cancel
        // (woken by the enqueue) or saw the close; under the DES the
        // schedule is deterministic — it wakes on the enqueue first.
        assert!(got.is_ok() || matches!(got, Err(CoreError::QueueClosed(_))));
    }

    #[test]
    fn try_dequeue_nonblocking() {
        let q = FifoQueue::new("q", 4);
        assert!(q.try_dequeue().unwrap().is_none());
        q.enqueue(t(3.0)).unwrap();
        assert!(q.try_dequeue().unwrap().is_some());
    }

    #[test]
    fn try_dequeue_surfaces_closed() {
        let q = FifoQueue::new("q", 4);
        q.enqueue(t(1.0)).unwrap();
        q.close();
        // Drain still succeeds after close...
        let drained = q.try_dequeue().unwrap().unwrap();
        assert_eq!(drained[0].scalar_value_f64().unwrap(), 1.0);
        // ...then the closed state is an error, not a silent None.
        assert!(matches!(q.try_dequeue(), Err(CoreError::QueueClosed(_))));
    }

    #[test]
    fn sim_mode_queue_carries_virtual_time() {
        use tfhpc_sim::des::{current, Sim};
        let sim = Sim::new();
        let q_slot: Arc<Mutex<Option<Arc<FifoQueue>>>> = Arc::new(Mutex::new(None));
        let consumer_time = Arc::new(Mutex::new(0.0f64));
        // Owner process creates the queue inside the sim, then consumes.
        {
            let q_slot = Arc::clone(&q_slot);
            let consumer_time = Arc::clone(&consumer_time);
            sim.spawn("owner", move || {
                let q = FifoQueue::new("simq", 4);
                *q_slot.lock() = Some(Arc::clone(&q));
                let v = q.dequeue().unwrap();
                assert_eq!(v[0].scalar_value_f64().unwrap(), 42.0);
                *consumer_time.lock() = current().unwrap().now();
            });
        }
        {
            let q_slot = Arc::clone(&q_slot);
            sim.spawn("producer", move || {
                let me = current().unwrap();
                me.advance(3.0); // produce at t=3
                let q = q_slot.lock().as_ref().unwrap().clone();
                q.enqueue(vec![Tensor::scalar_f64(42.0)]).unwrap();
            });
        }
        sim.run();
        // Consumer was blocked until the producer's t=3.
        assert!(*consumer_time.lock() >= 3.0);
    }

    #[test]
    fn abort_wakes_blocked_consumer_with_error() {
        let q = FifoQueue::new("q", 4);
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.dequeue());
        thread::sleep(Duration::from_millis(20));
        q.abort(CoreError::Unavailable("peer died".into()));
        assert!(matches!(h.join().unwrap(), Err(CoreError::Unavailable(_))));
        // Sticky: later operations fail the same way, no drain.
        assert!(matches!(q.enqueue(t(1.0)), Err(CoreError::Unavailable(_))));
        assert!(matches!(q.try_dequeue(), Err(CoreError::Unavailable(_))));
    }

    #[test]
    fn abort_cancels_pending_elements() {
        let q = FifoQueue::new("q", 4);
        q.enqueue(t(1.0)).unwrap();
        q.abort(CoreError::Aborted("gang restart".into()));
        // Unlike close(), abort does not drain.
        assert!(matches!(q.dequeue(), Err(CoreError::Aborted(_))));
        // First abort wins.
        q.abort(CoreError::Unavailable("second".into()));
        assert!(matches!(q.abort_error(), Some(CoreError::Aborted(_))));
    }

    #[test]
    fn dequeue_timeout_expires_then_succeeds() {
        let q = FifoQueue::new("q", 4);
        assert!(matches!(
            q.dequeue_timeout(0.02),
            Err(CoreError::DeadlineExceeded(_))
        ));
        q.enqueue(t(8.0)).unwrap();
        assert_eq!(
            q.dequeue_timeout(0.02).unwrap()[0]
                .scalar_value_f64()
                .unwrap(),
            8.0
        );
    }

    #[test]
    fn dequeue_timeout_woken_by_late_producer() {
        let q = FifoQueue::new("q", 4);
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.dequeue_timeout(5.0));
        thread::sleep(Duration::from_millis(20));
        q.enqueue(t(3.0)).unwrap();
        assert_eq!(
            h.join().unwrap().unwrap()[0].scalar_value_f64().unwrap(),
            3.0
        );
    }

    #[test]
    fn sim_dequeue_timeout_fires_at_exact_virtual_time() {
        use tfhpc_sim::des::{current, Sim};
        let sim = Sim::new();
        let out = Arc::new(Mutex::new((0.0f64, false)));
        {
            let out = Arc::clone(&out);
            sim.spawn("consumer", move || {
                let q = FifoQueue::new("simq", 4);
                let me = current().unwrap();
                me.advance(1.0);
                let r = q.dequeue_timeout(2.5);
                *out.lock() = (me.now(), matches!(r, Err(CoreError::DeadlineExceeded(_))));
            });
        }
        sim.run();
        let (now, deadline_hit) = *out.lock();
        assert!(deadline_hit);
        assert_eq!(now, 3.5); // exactly start + timeout
    }

    #[test]
    fn step_stat_counts_activity() {
        let q = FifoQueue::new("stats-q", 4);
        q.enqueue(t(1.0)).unwrap();
        q.enqueue(t(2.0)).unwrap();
        q.dequeue().unwrap();
        let s = q.step_stat();
        assert_eq!(s.name, "stats-q");
        assert_eq!(s.enqueued, 2);
        assert_eq!(s.dequeued, 1);
        assert_eq!(s.depth, 1);
        assert!(s.residency_seconds >= 0.0);
    }

    #[test]
    fn multi_producer_multi_consumer_counts() {
        let q = FifoQueue::new("q", 8);
        let total = 200;
        let mut handles = Vec::new();
        for p in 0..4 {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..total / 4 {
                    q.enqueue(t((p * 1000 + i) as f64)).unwrap();
                }
            }));
        }
        let got = Arc::new(Mutex::new(0usize));
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let got = Arc::clone(&got);
            consumers.push(thread::spawn(move || {
                while q.dequeue().is_ok() {
                    *got.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(*got.lock(), total);
    }
}
