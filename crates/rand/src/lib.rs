//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network or registry cache, so the real
//! crate cannot be fetched; this shim provides the deterministic-PRNG
//! surface `tfhpc-tensor` samples through (`rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`/`gen_range`). The generator
//! is splitmix64 — a full-period 64-bit mixer with solid statistical
//! quality for seeded test data (not cryptographic).

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Seed deterministically from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution: `[0, 1)`
    /// for floats, the full range for integers.
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from their standard distribution.
pub trait SampleUniform {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 top bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleUniform for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleUniform for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl SampleUniform for i32 {
    fn sample<R: RngCore>(rng: &mut R) -> i32 {
        (rng.next_u64() >> 32) as i32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw one value in the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let f: f64 = f64::sample(rng);
        self.start + f * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample<R: RngCore>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end - self.start) as u64;
        // Modulo bias is negligible for the test-scale spans used here.
        self.start + (rng.next_u64() % span) as usize
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast deterministic generator (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
            let n = r.gen_range(3usize..10);
            assert!((3..10).contains(&n));
        }
    }
}
