//! A Go-style wait group: counts outstanding tasks and lets one thread
//! block until the count returns to zero.

use parking_lot::{Condvar, Mutex};

/// Counter of in-flight tasks with blocking wait-for-zero.
pub struct WaitGroup {
    count: Mutex<usize>,
    cv: Condvar,
}

impl WaitGroup {
    /// New group with a zero count.
    pub fn new() -> Self {
        WaitGroup {
            count: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Register `n` additional tasks.
    pub fn add(&self, n: usize) {
        *self.count.lock() += n;
    }

    /// Mark one task finished; wakes waiters when the count hits zero.
    pub fn done(&self) {
        let mut c = self.count.lock();
        debug_assert!(*c > 0, "WaitGroup::done without matching add");
        *c -= 1;
        if *c == 0 {
            self.cv.notify_all();
        }
    }

    /// Block until the count is zero.
    pub fn wait(&self) {
        let mut c = self.count.lock();
        while *c != 0 {
            self.cv.wait(&mut c);
        }
    }

    /// Current count (racy; for diagnostics only).
    pub fn pending(&self) -> usize {
        *self.count.lock()
    }
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_returns_immediately_at_zero() {
        let wg = WaitGroup::new();
        wg.wait();
    }

    #[test]
    fn wait_blocks_until_done() {
        let wg = Arc::new(WaitGroup::new());
        wg.add(3);
        let wg2 = Arc::clone(&wg);
        let t = std::thread::spawn(move || {
            for _ in 0..3 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                wg2.done();
            }
        });
        wg.wait();
        assert_eq!(wg.pending(), 0);
        t.join().unwrap();
    }

    #[test]
    #[should_panic]
    fn done_without_add_panics_in_debug() {
        if !cfg!(debug_assertions) {
            panic!("skip: release mode");
        }
        let wg = WaitGroup::new();
        wg.done();
    }
}
