//! # tfhpc-parallel
//!
//! A small, dependency-light data-parallelism layer used by every CPU
//! kernel in the `tfhpc` workspace. It provides:
//!
//! * [`ThreadPool`] — a fixed-size pool of worker threads fed through a
//!   crossbeam channel.
//! * [`scope`] — structured (scoped) task spawning with non-`'static`
//!   borrows, panic propagation and guaranteed join-before-return.
//! * [`parallel_for`] / [`parallel_reduce`] / [`par_chunks_mut`] —
//!   chunked data-parallel loops with dynamic (work-sharing) scheduling.
//!
//! The pool intentionally mirrors the subset of rayon used by HPC
//! kernels; building it ourselves keeps the workspace self-contained
//! and exercises the atomics/locks idioms from the domain guides.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

mod wait_group;
pub use wait_group::WaitGroup;

pub mod arena;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads.
///
/// Jobs are dispatched through an unbounded MPMC channel; workers catch
/// panics so a panicking task never poisons the pool (the panic payload
/// is re-thrown by the [`Scope`] that spawned the task).
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Create a pool with `size` worker threads (at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let workers = (0..size)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("tfhpc-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            size,
        }
    }

    /// Number of worker threads in this pool.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submit a `'static` job. Prefer [`Scope::spawn`] for borrowed work.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.sender
            .as_ref()
            .expect("pool shut down")
            .send(Box::new(f))
            .expect("pool workers gone");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain outstanding jobs and exit.
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The process-wide default pool, sized to the machine's parallelism.
pub fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ThreadPool::new(n)
    })
}

/// Tracks tasks spawned in a scope plus the first panic payload.
struct ScopeState {
    pending: WaitGroup,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    _cv: Condvar,
}

/// Handle for spawning borrowed tasks inside [`scope`].
pub struct Scope<'scope> {
    pool: &'scope ThreadPool,
    state: Arc<ScopeState>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task that may borrow from the enclosing scope.
    ///
    /// The task is guaranteed to have finished before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.add(1);
        let state = Arc::clone(&self.state);
        // SAFETY: `scope()` blocks until `pending` reaches zero before
        // returning, so the closure (and everything it borrows, which
        // lives at least as long as `'scope`) outlives its execution.
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                let mut slot = state.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.pending.done();
        });
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool
            .sender
            .as_ref()
            .expect("pool shut down")
            .send(job)
            .expect("pool workers gone");
    }
}

/// Run `f` with a [`Scope`] bound to `pool`; blocks until every spawned
/// task completed. Re-throws the first task panic, if any.
pub fn scope_on<'env, F, R>(pool: &ThreadPool, f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let state = Arc::new(ScopeState {
        pending: WaitGroup::new(),
        panic: Mutex::new(None),
        _cv: Condvar::new(),
    });
    let scope = Scope {
        pool: unsafe { std::mem::transmute::<&ThreadPool, &ThreadPool>(pool) },
        state: Arc::clone(&state),
        _marker: std::marker::PhantomData,
    };
    let out = f(&scope);
    state.pending.wait();
    if let Some(payload) = state.panic.lock().take() {
        std::panic::resume_unwind(payload);
    }
    out
}

/// [`scope_on`] against the global pool.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    scope_on(global_pool(), f)
}

/// Run two closures potentially in parallel and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra = None;
    let rb = scope(|s| {
        s.spawn(|| ra = Some(a()));
        b()
    });
    (ra.expect("join: first closure did not run"), rb)
}

thread_local! {
    /// Per-thread cap on data-parallel workers (0 = no cap). Set by the
    /// session's intra-op knob so kernels running on inter-op workers
    /// share the machine fairly.
    static WORKER_LIMIT: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Run `f` with this thread's data-parallel worker cap set to `limit`
/// (0 = unlimited). The previous cap is restored on exit, including on
/// unwind. [`parallel_for`]/[`parallel_reduce`] called from within `f`
/// use at most `limit` pool workers.
pub fn with_worker_limit<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_LIMIT.with(|l| l.set(self.0));
        }
    }
    let prev = WORKER_LIMIT.with(|l| l.replace(limit));
    let _restore = Restore(prev);
    f()
}

/// This thread's current data-parallel worker cap (0 = unlimited).
pub fn current_worker_limit() -> usize {
    WORKER_LIMIT.with(|l| l.get())
}

/// Effective worker count for a data-parallel loop on this thread:
/// the pool size, clamped by [`current_worker_limit`].
fn effective_workers(pool: &ThreadPool) -> usize {
    match current_worker_limit() {
        0 => pool.size(),
        limit => limit.min(pool.size()),
    }
}

/// Pick a chunk size that yields a few chunks per worker for dynamic
/// load balance without excessive scheduling overhead.
pub fn default_chunk(len: usize, workers: usize) -> usize {
    if len == 0 {
        return 1;
    }
    let target_chunks = workers.max(1) * 4;
    len.div_ceil(target_chunks)
}

/// [`default_chunk`] rounded up to a multiple of `line_elems` (elements
/// per cache line for the element type). Chunk boundaries then fall on
/// cache-line edges, so two workers writing adjacent chunks never share
/// a line (no false sharing on the seams of `par_chunks_mut` tiles).
pub fn aligned_chunk(len: usize, workers: usize, line_elems: usize) -> usize {
    let base = default_chunk(len, workers);
    let line = line_elems.max(1);
    base.div_ceil(line) * line
}

/// Data-parallel `for` over `0..len` in chunks.
///
/// `body(start, end)` is invoked for disjoint half-open ranges covering
/// `0..len`. Chunks are claimed dynamically from an atomic counter so
/// uneven chunks do not stall the loop.
pub fn parallel_for<F>(len: usize, chunk: usize, body: F)
where
    F: Fn(usize, usize) + Send + Sync,
{
    let pool = global_pool();
    let chunk = chunk.max(1);
    let n_chunks = len.div_ceil(chunk);
    let cap = effective_workers(pool);
    if n_chunks <= 1 || cap == 1 {
        if len > 0 {
            body(0, len);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let body = &body;
    let next = &next;
    scope_on(pool, |s| {
        let workers = cap.min(n_chunks);
        for _ in 0..workers {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                let start = i * chunk;
                let end = (start + chunk).min(len);
                body(start, end);
            });
        }
    });
}

/// Data-parallel reduction: map each chunk with `map(start, end)` and
/// fold the partials with `fold`, starting from `identity`.
///
/// Deterministic for a fixed `(len, chunk, worker count)`: chunks are
/// assigned round-robin (worker `w` takes chunks `w, w+W, …`), each
/// worker folds its chunks in ascending index order, and the per-worker
/// partials are folded in worker order. Execution timing never changes
/// the association, so floating-point reductions are bit-reproducible
/// run to run. (The previous implementation folded partials in worker
/// *completion* order, which raced.)
pub fn parallel_reduce<T, M, R>(len: usize, chunk: usize, identity: T, map: M, fold: R) -> T
where
    T: Send,
    M: Fn(usize, usize) -> T + Send + Sync,
    R: Fn(T, T) -> T + Send + Sync,
{
    let pool = global_pool();
    let chunk = chunk.max(1);
    let n_chunks = len.div_ceil(chunk);
    let cap = effective_workers(pool);
    if n_chunks <= 1 || cap == 1 {
        return if len == 0 {
            identity
        } else {
            fold(identity, map(0, len))
        };
    }
    let workers = cap.min(n_chunks);
    let mut partials: Vec<Option<T>> = (0..workers).map(|_| None).collect();
    {
        let map = &map;
        let fold = &fold;
        let slots = SendPtr(partials.as_mut_ptr());
        scope_on(pool, |s| {
            for w in 0..workers {
                s.spawn(move || {
                    let slots = slots;
                    let mut local: Option<T> = None;
                    let mut i = w;
                    while i < n_chunks {
                        let start = i * chunk;
                        let end = (start + chunk).min(len);
                        let v = map(start, end);
                        local = Some(match local.take() {
                            None => v,
                            Some(acc) => fold(acc, v),
                        });
                        i += workers;
                    }
                    // SAFETY: worker `w` writes only slot `w`; the
                    // scope joins before `partials` is read.
                    unsafe { *slots.0.add(w) = local };
                });
            }
        });
    }
    partials.into_iter().flatten().fold(identity, fold)
}

/// Data-parallel mutation of disjoint chunks of a slice.
///
/// `body(chunk_index, chunk)` runs for each `chunk_size`-sized window.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Send + Sync,
{
    let chunk_size = chunk_size.max(1);
    let len = data.len();
    if len == 0 {
        return;
    }
    let ptr = SendPtr(data.as_mut_ptr());
    let body = &body;
    parallel_for(len.div_ceil(chunk_size), 1, move |ci_start, ci_end| {
        let ptr = ptr; // capture the SendPtr wrapper, not its raw field
        for ci in ci_start..ci_end {
            let start = ci * chunk_size;
            let end = (start + chunk_size).min(len);
            // SAFETY: chunk windows are disjoint; `parallel_for`
            // joins before `data`'s borrow ends.
            let slice = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(start), end - start) };
            body(ci, slice);
        }
    });
}

/// A raw pointer wrapper asserting cross-thread transferability for the
/// disjoint-chunk pattern above.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_executes_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // join workers
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn scope_joins_before_return() {
        let mut data = vec![0u64; 1000];
        scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                if i % 100 == 0 {
                    s.spawn(move || *slot = i as u64);
                }
            }
        });
        for i in (0..1000).step_by(100) {
            assert_eq!(data[i], i as u64);
        }
    }

    #[test]
    fn scope_propagates_panic() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 2 + 2, || "hi".len());
        assert_eq!(a, 4);
        assert_eq!(b, 2);
    }

    #[test]
    fn parallel_for_covers_range_once() {
        let hits = (0..10_000).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        parallel_for(10_000, 37, |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_and_tiny() {
        parallel_for(0, 8, |_, _| panic!("must not run"));
        let ran = AtomicUsize::new(0);
        parallel_for(1, 8, |s, e| {
            assert_eq!((s, e), (0, 1));
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn parallel_reduce_sums() {
        let n = 100_000usize;
        let total = parallel_reduce(
            n,
            1024,
            0u64,
            |s, e| (s..e).map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn parallel_reduce_empty_returns_identity() {
        let v = parallel_reduce(0, 16, 42u32, |_, _| 0, |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn par_chunks_mut_disjoint() {
        let mut v = vec![0u32; 1003];
        par_chunks_mut(&mut v, 64, |ci, chunk| {
            for x in chunk.iter_mut() {
                *x = ci as u32 + 1;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, (i / 64) as u32 + 1, "index {i}");
        }
    }

    #[test]
    fn default_chunk_reasonable() {
        assert_eq!(default_chunk(0, 8), 1);
        let c = default_chunk(1000, 8);
        assert!((1..=1000).contains(&c));
        // Should produce roughly 4 chunks per worker.
        assert!((1000 / c) >= 8);
    }

    #[test]
    fn worker_limit_scopes_and_restores() {
        assert_eq!(current_worker_limit(), 0);
        let out = with_worker_limit(3, || {
            assert_eq!(current_worker_limit(), 3);
            with_worker_limit(1, || assert_eq!(current_worker_limit(), 1));
            assert_eq!(current_worker_limit(), 3);
            7
        });
        assert_eq!(out, 7);
        assert_eq!(current_worker_limit(), 0);
        // Restored even when the body panics.
        let _ = std::panic::catch_unwind(|| with_worker_limit(5, || panic!("boom")));
        assert_eq!(current_worker_limit(), 0);
    }

    #[test]
    fn worker_limit_one_runs_inline() {
        let caller = std::thread::current().id();
        with_worker_limit(1, || {
            parallel_for(10_000, 16, |_, _| {
                assert_eq!(std::thread::current().id(), caller);
            });
            let sum = parallel_reduce(
                1000,
                16,
                0u64,
                |s, e| {
                    assert_eq!(std::thread::current().id(), caller);
                    (s..e).map(|i| i as u64).sum()
                },
                |a, b| a + b,
            );
            assert_eq!(sum, 999 * 1000 / 2);
        });
    }

    #[test]
    fn worker_limit_caps_but_completes() {
        with_worker_limit(2, || {
            let hits = (0..5000).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
            parallel_for(5000, 64, |s, e| {
                for h in &hits[s..e] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Scope waiting happens on the caller thread, not a pool
        // worker, so nesting from the caller side is safe.
        let total = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    total.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        scope(|s| {
            s.spawn(|| {
                total.fetch_add(10, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 14);
    }
}
