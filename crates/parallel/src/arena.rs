//! Cache-aligned, thread-local scratch buffers for kernel internals.
//!
//! Compute kernels need short-lived working storage — packed matmul
//! panels, per-stage FFT twiddle tables — that must not ping-pong
//! cache lines between intra-op workers. Every buffer handed out here
//! is 64-byte aligned (one full cache line), so a worker's tile never
//! straddles a line owned by another worker's tile, and the freelist is
//! thread-local so two workers never contend on the allocator for the
//! same block.
//!
//! Buffers are *scratch*: contents are unspecified on acquisition (a
//! recycled buffer keeps its previous bytes) and every user is expected
//! to fully overwrite what it reads. The float views are sound either
//! way — any bit pattern is a valid `f64`/`f32`.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::cell::RefCell;
use std::ptr::NonNull;

/// Cache-line size the arena aligns to.
pub const CACHE_LINE: usize = 64;

/// Freelist bounds: buffers above `MAX_CACHED_BYTES` or beyond
/// `MAX_CACHED_BUFS` entries are returned to the system instead of
/// cached, so a one-off huge transform cannot pin memory forever.
const MAX_CACHED_BYTES: usize = 64 << 20;
const MAX_CACHED_BUFS: usize = 16;

/// A 64-byte-aligned heap buffer with unspecified contents.
pub struct AlignedBuf {
    ptr: NonNull<u8>,
    bytes: usize,
}

impl AlignedBuf {
    fn new(bytes: usize) -> AlignedBuf {
        let bytes = bytes.max(CACHE_LINE).next_multiple_of(CACHE_LINE);
        let layout = Layout::from_size_align(bytes, CACHE_LINE).expect("arena layout");
        // SAFETY: layout has nonzero size.
        let raw = unsafe { alloc(layout) };
        let ptr = NonNull::new(raw).unwrap_or_else(|| handle_alloc_error(layout));
        AlignedBuf { ptr, bytes }
    }

    /// Capacity in bytes (always a multiple of the cache line).
    pub fn capacity(&self) -> usize {
        self.bytes
    }

    /// View the first `n` elements as a mutable `f64` slice.
    /// Contents are whatever the previous user left behind.
    pub fn as_f64_mut(&mut self, n: usize) -> &mut [f64] {
        assert!(n * 8 <= self.bytes, "arena buffer too small");
        // SAFETY: the allocation is 64-byte aligned (≥ align_of::<f64>),
        // covers `n * 8` bytes, and any bit pattern is a valid f64.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr() as *mut f64, n) }
    }

    /// View the first `n` elements as a mutable `f32` slice.
    pub fn as_f32_mut(&mut self, n: usize) -> &mut [f32] {
        assert!(n * 4 <= self.bytes, "arena buffer too small");
        // SAFETY: as above; any bit pattern is a valid f32.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr() as *mut f32, n) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.bytes, CACHE_LINE).expect("arena layout");
        // SAFETY: allocated with this exact layout in `new`.
        unsafe { dealloc(self.ptr.as_ptr(), layout) };
    }
}

thread_local! {
    static FREELIST: RefCell<Vec<AlignedBuf>> = const { RefCell::new(Vec::new()) };
}

fn take(bytes: usize) -> AlignedBuf {
    FREELIST.with(|fl| {
        let mut fl = fl.borrow_mut();
        // Smallest cached buffer that fits, to keep big blocks for big
        // requests.
        let mut best: Option<usize> = None;
        for (i, b) in fl.iter().enumerate() {
            if b.bytes >= bytes && best.is_none_or(|j| b.bytes < fl[j].bytes) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => fl.swap_remove(i),
            None => AlignedBuf::new(bytes),
        }
    })
}

fn give(buf: AlignedBuf) {
    if buf.bytes > MAX_CACHED_BYTES {
        return;
    }
    FREELIST.with(|fl| {
        let mut fl = fl.borrow_mut();
        if fl.len() < MAX_CACHED_BUFS {
            fl.push(buf);
        }
    });
}

/// Run `f` with a 64-byte-aligned scratch buffer of at least `bytes`
/// bytes, recycled through this thread's freelist. Contents are
/// unspecified on entry; the buffer returns to the freelist afterwards
/// (even on unwind the allocation is reclaimed by `Drop`).
pub fn with_scratch<R>(bytes: usize, f: impl FnOnce(&mut AlignedBuf) -> R) -> R {
    let mut buf = take(bytes);
    let out = f(&mut buf);
    give(buf);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_cache_aligned() {
        for n in [1usize, 63, 64, 65, 4096, 1 << 20] {
            with_scratch(n, |b| {
                assert_eq!(b.ptr.as_ptr() as usize % CACHE_LINE, 0);
                assert!(b.capacity() >= n);
                assert_eq!(b.capacity() % CACHE_LINE, 0);
            });
        }
    }

    #[test]
    fn float_views_cover_request() {
        with_scratch(1024 * 8, |b| {
            let s = b.as_f64_mut(1024);
            s.iter_mut().for_each(|v| *v = 1.5);
            assert_eq!(s.len(), 1024);
            assert!(s.iter().all(|v| *v == 1.5));
        });
        with_scratch(100 * 4, |b| {
            assert_eq!(b.as_f32_mut(100).len(), 100);
        });
    }

    #[test]
    fn freelist_recycles_same_allocation() {
        // Warm the freelist, then the same-size request must reuse it.
        let p1 = with_scratch(8192, |b| b.ptr.as_ptr() as usize);
        let p2 = with_scratch(8192, |b| b.ptr.as_ptr() as usize);
        assert_eq!(p1, p2, "freelist did not recycle");
    }

    #[test]
    fn nested_scratch_buffers_are_distinct() {
        with_scratch(256, |a| {
            let pa = a.ptr.as_ptr() as usize;
            with_scratch(256, |b| {
                assert_ne!(pa, b.ptr.as_ptr() as usize);
            });
        });
    }
}
