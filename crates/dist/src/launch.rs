//! End-to-end distributed launch: Slurm allocation → resolver →
//! servers → one process per task.
//!
//! This is the experiment driver: given a platform preset, a job list
//! and a transport, it allocates simulated nodes, resolves the cluster
//! spec (paper §III), starts a server per task and runs the supplied
//! task body — as a DES process per task in simulated mode, or as an
//! OS thread per task in real mode. The returned elapsed time is
//! virtual (simulated) or wall-clock (real).

use crate::cluster_spec::TaskKey;
use crate::resolver::{resolve_with_policy, JobSpec, Resolved};
use crate::server::{Server, TfCluster};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;
use tfhpc_core::{CoreError, Result};
use tfhpc_sim::des::Sim;
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::Platform;
use tfhpc_sim::topology::ClusterSim;
use tfhpc_slurm::{Distribution, JobRequest, SlurmCluster};

/// A distributed run request.
#[derive(Clone)]
pub struct LaunchConfig {
    /// Hardware platform preset.
    pub platform: Platform,
    /// Jobs to lay out (in order; each starts on a fresh node).
    pub jobs: Vec<JobSpec>,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Run on the simulated cluster (virtual time) or on host threads.
    pub simulated: bool,
}

impl LaunchConfig {
    /// Simulated-run config.
    pub fn simulated(platform: Platform, jobs: Vec<JobSpec>, protocol: Protocol) -> LaunchConfig {
        LaunchConfig {
            platform,
            jobs,
            protocol,
            simulated: true,
        }
    }

    /// Real-mode (host threads, wall clock) config.
    pub fn real(platform: Platform, jobs: Vec<JobSpec>, protocol: Protocol) -> LaunchConfig {
        LaunchConfig {
            platform,
            jobs,
            protocol,
            simulated: false,
        }
    }
}

/// Context handed to each task body.
pub struct TaskCtx {
    /// This task's server.
    pub server: Arc<Server>,
    /// This task's identity.
    pub key: TaskKey,
    /// GPU ids visible to this task.
    pub gpu_ids: Vec<usize>,
    start: Instant,
}

impl TaskCtx {
    /// Job name.
    pub fn job(&self) -> &str {
        &self.key.job
    }

    /// Task index within the job.
    pub fn index(&self) -> usize {
        self.key.index
    }

    /// Number of tasks in `job`.
    pub fn num_tasks(&self, job: &str) -> usize {
        self.server.cluster().spec.num_tasks(job)
    }

    /// Seconds since launch: virtual time in simulated mode, wall time
    /// otherwise.
    pub fn now(&self) -> f64 {
        match tfhpc_sim::des::current() {
            Some(me) => me.now(),
            None => self.start.elapsed().as_secs_f64(),
        }
    }
}

/// Result of a distributed run.
pub struct Launched {
    /// Total elapsed seconds (virtual or wall).
    pub elapsed_s: f64,
    /// Resolver output (spec + placements).
    pub resolved: Resolved,
    /// The DES, for counter inspection (simulated runs only).
    pub sim: Option<Arc<Sim>>,
    /// The runtime cluster (servers remain queryable after the run).
    pub cluster: Arc<TfCluster>,
}

/// Nodes needed for `jobs` at `tasks_per_node`, one fresh start per job.
pub fn nodes_needed(jobs: &[JobSpec], tasks_per_node: usize) -> usize {
    jobs.iter()
        .map(|j| j.tasks.div_ceil(tasks_per_node.max(1)))
        .sum()
}

/// Run `body` once per task across a freshly-allocated cluster.
pub fn launch<F>(cfg: &LaunchConfig, body: F) -> Result<Launched>
where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    launch_with_setup(cfg, |_| {}, body)
}

/// [`launch`] with a setup hook that runs once (outside virtual time)
/// after servers exist but before any task body starts — used to
/// pre-populate shared tile stores, mirroring the paper's offline
/// tile pre-processing step which is excluded from measurements.
pub fn launch_with_setup<S, F>(cfg: &LaunchConfig, setup: S, body: F) -> Result<Launched>
where
    S: FnOnce(&Arc<TfCluster>),
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    launch_inner(cfg, setup, body, false)
}

/// [`launch_with_setup`] with DES occupancy tracing enabled — the
/// returned `Launched::sim` then carries a Fig. 3-style execution
/// trace (`Sim::trace` / `Sim::trace_chrome_json`).
pub fn launch_traced<S, F>(cfg: &LaunchConfig, setup: S, body: F) -> Result<Launched>
where
    S: FnOnce(&Arc<TfCluster>),
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    launch_inner(cfg, setup, body, true)
}

fn launch_inner<S, F>(cfg: &LaunchConfig, setup: S, body: F, trace: bool) -> Result<Launched>
where
    S: FnOnce(&Arc<TfCluster>),
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let tasks_per_node = cfg.platform.node.tf_instances_per_node.max(1);
    let n_nodes = nodes_needed(&cfg.jobs, tasks_per_node);
    if n_nodes == 0 {
        return Err(CoreError::Invalid("no tasks requested".into()));
    }

    // Allocate through the simulated workload manager.
    let mut slurm = SlurmCluster::for_platform(&cfg.platform, n_nodes);
    let total_tasks: usize = cfg.jobs.iter().map(|j| j.tasks).sum();
    let alloc = slurm
        .submit(&JobRequest {
            nodes: n_nodes,
            ntasks: total_tasks,
            distribution: Distribution::Plane(tasks_per_node),
            gpus_per_task: 0,
        })
        .map_err(|e| CoreError::Invalid(format!("slurm: {e}")))?;

    // Resolve the TensorFlow cluster spec (the paper's resolver).
    let resolved =
        resolve_with_policy(&alloc, &cfg.jobs, tasks_per_node, true).map_err(CoreError::Invalid)?;

    // Check GPU feasibility ("insufficient number of GPUs available").
    for t in &resolved.tasks {
        if let Some(max) = t.gpu_ids.iter().max() {
            if *max >= cfg.platform.node.gpus_per_node {
                return Err(CoreError::Invalid(format!(
                    "task {} needs GPU {} but nodes have {}",
                    t.key, max, cfg.platform.node.gpus_per_node
                )));
            }
        }
    }

    // Instantiate hardware and the runtime cluster.
    let sim = cfg.simulated.then(Sim::new);
    if trace {
        if let Some(s) = &sim {
            s.enable_tracing();
        }
    }
    let cluster_sim = sim
        .as_ref()
        .map(|s| Arc::new(ClusterSim::new(s, cfg.platform.clone(), n_nodes)));
    let cluster = TfCluster::new(resolved.spec.clone(), cfg.protocol, cluster_sim);

    let servers: Vec<(TaskKey, Arc<Server>, Vec<usize>)> = resolved
        .tasks
        .iter()
        .map(|t| {
            let server = cluster.start_server(t.key.clone(), t.node_index, t.gpu_ids.clone());
            (t.key.clone(), server, t.gpu_ids.clone())
        })
        .collect();

    setup(&cluster);

    let body = Arc::new(body);
    let start = Instant::now();

    let elapsed_s = match &sim {
        Some(sim) => {
            for (key, server, gpu_ids) in servers {
                let body = Arc::clone(&body);
                let ctx = TaskCtx {
                    server,
                    key: key.clone(),
                    gpu_ids,
                    start,
                };
                sim.spawn(&key.to_string(), move || {
                    if let Err(e) = body(ctx) {
                        panic!("task failed: {e}");
                    }
                });
            }
            sim.run()
        }
        None => {
            let errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            for (key, server, gpu_ids) in servers {
                let body = Arc::clone(&body);
                let errors = Arc::clone(&errors);
                let ctx = TaskCtx {
                    server,
                    key: key.clone(),
                    gpu_ids,
                    start,
                };
                handles.push(
                    std::thread::Builder::new()
                        .name(key.to_string())
                        .spawn(move || {
                            if let Err(e) = body(ctx) {
                                errors.lock().push(format!("{key}: {e}"));
                            }
                        })
                        .expect("spawn task thread"),
                );
            }
            // Teardown discipline: join everything that finishes, but a
            // panicked task can leave siblings parked on queues forever
            // — so after a failure is observed, give the rest a bounded
            // grace period instead of hanging the caller, and report
            // any still-running tasks in the error.
            let mut handles = handles;
            let mut panicked = 0usize;
            let mut deadline: Option<Instant> = None;
            while !handles.is_empty() {
                let failed_so_far = panicked > 0 || !errors.lock().is_empty();
                if failed_so_far && deadline.is_none() {
                    deadline = Some(Instant::now() + std::time::Duration::from_secs(5));
                }
                if let Some(d) = deadline {
                    if Instant::now() > d {
                        break; // leak stragglers, but report it below
                    }
                }
                let mut progressed = false;
                let mut i = 0;
                while i < handles.len() {
                    if handles[i].is_finished() {
                        if handles.swap_remove(i).join().is_err() {
                            panicked += 1;
                        }
                        progressed = true;
                    } else {
                        i += 1;
                    }
                }
                if !progressed && !handles.is_empty() {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            if panicked > 0 {
                errors.lock().push(format!("{panicked} task(s) panicked"));
            }
            if !handles.is_empty() {
                errors.lock().push(format!(
                    "{} task(s) still blocked after failure; detached",
                    handles.len()
                ));
            }
            let errs = errors.lock();
            if !errs.is_empty() {
                return Err(CoreError::Invalid(errs.join("; ")));
            }
            start.elapsed().as_secs_f64()
        }
    };

    Ok(Launched {
        elapsed_s,
        resolved,
        sim,
        cluster,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfhpc_sim::platform;
    use tfhpc_tensor::Tensor;

    #[test]
    fn nodes_needed_per_job_fresh() {
        let jobs = vec![JobSpec::new("ps", 1, 0), JobSpec::new("worker", 4, 1)];
        // Kebnekaise K80: 4 instances/node → 1 + 1 nodes.
        assert_eq!(nodes_needed(&jobs, 4), 2);
        // Tegner K420: 1 instance/node → 1 + 4 nodes.
        assert_eq!(nodes_needed(&jobs, 1), 5);
    }

    #[test]
    fn simulated_launch_runs_every_task() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k80(),
            vec![JobSpec::new("worker", 4, 1)],
            Protocol::Rdma,
        );
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let out = launch(&cfg, move |ctx| {
            assert_eq!(ctx.job(), "worker");
            c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            // Spend some virtual time.
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(1.0 + ctx.index() as f64);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 4);
        // Slowest task advanced 4 seconds.
        assert!((out.elapsed_s - 4.0).abs() < 1e-9);
        assert_eq!(out.resolved.spec.num_tasks("worker"), 4);
    }

    #[test]
    fn real_launch_measures_wall_time() {
        let cfg = LaunchConfig::real(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Grpc,
        );
        let out = launch(&cfg, |_ctx| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            Ok(())
        })
        .unwrap();
        assert!(out.elapsed_s >= 0.01);
        assert!(out.sim.is_none());
    }

    #[test]
    fn body_error_fails_launch_in_real_mode() {
        let cfg = LaunchConfig::real(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 1, 0)],
            Protocol::Grpc,
        );
        let result = launch(&cfg, |_ctx| Err(CoreError::Invalid("intentional".into())));
        match result {
            Err(CoreError::Invalid(msg)) => assert!(msg.contains("intentional")),
            _ => panic!("expected launch to surface the task error"),
        }
    }

    #[test]
    fn insufficient_gpus_detected() {
        // Tegner K420 nodes have 1 GPU; asking 2 GPUs per task fails.
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 1, 2)],
            Protocol::Rdma,
        );
        assert!(launch(&cfg, |_| Ok(())).is_err());
    }

    #[test]
    fn cross_task_communication_in_sim() {
        // ps + 2 workers: workers push into a ps variable.
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("ps", 1, 0), JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        );
        let out = launch(&cfg, |ctx| {
            let ps = TaskKey::new("ps", 0);
            if ctx.job() == "ps" {
                ctx.server
                    .resources
                    .create_variable("acc", Tensor::scalar_f64(0.0));
                // ps stays alive long enough to receive (barrier-free
                // model: variable exists from t=0 since creation is at
                // virtual time 0 before any worker sends at t>0).
                Ok(())
            } else {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(0.001 * (ctx.index() + 1) as f64);
                }
                ctx.server
                    .remote_assign_add(&ps, "acc", &Tensor::scalar_f64(1.0), None, None)?;
                Ok(())
            }
        })
        .unwrap();
        let ps = out.cluster.server(&TaskKey::new("ps", 0)).unwrap();
        assert_eq!(
            ps.resources
                .variable("acc")
                .unwrap()
                .read()
                .scalar_value_f64()
                .unwrap(),
            2.0
        );
    }
}
