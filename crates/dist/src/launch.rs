//! End-to-end distributed launch: Slurm allocation → resolver →
//! servers → one supervised process per task.
//!
//! This is the experiment driver: given a platform preset, a job list
//! and a transport, it allocates simulated nodes, resolves the cluster
//! spec (paper §III), starts a server per task and runs the supplied
//! task body — as a DES process per task in simulated mode, or as an
//! OS thread per task in real mode. The returned elapsed time is
//! virtual (simulated) or wall-clock (real).
//!
//! ## Supervision
//!
//! Task bodies return `Result`; a failure never panics the launch.
//! In simulated mode a supervisor records every task exit and, when a
//! restart budget is configured ([`SupervisorConfig::max_restarts`]),
//! reacts to a failure with a *gang restart*: the cluster generation
//! is bumped (fencing stale processes with `Aborted`), every queue is
//! aborted to unblock parked peers, fresh servers come up at the
//! current virtual time and all task bodies re-run — resuming from
//! their latest checkpoint if they saved one. With the budget
//! exhausted the failed task is marked dead (peers observe
//! `Unavailable`), the gang is drained and [`launch`] returns the
//! error. Injected node crashes from a [`FaultPlan`] are driven by a
//! fault-daemon process firing at the exact scheduled virtual time.

use crate::cluster_spec::TaskKey;
use crate::resolver::{resolve_with_policy, JobSpec, Resolved};
use crate::server::{Server, TfCluster};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;
use tfhpc_core::{CoreError, Result, RetryConfig};
use tfhpc_sim::des::Sim;
use tfhpc_sim::fault::{FaultEvent, FaultPlan};
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::Platform;
use tfhpc_sim::topology::ClusterSim;
use tfhpc_slurm::{Distribution, JobRequest, SlurmCluster};

/// Checkpoint-restart supervision policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Gang restarts allowed before a failure becomes fatal (0 = any
    /// task failure fails the launch — the seed behavior, minus the
    /// panic).
    pub max_restarts: usize,
    /// Virtual (sim) / wall (real) seconds the supervisor waits before
    /// bringing the gang back up.
    pub restart_backoff_s: f64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 0,
            restart_backoff_s: 0.0,
        }
    }
}

impl SupervisorConfig {
    /// Allow up to `max_restarts` gang restarts (no backoff).
    pub fn restarting(max_restarts: usize) -> SupervisorConfig {
        SupervisorConfig {
            max_restarts,
            restart_backoff_s: 0.0,
        }
    }
}

/// A distributed run request.
#[derive(Clone)]
pub struct LaunchConfig {
    /// Hardware platform preset.
    pub platform: Platform,
    /// Jobs to lay out (in order; each starts on a fresh node).
    pub jobs: Vec<JobSpec>,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Run on the simulated cluster (virtual time) or on host threads.
    pub simulated: bool,
    /// Injected fault schedule (crashes fire only in simulated mode;
    /// link faults and delay spikes are evaluated lazily by remote ops).
    pub faults: Option<Arc<FaultPlan>>,
    /// Checkpoint-restart supervision policy.
    pub supervisor: SupervisorConfig,
    /// Retry policy the cluster's remote primitives run under.
    pub retry: RetryConfig,
}

impl LaunchConfig {
    /// Simulated-run config (no faults, no restarts, no retries).
    pub fn simulated(platform: Platform, jobs: Vec<JobSpec>, protocol: Protocol) -> LaunchConfig {
        LaunchConfig {
            platform,
            jobs,
            protocol,
            simulated: true,
            faults: None,
            supervisor: SupervisorConfig::default(),
            retry: RetryConfig::disabled(),
        }
    }

    /// Real-mode (host threads, wall clock) config.
    pub fn real(platform: Platform, jobs: Vec<JobSpec>, protocol: Protocol) -> LaunchConfig {
        LaunchConfig {
            simulated: false,
            ..LaunchConfig::simulated(platform, jobs, protocol)
        }
    }

    /// Install an injected fault schedule.
    pub fn with_faults(mut self, plan: FaultPlan) -> LaunchConfig {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Install a supervision policy.
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> LaunchConfig {
        self.supervisor = supervisor;
        self
    }

    /// Install a retry policy for remote primitives.
    pub fn with_retry(mut self, retry: RetryConfig) -> LaunchConfig {
        self.retry = retry;
        self
    }
}

/// Context handed to each task body.
pub struct TaskCtx {
    /// This task's server.
    pub server: Arc<Server>,
    /// This task's identity.
    pub key: TaskKey,
    /// GPU ids visible to this task.
    pub gpu_ids: Vec<usize>,
    start: Instant,
    attempt: u64,
}

impl TaskCtx {
    /// Job name.
    pub fn job(&self) -> &str {
        &self.key.job
    }

    /// Task index within the job.
    pub fn index(&self) -> usize {
        self.key.index
    }

    /// Number of tasks in `job`.
    pub fn num_tasks(&self, job: &str) -> usize {
        self.server.cluster().spec.num_tasks(job)
    }

    /// Which gang incarnation this body belongs to: 0 on the first
    /// start, `n` after the n-th supervisor restart. Bodies use this
    /// to decide whether to resume from a checkpoint.
    pub fn attempt(&self) -> u64 {
        self.attempt
    }

    /// Poll the failure plane: `Err(Aborted)` when this task's
    /// incarnation is fenced off (superseded by a gang restart, or its
    /// node crashed per the injected fault plan). Long compute loops
    /// call this once per iteration so an injected crash is observed
    /// even between remote operations.
    pub fn check_faults(&self) -> Result<()> {
        self.server.check_alive()
    }

    /// Seconds since launch: virtual time in simulated mode, wall time
    /// otherwise.
    pub fn now(&self) -> f64 {
        match tfhpc_sim::des::current() {
            Some(me) => me.now(),
            None => self.start.elapsed().as_secs_f64(),
        }
    }
}

/// How one task body invocation ended.
#[derive(Debug, Clone)]
pub struct TaskExit {
    /// Task identity.
    pub key: TaskKey,
    /// Gang generation the body ran under.
    pub generation: u64,
    /// `None` on success, the error text otherwise.
    pub error: Option<String>,
}

/// Result of a distributed run.
pub struct Launched {
    /// Total elapsed seconds (virtual or wall).
    pub elapsed_s: f64,
    /// Resolver output (spec + placements).
    pub resolved: Resolved,
    /// The DES, for counter inspection (simulated runs only).
    pub sim: Option<Arc<Sim>>,
    /// The runtime cluster (servers remain queryable after the run).
    pub cluster: Arc<TfCluster>,
    /// Every recorded task body exit, in completion order (includes
    /// failed attempts that were later restarted).
    pub task_exits: Vec<TaskExit>,
    /// Gang restarts the supervisor performed.
    pub restarts: usize,
}

/// Nodes needed for `jobs` at `tasks_per_node`, one fresh start per job.
pub fn nodes_needed(jobs: &[JobSpec], tasks_per_node: usize) -> usize {
    jobs.iter()
        .map(|j| j.tasks.div_ceil(tasks_per_node.max(1)))
        .sum()
}

/// Run `body` once per task across a freshly-allocated cluster.
pub fn launch<F>(cfg: &LaunchConfig, body: F) -> Result<Launched>
where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    launch_with_setup(cfg, |_| {}, body)
}

/// [`launch`] with a setup hook that runs once (outside virtual time)
/// after servers exist but before any task body starts — used to
/// pre-populate shared tile stores, mirroring the paper's offline
/// tile pre-processing step which is excluded from measurements.
pub fn launch_with_setup<S, F>(cfg: &LaunchConfig, setup: S, body: F) -> Result<Launched>
where
    S: FnOnce(&Arc<TfCluster>),
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    launch_inner(cfg, setup, body, false)
}

/// [`launch_with_setup`] with DES occupancy tracing enabled — the
/// returned `Launched::sim` then carries a Fig. 3-style execution
/// trace (`Sim::trace` / `Sim::trace_chrome_json`).
pub fn launch_traced<S, F>(cfg: &LaunchConfig, setup: S, body: F) -> Result<Launched>
where
    S: FnOnce(&Arc<TfCluster>),
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    launch_inner(cfg, setup, body, true)
}

/// Shared supervisor state for one simulated launch.
struct SupShared<F> {
    sim: Arc<Sim>,
    cluster: Arc<TfCluster>,
    /// (key, node, gpu_ids) per task — the gang roster.
    tasks: Vec<(TaskKey, usize, Vec<usize>)>,
    body: Arc<F>,
    sup: SupervisorConfig,
    start: Instant,
    state: Mutex<SupState>,
}

#[derive(Default)]
struct SupState {
    /// Current gang generation; task failures from older generations
    /// are collateral of a restart already in flight, not new faults.
    generation: u64,
    restarts_used: usize,
    /// Fatal failures (budget exhausted) — non-empty fails the launch.
    failures: Vec<String>,
    exits: Vec<TaskExit>,
}

impl<F> SupShared<F> {
    fn record(&self, key: TaskKey, generation: u64, error: Option<String>) {
        self.state.lock().exits.push(TaskExit {
            key,
            generation,
            error,
        });
    }
}

/// Start (or restart) every task of `generation`: fresh servers for
/// restarts, then one sim process per task whose wrapper routes the
/// body's exit into the supervisor.
fn start_generation<F>(shared: &Arc<SupShared<F>>, generation: u64)
where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    if generation > 0 {
        for (key, node, gpus) in &shared.tasks {
            shared
                .cluster
                .start_server(key.clone(), *node, gpus.clone());
        }
    }
    for (key, _node, gpus) in shared.tasks.clone() {
        let sh = Arc::clone(shared);
        let name = if generation == 0 {
            key.to_string()
        } else {
            format!("{key}@g{generation}")
        };
        let track = name.clone();
        shared.sim.spawn(&name, move || {
            // One trace track per task (re-named per generation so a
            // restarted task gets its own lane in the viewer).
            tfhpc_obs::set_track(&track);
            let server = match sh.cluster.server(&key) {
                Ok(s) => s,
                Err(e) => {
                    sh.record(key.clone(), generation, Some(e.to_string()));
                    return;
                }
            };
            let ctx = TaskCtx {
                server,
                key: key.clone(),
                gpu_ids: gpus.clone(),
                start: sh.start,
                attempt: generation,
            };
            match (sh.body)(ctx) {
                Ok(()) => sh.record(key.clone(), generation, None),
                Err(e) => {
                    sh.record(key.clone(), generation, Some(e.to_string()));
                    supervise(
                        &sh,
                        generation,
                        format!("{key}: {e}"),
                        std::slice::from_ref(&key),
                    );
                }
            }
        });
    }
}

/// React to a failure observed at `generation`: gang-restart while
/// budget remains, else mark the culprits dead and drain the gang.
/// Runs inside a sim process (the failing task's, or a fault daemon).
fn supervise<F>(shared: &Arc<SupShared<F>>, generation: u64, what: String, failed: &[TaskKey])
where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let next_gen = {
        let mut st = shared.state.lock();
        if generation != st.generation {
            // Collateral of a restart already in flight; the exit is
            // recorded, nothing more to do.
            return;
        }
        if st.restarts_used < shared.sup.max_restarts {
            st.restarts_used += 1;
            st.generation += 1;
            tfhpc_obs::global()
                .counter("tfhpc_supervisor_restarts_total")
                .inc();
            Some(st.generation)
        } else {
            st.failures.push(what.clone());
            None
        }
    };
    match next_gen {
        Some(gen) => {
            // Fence the old generation, wake everything it parked, and
            // bring the gang back up at the current virtual time.
            shared.cluster.advance_epoch();
            shared.cluster.abort_all(CoreError::Aborted(format!(
                "gang restart (generation {gen}): {what}"
            )));
            shared.cluster.clear_dead();
            if shared.sup.restart_backoff_s > 0.0 {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(shared.sup.restart_backoff_s);
                }
            }
            start_generation(shared, gen);
        }
        None => {
            for k in failed {
                shared.cluster.mark_dead(k, &what);
            }
            shared.cluster.abort_all(CoreError::Unavailable(format!(
                "gang draining after fatal failure: {what}"
            )));
        }
    }
}

/// Fault-daemon body: at the scheduled instant, fail every
/// current-generation task hosted on the crashed node. Runs as its own
/// sim process so a crash fires at exactly `at_s` even when every task
/// is parked (push-based injection — no poll required).
fn crash_node<F>(shared: &Arc<SupShared<F>>, node: usize, at_s: f64)
where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let generation = {
        let st = shared.state.lock();
        // A job that already fully exited has nothing left to crash.
        let exited = st
            .exits
            .iter()
            .filter(|e| e.generation == st.generation)
            .count();
        if exited == shared.tasks.len() {
            return;
        }
        st.generation
    };
    let mut failed = Vec::new();
    for (key, n, _) in &shared.tasks {
        if *n != node {
            continue;
        }
        if let Ok(server) = shared.cluster.server(key) {
            // Only incarnations born strictly before the crash die; a
            // server restarted at/after `at_s` runs on the "rebooted"
            // node.
            if server.born_at() < at_s && server.epoch() == shared.cluster.epoch() {
                failed.push(key.clone());
            }
        }
    }
    if failed.is_empty() {
        return;
    }
    supervise(
        shared,
        generation,
        format!("node {node} crashed at t={at_s:.6} (injected)"),
        &failed,
    );
}

fn launch_inner<S, F>(cfg: &LaunchConfig, setup: S, body: F, trace: bool) -> Result<Launched>
where
    S: FnOnce(&Arc<TfCluster>),
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let tasks_per_node = cfg.platform.node.tf_instances_per_node.max(1);
    let n_nodes = nodes_needed(&cfg.jobs, tasks_per_node);
    if n_nodes == 0 {
        return Err(CoreError::Invalid("no tasks requested".into()));
    }

    // Allocate through the simulated workload manager.
    let mut slurm = SlurmCluster::for_platform(&cfg.platform, n_nodes);
    let total_tasks: usize = cfg.jobs.iter().map(|j| j.tasks).sum();
    let alloc = slurm
        .submit(&JobRequest {
            nodes: n_nodes,
            ntasks: total_tasks,
            distribution: Distribution::Plane(tasks_per_node),
            gpus_per_task: 0,
        })
        .map_err(|e| CoreError::Invalid(format!("slurm: {e}")))?;

    // Resolve the TensorFlow cluster spec (the paper's resolver).
    let resolved =
        resolve_with_policy(&alloc, &cfg.jobs, tasks_per_node, true).map_err(CoreError::Invalid)?;

    // Check GPU feasibility ("insufficient number of GPUs available").
    for t in &resolved.tasks {
        if let Some(max) = t.gpu_ids.iter().max() {
            if *max >= cfg.platform.node.gpus_per_node {
                return Err(CoreError::Invalid(format!(
                    "task {} needs GPU {} but nodes have {}",
                    t.key, max, cfg.platform.node.gpus_per_node
                )));
            }
        }
    }

    // Instantiate hardware and the runtime cluster.
    let sim = cfg.simulated.then(Sim::new);
    if trace {
        if let Some(s) = &sim {
            s.enable_tracing();
        }
        // Traced launches also record structured scopes (nested spans,
        // queue flows) on the process-wide tracer.
        tfhpc_obs::trace::global().enable();
    }
    let cluster_sim = sim
        .as_ref()
        .map(|s| Arc::new(ClusterSim::new(s, cfg.platform.clone(), n_nodes)));
    let cluster = TfCluster::new(resolved.spec.clone(), cfg.protocol, cluster_sim);
    cluster.set_faults(cfg.faults.clone());
    cluster.set_retry(cfg.retry.clone());

    let servers: Vec<(TaskKey, Arc<Server>, Vec<usize>)> = resolved
        .tasks
        .iter()
        .map(|t| {
            let server = cluster.start_server(t.key.clone(), t.node_index, t.gpu_ids.clone());
            (t.key.clone(), server, t.gpu_ids.clone())
        })
        .collect();

    setup(&cluster);

    let body = Arc::new(body);
    let start = Instant::now();

    let (elapsed_s, task_exits, restarts) = match &sim {
        Some(sim) => {
            let shared = Arc::new(SupShared {
                sim: Arc::clone(sim),
                cluster: Arc::clone(&cluster),
                tasks: resolved
                    .tasks
                    .iter()
                    .map(|t| (t.key.clone(), t.node_index, t.gpu_ids.clone()))
                    .collect(),
                body: Arc::clone(&body),
                sup: cfg.supervisor.clone(),
                start,
                state: Mutex::new(SupState::default()),
            });
            start_generation(&shared, 0);
            // One fault daemon per scheduled crash: fires the failure at
            // the exact virtual instant even if every task is parked.
            if let Some(plan) = &cfg.faults {
                for ev in &plan.events {
                    if let FaultEvent::NodeCrash { node, at_s } = *ev {
                        let sh = Arc::clone(&shared);
                        sim.spawn(&format!("fault-daemon:node{node}"), move || {
                            tfhpc_sim::des::current()
                                .expect("fault daemon is a sim process")
                                .advance(at_s);
                            crash_node(&sh, node, at_s);
                        });
                    }
                }
            }
            let elapsed = sim.run();
            let mut st = shared.state.lock();
            if !st.failures.is_empty() {
                return Err(CoreError::Invalid(st.failures.join("; ")));
            }
            let exits = std::mem::take(&mut st.exits);
            (elapsed, exits, st.restarts_used)
        }
        None => {
            let errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
            let exits: Arc<Mutex<Vec<TaskExit>>> = Arc::new(Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            for (key, server, gpu_ids) in servers {
                let body = Arc::clone(&body);
                let errors = Arc::clone(&errors);
                let exits = Arc::clone(&exits);
                let cluster = Arc::clone(&cluster);
                let ctx = TaskCtx {
                    server,
                    key: key.clone(),
                    gpu_ids,
                    start,
                    attempt: 0,
                };
                handles.push(
                    std::thread::Builder::new()
                        .name(key.to_string())
                        .spawn(move || match body(ctx) {
                            Ok(()) => exits.lock().push(TaskExit {
                                key,
                                generation: 0,
                                error: None,
                            }),
                            Err(e) => {
                                // Mark the task dead so peers parked on
                                // its queues wake with `Unavailable`
                                // instead of riding out the grace period.
                                cluster.mark_dead(&key, &e.to_string());
                                errors.lock().push(format!("{key}: {e}"));
                                exits.lock().push(TaskExit {
                                    key,
                                    generation: 0,
                                    error: Some(e.to_string()),
                                });
                            }
                        })
                        .expect("spawn task thread"),
                );
            }
            // Teardown discipline: join everything that finishes, but a
            // panicked task can leave siblings parked on queues forever
            // — so after a failure is observed, give the rest a bounded
            // grace period instead of hanging the caller, and report
            // any still-running tasks in the error.
            let mut handles = handles;
            let mut panicked = 0usize;
            let mut deadline: Option<Instant> = None;
            while !handles.is_empty() {
                let failed_so_far = panicked > 0 || !errors.lock().is_empty();
                if failed_so_far && deadline.is_none() {
                    deadline = Some(Instant::now() + std::time::Duration::from_secs(5));
                }
                if let Some(d) = deadline {
                    if Instant::now() > d {
                        break; // leak stragglers, but report it below
                    }
                }
                let mut progressed = false;
                let mut i = 0;
                while i < handles.len() {
                    if handles[i].is_finished() {
                        if handles.swap_remove(i).join().is_err() {
                            panicked += 1;
                        }
                        progressed = true;
                    } else {
                        i += 1;
                    }
                }
                if !progressed && !handles.is_empty() {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            if panicked > 0 {
                errors.lock().push(format!("{panicked} task(s) panicked"));
            }
            if !handles.is_empty() {
                errors.lock().push(format!(
                    "{} task(s) still blocked after failure; detached",
                    handles.len()
                ));
            }
            let errs = errors.lock();
            if !errs.is_empty() {
                return Err(CoreError::Invalid(errs.join("; ")));
            }
            let exits = std::mem::take(&mut *exits.lock());
            (start.elapsed().as_secs_f64(), exits, 0)
        }
    };

    Ok(Launched {
        elapsed_s,
        resolved,
        sim,
        cluster,
        task_exits,
        restarts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfhpc_sim::platform;
    use tfhpc_tensor::Tensor;

    #[test]
    fn nodes_needed_per_job_fresh() {
        let jobs = vec![JobSpec::new("ps", 1, 0), JobSpec::new("worker", 4, 1)];
        // Kebnekaise K80: 4 instances/node → 1 + 1 nodes.
        assert_eq!(nodes_needed(&jobs, 4), 2);
        // Tegner K420: 1 instance/node → 1 + 4 nodes.
        assert_eq!(nodes_needed(&jobs, 1), 5);
    }

    #[test]
    fn simulated_launch_runs_every_task() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k80(),
            vec![JobSpec::new("worker", 4, 1)],
            Protocol::Rdma,
        );
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let out = launch(&cfg, move |ctx| {
            assert_eq!(ctx.job(), "worker");
            assert_eq!(ctx.attempt(), 0);
            c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            // Spend some virtual time.
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(1.0 + ctx.index() as f64);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 4);
        // Slowest task advanced 4 seconds.
        assert!((out.elapsed_s - 4.0).abs() < 1e-9);
        assert_eq!(out.resolved.spec.num_tasks("worker"), 4);
        assert_eq!(out.task_exits.len(), 4);
        assert!(out.task_exits.iter().all(|e| e.error.is_none()));
        assert_eq!(out.restarts, 0);
    }

    #[test]
    fn real_launch_measures_wall_time() {
        let cfg = LaunchConfig::real(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Grpc,
        );
        let out = launch(&cfg, |_ctx| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            Ok(())
        })
        .unwrap();
        assert!(out.elapsed_s >= 0.01);
        assert!(out.sim.is_none());
    }

    #[test]
    fn body_error_fails_launch_in_real_mode() {
        let cfg = LaunchConfig::real(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 1, 0)],
            Protocol::Grpc,
        );
        let result = launch(&cfg, |_ctx| Err(CoreError::Invalid("intentional".into())));
        match result {
            Err(CoreError::Invalid(msg)) => assert!(msg.contains("intentional")),
            _ => panic!("expected launch to surface the task error"),
        }
    }

    #[test]
    fn body_error_fails_launch_in_sim_mode_without_panicking() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        );
        let result = launch(&cfg, |ctx| {
            if ctx.index() == 1 {
                Err(CoreError::Invalid("intentional".into()))
            } else {
                Ok(())
            }
        });
        match result {
            Err(CoreError::Invalid(msg)) => assert!(msg.contains("intentional"), "{msg}"),
            other => panic!(
                "expected launch to surface the task error, got {:?}",
                other.map(|l| l.elapsed_s)
            ),
        }
    }

    #[test]
    fn supervisor_restarts_failed_gang() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        )
        .with_supervisor(SupervisorConfig {
            max_restarts: 2,
            restart_backoff_s: 0.5,
        });
        let out = launch(&cfg, |ctx| {
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(1.0);
            }
            // First incarnation of worker 0 fails; all later ones work.
            if ctx.index() == 0 && ctx.attempt() == 0 {
                return Err(CoreError::Aborted("simulated fault".into()));
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(out.restarts, 1);
        // Gen 0: one failure + possibly one clean sibling; gen 1: two Ok.
        let g1_ok = out
            .task_exits
            .iter()
            .filter(|e| e.generation == 1 && e.error.is_none())
            .count();
        assert_eq!(g1_ok, 2, "{:?}", out.task_exits);
        // Failure at t=1.0 + 0.5 backoff + 1.0 rerun.
        assert!((out.elapsed_s - 2.5).abs() < 1e-9, "{}", out.elapsed_s);
    }

    #[test]
    fn injected_crash_restarts_at_exact_virtual_time() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        )
        .with_faults(FaultPlan::new().crash(1, 0.25))
        .with_supervisor(SupervisorConfig::restarting(1));
        let out = launch(&cfg, |ctx| {
            // Park both workers past the crash instant; the fault
            // daemon must fire mid-sleep and gang-restart.
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(1.0);
            }
            ctx.check_faults()?;
            Ok(())
        })
        .unwrap();
        assert_eq!(out.restarts, 1);
        // Restart at t=0.25 + 1.0 rerun.
        assert!((out.elapsed_s - 1.25).abs() < 1e-9, "{}", out.elapsed_s);
        let g1_ok = out
            .task_exits
            .iter()
            .filter(|e| e.generation == 1 && e.error.is_none())
            .count();
        assert_eq!(g1_ok, 2, "{:?}", out.task_exits);
    }

    #[test]
    fn crash_without_budget_fails_launch() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        )
        .with_faults(FaultPlan::new().crash(1, 0.25));
        let result = launch(&cfg, |ctx| {
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(1.0);
            }
            ctx.check_faults()?;
            Ok(())
        });
        match result {
            Err(e) => assert!(e.to_string().contains("crashed"), "{e}"),
            Ok(_) => panic!("expected the crash to fail the launch"),
        }
    }

    #[test]
    fn insufficient_gpus_detected() {
        // Tegner K420 nodes have 1 GPU; asking 2 GPUs per task fails.
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 1, 2)],
            Protocol::Rdma,
        );
        assert!(launch(&cfg, |_| Ok(())).is_err());
    }

    #[test]
    fn cross_task_communication_in_sim() {
        // ps + 2 workers: workers push into a ps variable.
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("ps", 1, 0), JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        );
        let out = launch(&cfg, |ctx| {
            let ps = TaskKey::new("ps", 0);
            if ctx.job() == "ps" {
                ctx.server
                    .resources
                    .create_variable("acc", Tensor::scalar_f64(0.0));
                // ps stays alive long enough to receive (barrier-free
                // model: variable exists from t=0 since creation is at
                // virtual time 0 before any worker sends at t>0).
                Ok(())
            } else {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(0.001 * (ctx.index() + 1) as f64);
                }
                ctx.server
                    .remote_assign_add(&ps, "acc", &Tensor::scalar_f64(1.0), None, None)?;
                Ok(())
            }
        })
        .unwrap();
        let ps = out.cluster.server(&TaskKey::new("ps", 0)).unwrap();
        assert_eq!(
            ps.resources
                .variable("acc")
                .unwrap()
                .read()
                .scalar_value_f64()
                .unwrap(),
            2.0
        );
    }
}
