//! End-to-end distributed launch: Slurm allocation → resolver →
//! servers → one supervised process per task.
//!
//! This is the experiment driver: given a platform preset, a job list
//! and a transport, it allocates simulated nodes, resolves the cluster
//! spec (paper §III), starts a server per task and runs the supplied
//! task body — as a DES process per task in simulated mode, or as an
//! OS thread per task in real mode. The returned elapsed time is
//! virtual (simulated) or wall-clock (real).
//!
//! ## Supervision
//!
//! Task bodies return `Result`; a failure never panics the launch.
//! In simulated mode a supervisor records every task exit and, when a
//! restart budget is configured ([`SupervisorConfig::max_restarts`]),
//! reacts to a failure with a restart:
//!
//! - **Gang restart** (the default): the cluster generation is bumped
//!   (fencing stale processes with `Aborted`), every queue is aborted
//!   to unblock parked peers, fresh servers come up at the current
//!   virtual time and all task bodies re-run — resuming from their
//!   latest checkpoint if they saved one.
//! - **Partial restart**: when every failed task belongs to a job
//!   listed in [`SupervisorConfig::partial_restart_jobs`], only the
//!   failed task(s) restart — healthy tasks keep running, the epoch is
//!   *not* bumped, and a spare node (if budgeted via
//!   [`SupervisorConfig::spare_nodes`]) replaces the failed one.
//!
//! With the budget exhausted the failed task is marked dead (peers
//! observe `Unavailable`), the gang is drained — bounded by
//! [`SupervisorConfig::drain_timeout_s`] in both modes — and
//! [`launch`] returns the error.
//!
//! ## Liveness
//!
//! Exit-code supervision alone cannot see a *hung* task. When
//! heartbeats are enabled (a positive
//! [`SupervisorConfig::heartbeat_timeout_s`], or the
//! `TFHPC_HEARTBEAT_TIMEOUT` env knob), every task
//! incarnation gets a heartbeat daemon (a DES process in simulated
//! mode, a thread in real mode) beating a [`Membership`] table, and a
//! monitor sweeps deadlines: silence past the timeout is a death
//! verdict routed into the same supervision paths as an exit failure.
//! Injected [`FaultPlan`] hangs and stragglers manifest exactly here —
//! a hung node's daemon stops beating, a straggler's beats stretch.
//! In real mode detection is report-only: the dead task is marked so
//! peers unblock, but no restart is attempted.

use crate::cluster_spec::TaskKey;
use crate::membership::{Liveness, Membership, MembershipEvent};
use crate::resolver::{resolve_with_policy, JobSpec, Resolved};
use crate::server::{Server, TfCluster};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use tfhpc_core::{CoreError, Result, RetryConfig};
use tfhpc_sim::des::Sim;
use tfhpc_sim::fault::{FaultEvent, FaultPlan};
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::Platform;
use tfhpc_sim::topology::ClusterSim;
use tfhpc_slurm::{Distribution, JobRequest, SlurmCluster};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(default)
}

/// Checkpoint-restart supervision policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Restarts (gang or partial) allowed before a failure becomes
    /// fatal (0 = any task failure fails the launch — the seed
    /// behavior, minus the panic).
    pub max_restarts: usize,
    /// Virtual (sim) / wall (real) seconds the supervisor waits before
    /// bringing tasks back up.
    pub restart_backoff_s: f64,
    /// Seconds the supervisor waits for surviving tasks to unwind
    /// after a fatal failure before detaching them (wall seconds in
    /// real mode, virtual in simulated mode).
    pub drain_timeout_s: f64,
    /// Heartbeat period, seconds (`TFHPC_HEARTBEAT_PERIOD`, default
    /// 0.05). Only meaningful while `heartbeat_timeout_s > 0`.
    pub heartbeat_period_s: f64,
    /// Heartbeat silence declared a death, seconds
    /// (`TFHPC_HEARTBEAT_TIMEOUT`). 0 disables liveness detection —
    /// the default, so fault-free runs carry no detector processes.
    pub heartbeat_timeout_s: f64,
    /// Jobs whose task failures are repaired by restarting *only* the
    /// failed task (no epoch bump, healthy tasks keep running). Empty
    /// = every failure is a gang restart.
    pub partial_restart_jobs: Vec<String>,
    /// Extra nodes allocated up front; a partial restart moves the
    /// failed task onto a spare instead of its (possibly bad) node.
    pub spare_nodes: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 0,
            restart_backoff_s: 0.0,
            drain_timeout_s: 5.0,
            heartbeat_period_s: env_f64("TFHPC_HEARTBEAT_PERIOD", 0.05),
            heartbeat_timeout_s: env_f64("TFHPC_HEARTBEAT_TIMEOUT", 0.0),
            partial_restart_jobs: Vec::new(),
            spare_nodes: 0,
        }
    }
}

impl SupervisorConfig {
    /// Allow up to `max_restarts` restarts (no backoff).
    pub fn restarting(max_restarts: usize) -> SupervisorConfig {
        SupervisorConfig {
            max_restarts,
            ..SupervisorConfig::default()
        }
    }

    /// Enable liveness detection: beat every `period_s`, declare death
    /// after `timeout_s` of silence.
    pub fn with_heartbeats(mut self, period_s: f64, timeout_s: f64) -> SupervisorConfig {
        self.heartbeat_period_s = period_s;
        self.heartbeat_timeout_s = timeout_s;
        self
    }

    /// Repair failures of these jobs by partial restart.
    pub fn with_partial_restart<I, S>(mut self, jobs: I) -> SupervisorConfig
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.partial_restart_jobs = jobs.into_iter().map(Into::into).collect();
        self
    }

    /// Allocate `n` spare nodes for partial-restart replacement.
    pub fn with_spares(mut self, n: usize) -> SupervisorConfig {
        self.spare_nodes = n;
        self
    }

    /// Bound the post-failure drain.
    pub fn with_drain_timeout(mut self, seconds: f64) -> SupervisorConfig {
        self.drain_timeout_s = seconds;
        self
    }
}

/// A distributed run request.
#[derive(Clone)]
pub struct LaunchConfig {
    /// Hardware platform preset.
    pub platform: Platform,
    /// Jobs to lay out (in order; each starts on a fresh node).
    pub jobs: Vec<JobSpec>,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Run on the simulated cluster (virtual time) or on host threads.
    pub simulated: bool,
    /// Injected fault schedule (crashes and hangs fire only in
    /// simulated mode; link faults and delay spikes are evaluated
    /// lazily by remote ops).
    pub faults: Option<Arc<FaultPlan>>,
    /// Checkpoint-restart supervision policy.
    pub supervisor: SupervisorConfig,
    /// Retry policy the cluster's remote primitives run under.
    pub retry: RetryConfig,
}

impl LaunchConfig {
    /// Simulated-run config (no faults, no restarts, no retries).
    pub fn simulated(platform: Platform, jobs: Vec<JobSpec>, protocol: Protocol) -> LaunchConfig {
        LaunchConfig {
            platform,
            jobs,
            protocol,
            simulated: true,
            faults: None,
            supervisor: SupervisorConfig::default(),
            retry: RetryConfig::disabled(),
        }
    }

    /// Real-mode (host threads, wall clock) config.
    pub fn real(platform: Platform, jobs: Vec<JobSpec>, protocol: Protocol) -> LaunchConfig {
        LaunchConfig {
            simulated: false,
            ..LaunchConfig::simulated(platform, jobs, protocol)
        }
    }

    /// Install an injected fault schedule.
    pub fn with_faults(mut self, plan: FaultPlan) -> LaunchConfig {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Install a supervision policy.
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> LaunchConfig {
        self.supervisor = supervisor;
        self
    }

    /// Install a retry policy for remote primitives.
    pub fn with_retry(mut self, retry: RetryConfig) -> LaunchConfig {
        self.retry = retry;
        self
    }
}

/// Context handed to each task body.
pub struct TaskCtx {
    /// This task's server.
    pub server: Arc<Server>,
    /// This task's identity.
    pub key: TaskKey,
    /// GPU ids visible to this task.
    pub gpu_ids: Vec<usize>,
    start: Instant,
    attempt: u64,
}

impl TaskCtx {
    /// Job name.
    pub fn job(&self) -> &str {
        &self.key.job
    }

    /// Task index within the job.
    pub fn index(&self) -> usize {
        self.key.index
    }

    /// Number of tasks in `job`.
    pub fn num_tasks(&self, job: &str) -> usize {
        self.server.cluster().spec.num_tasks(job)
    }

    /// Which incarnation this body is: 0 on the first start, bumped by
    /// every restart of *this task* (gang restarts bump every task,
    /// partial restarts only the failed one). Bodies use this to
    /// decide whether to resume from a checkpoint.
    pub fn attempt(&self) -> u64 {
        self.attempt
    }

    /// Poll the failure plane: `Err(Aborted)` when this task's
    /// incarnation is fenced off (superseded by a gang or partial
    /// restart, or its node crashed per the injected fault plan), and
    /// a *hang* parks the caller until a fencing verdict unwinds it.
    /// Long compute loops call this once per iteration so an injected
    /// fault is observed even between remote operations.
    pub fn check_faults(&self) -> Result<()> {
        self.server.check_alive()
    }

    /// Current injected slowdown factor for this task's node (1.0 =
    /// healthy). Compute loops multiply their virtual work time by
    /// this so a straggler window stretches compute as well as
    /// transfers.
    pub fn straggler_factor(&self) -> f64 {
        let Ok(cluster) = self.server.try_cluster() else {
            return 1.0;
        };
        let Some(plan) = cluster.faults() else {
            return 1.0;
        };
        plan.straggler_factor(self.server.node, self.now())
    }

    /// Seconds since launch: virtual time in simulated mode, wall time
    /// otherwise.
    pub fn now(&self) -> f64 {
        match tfhpc_sim::des::current() {
            Some(me) => me.now(),
            None => self.start.elapsed().as_secs_f64(),
        }
    }
}

/// How one task body invocation ended.
#[derive(Debug, Clone)]
pub struct TaskExit {
    /// Task identity.
    pub key: TaskKey,
    /// Gang generation the body ran under.
    pub generation: u64,
    /// Per-task incarnation counter the body ran as.
    pub attempt: u64,
    /// `None` on success, the error text otherwise.
    pub error: Option<String>,
}

/// Result of a distributed run.
pub struct Launched {
    /// Total elapsed seconds (virtual or wall).
    pub elapsed_s: f64,
    /// Resolver output (spec + placements).
    pub resolved: Resolved,
    /// The DES, for counter inspection (simulated runs only).
    pub sim: Option<Arc<Sim>>,
    /// The runtime cluster (servers remain queryable after the run).
    pub cluster: Arc<TfCluster>,
    /// Every recorded task body exit, in completion order (includes
    /// failed attempts that were later restarted).
    pub task_exits: Vec<TaskExit>,
    /// Restarts (gang + partial) the supervisor performed.
    pub restarts: usize,
    /// The liveness table, when heartbeats were enabled — carries the
    /// full transition audit log (detection latencies, MTTR).
    pub membership: Option<Arc<Membership>>,
    /// Partial-restart node replacements: (task, old node, spare).
    pub replacements: Vec<(TaskKey, usize, usize)>,
}

/// Nodes needed for `jobs` at `tasks_per_node`, one fresh start per job.
pub fn nodes_needed(jobs: &[JobSpec], tasks_per_node: usize) -> usize {
    jobs.iter()
        .map(|j| j.tasks.div_ceil(tasks_per_node.max(1)))
        .sum()
}

/// Run `body` once per task across a freshly-allocated cluster.
pub fn launch<F>(cfg: &LaunchConfig, body: F) -> Result<Launched>
where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    launch_with_setup(cfg, |_| {}, body)
}

/// [`launch`] with a setup hook that runs once (outside virtual time)
/// after servers exist but before any task body starts — used to
/// pre-populate shared tile stores, mirroring the paper's offline
/// tile pre-processing step which is excluded from measurements.
pub fn launch_with_setup<S, F>(cfg: &LaunchConfig, setup: S, body: F) -> Result<Launched>
where
    S: FnOnce(&Arc<TfCluster>),
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    launch_inner(cfg, setup, body, false)
}

/// [`launch_with_setup`] with DES occupancy tracing enabled — the
/// returned `Launched::sim` then carries a Fig. 3-style execution
/// trace (`Sim::trace` / `Sim::trace_chrome_json`).
pub fn launch_traced<S, F>(cfg: &LaunchConfig, setup: S, body: F) -> Result<Launched>
where
    S: FnOnce(&Arc<TfCluster>),
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    launch_inner(cfg, setup, body, true)
}

fn observe_detection(silent_for_s: f64) {
    tfhpc_obs::global()
        .histogram_with(
            "tfhpc_detection_latency_seconds",
            &[],
            &tfhpc_obs::metrics::duration_buckets(),
        )
        .observe(silent_for_s);
}

fn observe_mttr(seconds: f64) {
    tfhpc_obs::global()
        .histogram_with(
            "tfhpc_mttr_seconds",
            &[],
            &tfhpc_obs::metrics::duration_buckets(),
        )
        .observe(seconds);
}

/// Shared supervisor state for one simulated launch.
struct SupShared<F> {
    sim: Arc<Sim>,
    cluster: Arc<TfCluster>,
    /// (key, node, gpu_ids) per task — the gang roster. Mutable:
    /// partial restarts may move a task onto a spare node.
    tasks: Mutex<Vec<(TaskKey, usize, Vec<usize>)>>,
    body: Arc<F>,
    sup: SupervisorConfig,
    start: Instant,
    state: Mutex<SupState>,
    /// Liveness table (None = heartbeats disabled).
    membership: Option<Arc<Membership>>,
    /// Wakes heartbeat/monitor daemons out of their period sleeps so
    /// they can re-check exit conditions (and stop) promptly.
    hb_cv: Option<tfhpc_sim::des::SimCondvar>,
    /// The workload manager, retained so partial restarts can draw
    /// spare nodes from it.
    slurm: Mutex<SlurmCluster>,
}

#[derive(Default)]
struct SupState {
    /// Current gang generation; task failures from older generations
    /// are collateral of a restart already in flight, not new faults.
    generation: u64,
    restarts_used: usize,
    /// Fatal failures (budget exhausted) — non-empty fails the launch.
    failures: Vec<String>,
    exits: Vec<TaskExit>,
    /// Current incarnation counter per task; a failure report carrying
    /// a stale attempt is collateral of a partial restart in flight.
    attempts: HashMap<TaskKey, u64>,
    /// Task bodies still running, per generation — daemons exit when
    /// their generation's count reaches zero.
    live: HashMap<u64, usize>,
    /// Partial-restart node replacements: (task, old node, spare).
    replacements: Vec<(TaskKey, usize, usize)>,
}

/// Record one body exit and (for current incarnations that exited
/// cleanly) retire its membership entry; failures escalate to the
/// supervisor.
fn finish_task<F>(
    sh: &Arc<SupShared<F>>,
    key: &TaskKey,
    generation: u64,
    attempt: u64,
    error: Option<String>,
) where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let is_current = {
        let mut st = sh.state.lock();
        st.exits.push(TaskExit {
            key: key.clone(),
            generation,
            attempt,
            error: error.clone(),
        });
        if let Some(n) = st.live.get_mut(&generation) {
            *n = n.saturating_sub(1);
        }
        st.generation == generation && st.attempts.get(key).copied() == Some(attempt)
    };
    if error.is_none() && is_current {
        if let Some(m) = &sh.membership {
            let now = tfhpc_sim::des::current().map(|me| me.now()).unwrap_or(0.0);
            m.left(key, now);
        }
    }
    if let Some(cv) = &sh.hb_cv {
        cv.notify_all();
    }
    if let Some(e) = error {
        supervise(
            sh,
            generation,
            format!("{key}: {e}"),
            &[(key.clone(), attempt)],
        );
    }
}

/// Spawn one task body incarnation as a sim process.
fn spawn_task<F>(
    shared: &Arc<SupShared<F>>,
    generation: u64,
    key: TaskKey,
    gpus: Vec<usize>,
    attempt: u64,
) where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let sh = Arc::clone(shared);
    let name = if generation == 0 && attempt == 0 {
        key.to_string()
    } else {
        format!("{key}@g{generation}.a{attempt}")
    };
    let track = name.clone();
    shared.sim.spawn(&name, move || {
        // One trace track per incarnation so a restarted task gets its
        // own lane in the viewer.
        tfhpc_obs::set_track(&track);
        let server = match sh.cluster.server(&key) {
            Ok(s) => s,
            Err(e) => {
                let mut st = sh.state.lock();
                st.exits.push(TaskExit {
                    key: key.clone(),
                    generation,
                    attempt,
                    error: Some(e.to_string()),
                });
                if let Some(n) = st.live.get_mut(&generation) {
                    *n = n.saturating_sub(1);
                }
                drop(st);
                if let Some(cv) = &sh.hb_cv {
                    cv.notify_all();
                }
                return;
            }
        };
        let ctx = TaskCtx {
            server,
            key: key.clone(),
            gpu_ids: gpus.clone(),
            start: sh.start,
            attempt,
        };
        let error = (sh.body)(ctx).err().map(|e| e.to_string());
        finish_task(&sh, &key, generation, attempt, error);
    });
}

/// Spawn the heartbeat daemon for one task incarnation. The daemon
/// beats the membership table every period; an injected hang silences
/// it (that silence *is* the detection signal) and a straggler window
/// stretches its period. It exits when its incarnation is superseded,
/// its task exits, or its generation fully drains.
fn spawn_heartbeat<F>(
    shared: &Arc<SupShared<F>>,
    generation: u64,
    key: TaskKey,
    node: usize,
    attempt: u64,
) where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let (Some(m), Some(cv)) = (shared.membership.clone(), shared.hb_cv.clone()) else {
        return;
    };
    let sh = Arc::clone(shared);
    let name = format!("hb:{key}@g{generation}.a{attempt}");
    shared.sim.spawn(&name, move || {
        let me = tfhpc_sim::des::current().expect("heartbeat daemon is a sim process");
        let epoch = sh.cluster.epoch();
        let born = me.now();
        let plan = sh.cluster.faults();
        let period = m.period_s().max(1e-6);
        let mut next = born + period;
        loop {
            {
                let st = sh.state.lock();
                if st.generation != generation
                    || st.attempts.get(&key).copied() != Some(attempt)
                    || st.live.get(&generation).copied().unwrap_or(0) == 0
                    || st
                        .exits
                        .iter()
                        .any(|e| e.attempt == attempt && e.generation == generation && e.key == key)
                {
                    return;
                }
            }
            if matches!(
                m.state(&key),
                None | Some(Liveness::Dead) | Some(Liveness::Left)
            ) {
                return;
            }
            let timed_out = if me.now() + 1e-12 >= next {
                true
            } else {
                cv.wait_until(next)
            };
            if !timed_out {
                continue; // woken early — re-check exit conditions
            }
            let now = me.now();
            if let Some(p) = &plan {
                // The hang: this "process" goes silent. No beat, ever
                // again — the monitor's deadline sweep does the rest.
                if p.hung(node, born, now) {
                    return;
                }
                // A minority partition: beats from this node can't
                // reach the (majority-side) monitor, so skip them —
                // the deadline sweep declares the task dead, exactly
                // as the majority observes it. Keep looping: if the
                // partition heals before supervision supersedes this
                // attempt, beats resume and the task rejoins.
                if p.has_partition_events() && !sh.cluster.has_quorum(node, now) {
                    next = now + period;
                    continue;
                }
            }
            m.heartbeat(&key, epoch, now);
            let stretch = plan
                .as_ref()
                .map(|p| p.straggler_factor(node, now))
                .unwrap_or(1.0);
            next = now + period * stretch.max(1.0);
        }
    });
}

/// Spawn the per-generation liveness monitor: sweeps the membership
/// table every period and routes death verdicts into [`supervise`].
fn spawn_monitor<F>(shared: &Arc<SupShared<F>>, generation: u64)
where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let (Some(m), Some(cv)) = (shared.membership.clone(), shared.hb_cv.clone()) else {
        return;
    };
    let sh = Arc::clone(shared);
    shared
        .sim
        .spawn(&format!("liveness-monitor@g{generation}"), move || {
            let me = tfhpc_sim::des::current().expect("monitor is a sim process");
            let period = m.period_s().max(1e-6);
            let mut next = me.now() + period;
            loop {
                {
                    let st = sh.state.lock();
                    if st.generation != generation
                        || st.live.get(&generation).copied().unwrap_or(0) == 0
                    {
                        return;
                    }
                }
                let timed_out = if me.now() + 1e-12 >= next {
                    true
                } else {
                    cv.wait_until(next)
                };
                if !timed_out {
                    continue;
                }
                let now = me.now();
                let dead: Vec<MembershipEvent> = m
                    .sweep(now)
                    .into_iter()
                    .filter(|e| e.to == Liveness::Dead)
                    .collect();
                if !dead.is_empty() {
                    for ev in &dead {
                        observe_detection(ev.silent_for_s);
                        tfhpc_obs::global()
                            .counter("tfhpc_liveness_deaths_total")
                            .inc();
                    }
                    let failed: Vec<(TaskKey, u64)> = {
                        let st = sh.state.lock();
                        dead.iter()
                            .filter_map(|e| st.attempts.get(&e.key).map(|a| (e.key.clone(), *a)))
                            .collect()
                    };
                    let names: Vec<String> = dead.iter().map(|e| e.key.to_string()).collect();
                    supervise(
                        &sh,
                        generation,
                        format!(
                            "{} declared dead after {:.3}s of heartbeat silence",
                            names.join(", "),
                            dead[0].silent_for_s
                        ),
                        &failed,
                    );
                }
                next = me.now() + period;
            }
        });
}

/// Start (or restart) every task of `generation`: fresh servers for
/// restarts, then one sim process per task (plus its heartbeat daemon
/// and the generation's liveness monitor when heartbeats are on).
fn start_generation<F>(shared: &Arc<SupShared<F>>, generation: u64)
where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let roster = shared.tasks.lock().clone();
    if generation > 0 {
        for (key, node, gpus) in &roster {
            shared
                .cluster
                .start_server(key.clone(), *node, gpus.clone());
        }
    }
    let attempts: Vec<u64> = {
        let mut st = shared.state.lock();
        st.live.insert(generation, roster.len());
        roster
            .iter()
            .map(|(key, _, _)| {
                let a = st
                    .attempts
                    .entry(key.clone())
                    .and_modify(|a| *a += 1)
                    .or_insert(0);
                *a
            })
            .collect()
    };
    if let Some(m) = &shared.membership {
        let now = tfhpc_sim::des::current().map(|me| me.now()).unwrap_or(0.0);
        let epoch = shared.cluster.epoch();
        for (key, _, _) in &roster {
            if generation == 0 {
                m.join(key, now);
            } else if let Some(dead_for) = m.restarted(key, epoch, now) {
                observe_mttr(dead_for);
            }
        }
    }
    for ((key, node, gpus), attempt) in roster.into_iter().zip(attempts) {
        spawn_task(shared, generation, key.clone(), gpus, attempt);
        spawn_heartbeat(shared, generation, key, node, attempt);
    }
    spawn_monitor(shared, generation);
}

/// Draw one spare node from the retained allocation; `None` when the
/// spare pool is exhausted (the task then restarts in place).
fn draw_spare<F>(shared: &Arc<SupShared<F>>) -> Option<usize> {
    let mut slurm = shared.slurm.lock();
    let alloc = slurm
        .submit(&JobRequest {
            nodes: 1,
            ntasks: 1,
            distribution: Distribution::Block,
            gpus_per_task: 0,
        })
        .ok()?;
    // Hostnames are "t01nNN" with NN = global node index + 1.
    let host = alloc.hosts.first()?;
    let digits: String = host.chars().skip_while(|c| !c.is_ascii_digit()).collect();
    let tail = digits.rsplit(|c: char| !c.is_ascii_digit()).next()?;
    tail.parse::<usize>().ok().and_then(|n| n.checked_sub(1))
}

enum SupAction {
    Gang(u64),
    /// (key, new attempt) per task to restart in place.
    Partial(Vec<(TaskKey, u64)>),
    Fatal(Vec<TaskKey>),
}

/// React to a failure observed at `generation`: restart (gang, or
/// partial when policy allows) while budget remains, else mark the
/// culprits dead and drain the gang. `failed` carries the incarnation
/// each report is about — stale attempts are collateral of a repair
/// already in flight. Runs inside a sim process (the failing task's, a
/// fault daemon, or the liveness monitor).
fn supervise<F>(
    shared: &Arc<SupShared<F>>,
    generation: u64,
    what: String,
    failed: &[(TaskKey, u64)],
) where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let action = {
        let mut st = shared.state.lock();
        if generation != st.generation {
            // Collateral of a gang restart already in flight.
            return;
        }
        let fresh: Vec<(TaskKey, u64)> = failed
            .iter()
            .filter(|(k, a)| st.attempts.get(k).copied() == Some(*a) && !shared.cluster.is_dead(k))
            .cloned()
            .collect();
        if fresh.is_empty() {
            return;
        }
        if st.restarts_used < shared.sup.max_restarts {
            st.restarts_used += 1;
            tfhpc_obs::global()
                .counter("tfhpc_supervisor_restarts_total")
                .inc();
            let partial_ok = !shared.sup.partial_restart_jobs.is_empty()
                && fresh
                    .iter()
                    .all(|(k, _)| shared.sup.partial_restart_jobs.contains(&k.job));
            if partial_ok {
                let repl: Vec<(TaskKey, u64)> = fresh
                    .iter()
                    .map(|(k, _)| {
                        let a = st.attempts.entry(k.clone()).or_insert(0);
                        *a += 1;
                        (k.clone(), *a)
                    })
                    .collect();
                *st.live.entry(generation).or_insert(0) += repl.len();
                SupAction::Partial(repl)
            } else {
                st.generation += 1;
                SupAction::Gang(st.generation)
            }
        } else {
            st.failures.push(what.clone());
            SupAction::Fatal(fresh.into_iter().map(|(k, _)| k).collect())
        }
    };
    let backoff = shared.sup.restart_backoff_s;
    match action {
        SupAction::Gang(gen) => {
            // Fence the old generation, wake everything it parked, and
            // bring the gang back up at the current virtual time.
            shared.cluster.advance_epoch();
            shared.cluster.abort_all(CoreError::Aborted(format!(
                "gang restart (generation {gen}): {what}"
            )));
            shared.cluster.clear_dead();
            shared.cluster.notify_hang_gate();
            if let Some(cv) = &shared.hb_cv {
                cv.notify_all();
            }
            if backoff > 0.0 {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(backoff);
                }
            }
            start_generation(shared, gen);
        }
        SupAction::Partial(repl) => {
            tfhpc_obs::global()
                .counter("tfhpc_partial_restarts_total")
                .inc();
            // Transient death mark: peers touching the failed task see
            // retryable `Unavailable` until its replacement server
            // comes up (start_server clears the mark).
            for (key, _) in &repl {
                shared.cluster.mark_dead(key, &what);
            }
            if backoff > 0.0 {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(backoff);
                }
            }
            let epoch = shared.cluster.epoch();
            let now = tfhpc_sim::des::current().map(|me| me.now()).unwrap_or(0.0);
            for (key, attempt) in repl {
                let placement = {
                    let mut roster = shared.tasks.lock();
                    roster.iter_mut().find(|(k, _, _)| *k == key).map(|entry| {
                        let old = entry.1;
                        let moved = draw_spare(shared);
                        if let Some(spare) = moved {
                            entry.1 = spare;
                        }
                        (old, entry.1, entry.2.clone())
                    })
                };
                let Some((old_node, node, gpus)) = placement else {
                    continue;
                };
                if node != old_node {
                    shared
                        .state
                        .lock()
                        .replacements
                        .push((key.clone(), old_node, node));
                }
                shared.cluster.start_server(key.clone(), node, gpus.clone());
                if let Some(m) = &shared.membership {
                    if let Some(dead_for) = m.restarted(&key, epoch, now) {
                        observe_mttr(dead_for);
                    }
                }
                spawn_task(shared, generation, key.clone(), gpus, attempt);
                spawn_heartbeat(shared, generation, key, node, attempt);
            }
            // A hung corpse of the replaced incarnation wakes here,
            // observes it is no longer current and unwinds `Aborted`.
            shared.cluster.notify_hang_gate();
            if let Some(cv) = &shared.hb_cv {
                cv.notify_all();
            }
        }
        SupAction::Fatal(fresh) => {
            for k in &fresh {
                shared.cluster.mark_dead(k, &what);
            }
            shared.cluster.abort_all(CoreError::Unavailable(format!(
                "gang draining after fatal failure: {what}"
            )));
            shared.cluster.notify_hang_gate();
            if let Some(cv) = &shared.hb_cv {
                cv.notify_all();
            }
            // Bounded drain: anything still parked after the timeout
            // (a task that re-blocked after the abort broadcast) gets
            // swept again so the simulation cannot deadlock.
            let t = shared.sup.drain_timeout_s;
            if t > 0.0 {
                let sh = Arc::clone(shared);
                shared
                    .sim
                    .spawn(&format!("drain-watchdog@g{generation}"), move || {
                        tfhpc_sim::des::current()
                            .expect("watchdog is a sim process")
                            .advance(t);
                        sh.cluster.abort_all(CoreError::Unavailable(format!(
                            "drain timed out after {t}s"
                        )));
                        sh.cluster.notify_hang_gate();
                        if let Some(cv) = &sh.hb_cv {
                            cv.notify_all();
                        }
                    });
            }
        }
    }
}

/// Fault-daemon body: at the scheduled instant, fail every
/// current-generation task hosted on the crashed node. Runs as its own
/// sim process so a crash fires at exactly `at_s` even when every task
/// is parked (push-based injection — no poll required).
fn crash_node<F>(shared: &Arc<SupShared<F>>, node: usize, at_s: f64)
where
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let generation = {
        let st = shared.state.lock();
        // A gang that already fully exited has nothing left to crash.
        if st.live.get(&st.generation).copied().unwrap_or(0) == 0 {
            return;
        }
        st.generation
    };
    let roster = shared.tasks.lock().clone();
    let mut hit = Vec::new();
    for (key, n, _) in &roster {
        if *n != node {
            continue;
        }
        if let Ok(server) = shared.cluster.server(key) {
            // Only incarnations born strictly before the crash die; a
            // server restarted at/after `at_s` runs on the "rebooted"
            // node.
            if server.born_at() < at_s && server.epoch() == shared.cluster.epoch() {
                hit.push(key.clone());
            }
        }
    }
    if hit.is_empty() {
        return;
    }
    let failed: Vec<(TaskKey, u64)> = {
        let st = shared.state.lock();
        hit.into_iter()
            .filter_map(|k| st.attempts.get(&k).map(|a| (k.clone(), *a)))
            .collect()
    };
    if failed.is_empty() {
        return;
    }
    supervise(
        shared,
        generation,
        format!("node {node} crashed at t={at_s:.6} (injected)"),
        &failed,
    );
}

fn launch_inner<S, F>(cfg: &LaunchConfig, setup: S, body: F, trace: bool) -> Result<Launched>
where
    S: FnOnce(&Arc<TfCluster>),
    F: Fn(TaskCtx) -> Result<()> + Send + Sync + 'static,
{
    let tasks_per_node = cfg.platform.node.tf_instances_per_node.max(1);
    let n_nodes = nodes_needed(&cfg.jobs, tasks_per_node);
    if n_nodes == 0 {
        return Err(CoreError::Invalid("no tasks requested".into()));
    }
    let spare_nodes = cfg.supervisor.spare_nodes;

    // Allocate through the simulated workload manager (spares are part
    // of the reservation but carry no tasks until a partial restart
    // claims one).
    let mut slurm = SlurmCluster::for_platform(&cfg.platform, n_nodes + spare_nodes);
    let total_tasks: usize = cfg.jobs.iter().map(|j| j.tasks).sum();
    let alloc = slurm
        .submit(&JobRequest {
            nodes: n_nodes,
            ntasks: total_tasks,
            distribution: Distribution::Plane(tasks_per_node),
            gpus_per_task: 0,
        })
        .map_err(|e| CoreError::Invalid(format!("slurm: {e}")))?;

    // Resolve the TensorFlow cluster spec (the paper's resolver).
    let resolved =
        resolve_with_policy(&alloc, &cfg.jobs, tasks_per_node, true).map_err(CoreError::Invalid)?;

    // Check GPU feasibility ("insufficient number of GPUs available").
    for t in &resolved.tasks {
        if let Some(max) = t.gpu_ids.iter().max() {
            if *max >= cfg.platform.node.gpus_per_node {
                return Err(CoreError::Invalid(format!(
                    "task {} needs GPU {} but nodes have {}",
                    t.key, max, cfg.platform.node.gpus_per_node
                )));
            }
        }
    }

    // Instantiate hardware and the runtime cluster.
    let sim = cfg.simulated.then(Sim::new);
    if trace {
        if let Some(s) = &sim {
            s.enable_tracing();
        }
        // Traced launches also record structured scopes (nested spans,
        // queue flows) on the process-wide tracer.
        tfhpc_obs::trace::global().enable();
    }
    let cluster_sim = sim.as_ref().map(|s| {
        Arc::new(ClusterSim::new(
            s,
            cfg.platform.clone(),
            n_nodes + spare_nodes,
        ))
    });
    let cluster = TfCluster::new(resolved.spec.clone(), cfg.protocol, cluster_sim);
    cluster.set_faults(cfg.faults.clone());
    cluster.set_retry(cfg.retry.clone());

    let membership = (cfg.supervisor.heartbeat_timeout_s > 0.0).then(|| {
        Arc::new(Membership::new(
            cfg.supervisor.heartbeat_period_s.max(1e-6),
            cfg.supervisor.heartbeat_timeout_s,
        ))
    });

    let servers: Vec<(TaskKey, Arc<Server>, Vec<usize>)> = resolved
        .tasks
        .iter()
        .map(|t| {
            let server = cluster.start_server(t.key.clone(), t.node_index, t.gpu_ids.clone());
            (t.key.clone(), server, t.gpu_ids.clone())
        })
        .collect();

    setup(&cluster);

    let body = Arc::new(body);
    let start = Instant::now();

    let (elapsed_s, task_exits, restarts, replacements) = match &sim {
        Some(sim) => {
            // The hang gate exists only alongside liveness detection:
            // without a detector nobody would ever unpark a hung task,
            // so hangs then degrade to crash-style aborts instead.
            let hb_cv = membership.is_some().then(|| sim.condvar("heartbeats"));
            if membership.is_some() {
                cluster.set_hang_gate(Some(sim.condvar("hang-gate")));
            }
            let shared = Arc::new(SupShared {
                sim: Arc::clone(sim),
                cluster: Arc::clone(&cluster),
                tasks: Mutex::new(
                    resolved
                        .tasks
                        .iter()
                        .map(|t| (t.key.clone(), t.node_index, t.gpu_ids.clone()))
                        .collect(),
                ),
                body: Arc::clone(&body),
                sup: cfg.supervisor.clone(),
                start,
                state: Mutex::new(SupState::default()),
                membership: membership.clone(),
                hb_cv,
                slurm: Mutex::new(slurm),
            });
            start_generation(&shared, 0);
            // One fault daemon per scheduled crash: fires the failure at
            // the exact virtual instant even if every task is parked.
            if let Some(plan) = &cfg.faults {
                for ev in &plan.events {
                    if let FaultEvent::NodeCrash { node, at_s } = *ev {
                        let sh = Arc::clone(&shared);
                        sim.spawn(&format!("fault-daemon:node{node}"), move || {
                            tfhpc_sim::des::current()
                                .expect("fault daemon is a sim process")
                                .advance(at_s);
                            crash_node(&sh, node, at_s);
                        });
                    }
                }
            }
            let elapsed = sim.run();
            let mut st = shared.state.lock();
            if !st.failures.is_empty() {
                return Err(CoreError::Invalid(st.failures.join("; ")));
            }
            let exits = std::mem::take(&mut st.exits);
            let repl = std::mem::take(&mut st.replacements);
            (elapsed, exits, st.restarts_used, repl)
        }
        None => {
            let errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
            let exits: Arc<Mutex<Vec<TaskExit>>> = Arc::new(Mutex::new(Vec::new()));
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let mut aux: Vec<std::thread::JoinHandle<()>> = Vec::new();
            // Real-mode liveness is report-only: a silent task is
            // marked dead so peers unblock, but nothing restarts it.
            if let Some(m) = &membership {
                let m = Arc::clone(m);
                let stop = Arc::clone(&stop);
                let cluster = Arc::clone(&cluster);
                let period = m.period_s().max(1e-3);
                aux.push(
                    std::thread::Builder::new()
                        .name("liveness-monitor".into())
                        .spawn(move || {
                            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                                for ev in m.sweep(tfhpc_obs::now_seconds()) {
                                    if ev.to == Liveness::Dead {
                                        observe_detection(ev.silent_for_s);
                                        tfhpc_obs::global()
                                            .counter("tfhpc_liveness_deaths_total")
                                            .inc();
                                        cluster.mark_dead(
                                            &ev.key,
                                            &format!(
                                                "missed heartbeats for {:.3}s",
                                                ev.silent_for_s
                                            ),
                                        );
                                    }
                                }
                                std::thread::sleep(std::time::Duration::from_secs_f64(period));
                            }
                        })
                        .expect("spawn liveness monitor thread"),
                );
            }
            let mut handles = Vec::new();
            for (key, server, gpu_ids) in servers {
                let body = Arc::clone(&body);
                let errors = Arc::clone(&errors);
                let exits = Arc::clone(&exits);
                let cluster = Arc::clone(&cluster);
                let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
                if let Some(m) = &membership {
                    m.join(&key, tfhpc_obs::now_seconds());
                    let m = Arc::clone(m);
                    let stop = Arc::clone(&stop);
                    let done = Arc::clone(&done);
                    let key = key.clone();
                    let period = m.period_s().max(1e-3);
                    aux.push(
                        std::thread::Builder::new()
                            .name(format!("hb:{key}"))
                            .spawn(move || {
                                while !stop.load(std::sync::atomic::Ordering::SeqCst)
                                    && !done.load(std::sync::atomic::Ordering::SeqCst)
                                {
                                    m.beat(&key, tfhpc_obs::now_seconds());
                                    std::thread::sleep(std::time::Duration::from_secs_f64(period));
                                }
                            })
                            .expect("spawn heartbeat thread"),
                    );
                }
                let m = membership.clone();
                let ctx = TaskCtx {
                    server,
                    key: key.clone(),
                    gpu_ids,
                    start,
                    attempt: 0,
                };
                handles.push(
                    std::thread::Builder::new()
                        .name(key.to_string())
                        .spawn(move || {
                            let result = body(ctx);
                            done.store(true, std::sync::atomic::Ordering::SeqCst);
                            match result {
                                Ok(()) => {
                                    if let Some(m) = &m {
                                        m.left(&key, tfhpc_obs::now_seconds());
                                    }
                                    exits.lock().push(TaskExit {
                                        key,
                                        generation: 0,
                                        attempt: 0,
                                        error: None,
                                    });
                                }
                                Err(e) => {
                                    // Mark the task dead so peers parked on
                                    // its queues wake with `Unavailable`
                                    // instead of riding out the grace period.
                                    cluster.mark_dead(&key, &e.to_string());
                                    errors.lock().push(format!("{key}: {e}"));
                                    exits.lock().push(TaskExit {
                                        key,
                                        generation: 0,
                                        attempt: 0,
                                        error: Some(e.to_string()),
                                    });
                                }
                            }
                        })
                        .expect("spawn task thread"),
                );
            }
            // Teardown discipline: join everything that finishes, but a
            // panicked task can leave siblings parked on queues forever
            // — so after a failure is observed, give the rest a bounded
            // grace period instead of hanging the caller, and report
            // any still-running tasks in the error.
            let drain = std::time::Duration::from_secs_f64(cfg.supervisor.drain_timeout_s.max(0.0));
            let mut handles = handles;
            let mut panicked = 0usize;
            let mut deadline: Option<Instant> = None;
            while !handles.is_empty() {
                let failed_so_far = panicked > 0 || !errors.lock().is_empty();
                if failed_so_far && deadline.is_none() {
                    deadline = Some(Instant::now() + drain);
                }
                if let Some(d) = deadline {
                    if Instant::now() > d {
                        break; // leak stragglers, but report it below
                    }
                }
                let mut progressed = false;
                let mut i = 0;
                while i < handles.len() {
                    if handles[i].is_finished() {
                        if handles.swap_remove(i).join().is_err() {
                            panicked += 1;
                        }
                        progressed = true;
                    } else {
                        i += 1;
                    }
                }
                if !progressed && !handles.is_empty() {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
            for h in aux {
                let _ = h.join();
            }
            if panicked > 0 {
                errors.lock().push(format!("{panicked} task(s) panicked"));
            }
            if !handles.is_empty() {
                errors.lock().push(format!(
                    "{} task(s) still blocked after failure; detached",
                    handles.len()
                ));
            }
            let errs = errors.lock();
            if !errs.is_empty() {
                return Err(CoreError::Invalid(errs.join("; ")));
            }
            let exits = std::mem::take(&mut *exits.lock());
            (start.elapsed().as_secs_f64(), exits, 0, Vec::new())
        }
    };

    Ok(Launched {
        elapsed_s,
        resolved,
        sim,
        cluster,
        task_exits,
        restarts,
        membership,
        replacements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfhpc_sim::platform;
    use tfhpc_tensor::Tensor;

    #[test]
    fn nodes_needed_per_job_fresh() {
        let jobs = vec![JobSpec::new("ps", 1, 0), JobSpec::new("worker", 4, 1)];
        // Kebnekaise K80: 4 instances/node → 1 + 1 nodes.
        assert_eq!(nodes_needed(&jobs, 4), 2);
        // Tegner K420: 1 instance/node → 1 + 4 nodes.
        assert_eq!(nodes_needed(&jobs, 1), 5);
    }

    #[test]
    fn simulated_launch_runs_every_task() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k80(),
            vec![JobSpec::new("worker", 4, 1)],
            Protocol::Rdma,
        );
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let out = launch(&cfg, move |ctx| {
            assert_eq!(ctx.job(), "worker");
            assert_eq!(ctx.attempt(), 0);
            c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            // Spend some virtual time.
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(1.0 + ctx.index() as f64);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 4);
        // Slowest task advanced 4 seconds.
        assert!((out.elapsed_s - 4.0).abs() < 1e-9);
        assert_eq!(out.resolved.spec.num_tasks("worker"), 4);
        assert_eq!(out.task_exits.len(), 4);
        assert!(out.task_exits.iter().all(|e| e.error.is_none()));
        assert_eq!(out.restarts, 0);
        assert!(out.membership.is_none());
    }

    #[test]
    fn real_launch_measures_wall_time() {
        let cfg = LaunchConfig::real(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Grpc,
        );
        let out = launch(&cfg, |_ctx| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            Ok(())
        })
        .unwrap();
        assert!(out.elapsed_s >= 0.01);
        assert!(out.sim.is_none());
    }

    #[test]
    fn body_error_fails_launch_in_real_mode() {
        let cfg = LaunchConfig::real(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 1, 0)],
            Protocol::Grpc,
        );
        let result = launch(&cfg, |_ctx| Err(CoreError::Invalid("intentional".into())));
        match result {
            Err(CoreError::Invalid(msg)) => assert!(msg.contains("intentional")),
            _ => panic!("expected launch to surface the task error"),
        }
    }

    #[test]
    fn body_error_fails_launch_in_sim_mode_without_panicking() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        );
        let result = launch(&cfg, |ctx| {
            if ctx.index() == 1 {
                Err(CoreError::Invalid("intentional".into()))
            } else {
                Ok(())
            }
        });
        match result {
            Err(CoreError::Invalid(msg)) => assert!(msg.contains("intentional"), "{msg}"),
            other => panic!(
                "expected launch to surface the task error, got {:?}",
                other.map(|l| l.elapsed_s)
            ),
        }
    }

    #[test]
    fn supervisor_restarts_failed_gang() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        )
        .with_supervisor(SupervisorConfig {
            max_restarts: 2,
            restart_backoff_s: 0.5,
            ..SupervisorConfig::default()
        });
        let out = launch(&cfg, |ctx| {
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(1.0);
            }
            // First incarnation of worker 0 fails; all later ones work.
            if ctx.index() == 0 && ctx.attempt() == 0 {
                return Err(CoreError::Aborted("simulated fault".into()));
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(out.restarts, 1);
        // Gen 0: one failure + possibly one clean sibling; gen 1: two Ok.
        let g1_ok = out
            .task_exits
            .iter()
            .filter(|e| e.generation == 1 && e.error.is_none())
            .count();
        assert_eq!(g1_ok, 2, "{:?}", out.task_exits);
        // Failure at t=1.0 + 0.5 backoff + 1.0 rerun.
        assert!((out.elapsed_s - 2.5).abs() < 1e-9, "{}", out.elapsed_s);
    }

    #[test]
    fn injected_crash_restarts_at_exact_virtual_time() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        )
        .with_faults(FaultPlan::new().crash(1, 0.25))
        .with_supervisor(SupervisorConfig::restarting(1));
        let out = launch(&cfg, |ctx| {
            // Park both workers past the crash instant; the fault
            // daemon must fire mid-sleep and gang-restart.
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(1.0);
            }
            ctx.check_faults()?;
            Ok(())
        })
        .unwrap();
        assert_eq!(out.restarts, 1);
        // Restart at t=0.25 + 1.0 rerun.
        assert!((out.elapsed_s - 1.25).abs() < 1e-9, "{}", out.elapsed_s);
        let g1_ok = out
            .task_exits
            .iter()
            .filter(|e| e.generation == 1 && e.error.is_none())
            .count();
        assert_eq!(g1_ok, 2, "{:?}", out.task_exits);
    }

    #[test]
    fn crash_without_budget_fails_launch() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        )
        .with_faults(FaultPlan::new().crash(1, 0.25));
        let result = launch(&cfg, |ctx| {
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(1.0);
            }
            ctx.check_faults()?;
            Ok(())
        });
        match result {
            Err(e) => assert!(e.to_string().contains("crashed"), "{e}"),
            Ok(_) => panic!("expected the crash to fail the launch"),
        }
    }

    #[test]
    fn insufficient_gpus_detected() {
        // Tegner K420 nodes have 1 GPU; asking 2 GPUs per task fails.
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 1, 2)],
            Protocol::Rdma,
        );
        assert!(launch(&cfg, |_| Ok(())).is_err());
    }

    #[test]
    fn cross_task_communication_in_sim() {
        // ps + 2 workers: workers push into a ps variable.
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("ps", 1, 0), JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        );
        let out = launch(&cfg, |ctx| {
            let ps = TaskKey::new("ps", 0);
            if ctx.job() == "ps" {
                ctx.server
                    .resources
                    .create_variable("acc", Tensor::scalar_f64(0.0));
                // ps stays alive long enough to receive (barrier-free
                // model: variable exists from t=0 since creation is at
                // virtual time 0 before any worker sends at t>0).
                Ok(())
            } else {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(0.001 * (ctx.index() + 1) as f64);
                }
                ctx.server
                    .remote_assign_add(&ps, "acc", &Tensor::scalar_f64(1.0), None, None)?;
                Ok(())
            }
        })
        .unwrap();
        let ps = out.cluster.server(&TaskKey::new("ps", 0)).unwrap();
        assert_eq!(
            ps.resources
                .variable("acc")
                .unwrap()
                .read()
                .scalar_value_f64()
                .unwrap(),
            2.0
        );
    }

    #[test]
    fn hang_is_detected_by_heartbeats_and_gang_restarted() {
        // Worker 1's node hangs at t=0.3: its heartbeat daemon goes
        // silent (last beat 0.25) and the monitor's next sweep past
        // last_beat + timeout declares it dead (~0.5) and gang-restarts.
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        )
        .with_faults(FaultPlan::new().hang(1, 0.3))
        .with_supervisor(SupervisorConfig::restarting(1).with_heartbeats(0.05, 0.2));
        let out = launch(&cfg, |ctx| {
            for _ in 0..10 {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(0.1);
                }
                ctx.check_faults()?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(out.restarts, 1);
        let g1_ok = out
            .task_exits
            .iter()
            .filter(|e| e.generation == 1 && e.error.is_none())
            .count();
        assert_eq!(g1_ok, 2, "{:?}", out.task_exits);
        // Detection within the configured timeout (+ one sweep period).
        let m = out.membership.as_ref().unwrap();
        let dead = m
            .events()
            .iter()
            .find(|e| e.to == Liveness::Dead)
            .cloned()
            .expect("hang must produce a death verdict");
        assert_eq!(dead.key, TaskKey::new("worker", 1));
        assert!(
            dead.at_s - 0.3 <= 0.2 + 2.0 * 0.05 + 1e-9,
            "detected at {} for a hang at 0.3",
            dead.at_s
        );
        // Deterministic schedule: dead at ~0.5, rerun 1.0s from there.
        assert!((out.elapsed_s - 1.5).abs() < 1e-6, "{}", out.elapsed_s);
    }

    #[test]
    fn hang_without_budget_fails_launch() {
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Rdma,
        )
        .with_faults(FaultPlan::new().hang(1, 0.3))
        .with_supervisor(SupervisorConfig::default().with_heartbeats(0.05, 0.2));
        let result = launch(&cfg, |ctx| {
            for _ in 0..10 {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(0.1);
                }
                ctx.check_faults()?;
            }
            Ok(())
        });
        match result {
            Err(e) => assert!(
                e.to_string().contains("heartbeat silence"),
                "expected a liveness verdict, got {e}"
            ),
            Ok(_) => panic!("expected the hang to fail the launch"),
        }
    }

    #[test]
    fn partial_restart_leaves_healthy_tasks_untouched() {
        // Worker 1 fails once; with "worker" partial-restartable only
        // that task re-runs — siblings keep their single attempt and
        // the epoch is never bumped.
        let cfg = LaunchConfig::simulated(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 3, 1)],
            Protocol::Rdma,
        )
        .with_supervisor(
            SupervisorConfig::restarting(2)
                .with_partial_restart(["worker"])
                .with_spares(1),
        );
        let out = launch(&cfg, |ctx| {
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(0.2);
            }
            if ctx.index() == 1 && ctx.attempt() == 0 {
                return Err(CoreError::Aborted("simulated fault".into()));
            }
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(0.8);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(out.restarts, 1);
        assert_eq!(out.cluster.epoch(), 0, "partial restart must not fence");
        // Healthy workers ran exactly once, as attempt 0.
        for idx in [0usize, 2] {
            let exits: Vec<_> = out
                .task_exits
                .iter()
                .filter(|e| e.key.index == idx)
                .collect();
            assert_eq!(exits.len(), 1, "{:?}", out.task_exits);
            assert_eq!(exits[0].attempt, 0);
            assert!(exits[0].error.is_none());
        }
        // The failed worker ran twice; the retry succeeded as attempt 1.
        let w1: Vec<_> = out.task_exits.iter().filter(|e| e.key.index == 1).collect();
        assert_eq!(w1.len(), 2, "{:?}", out.task_exits);
        assert!(w1.iter().any(|e| e.attempt == 0 && e.error.is_some()));
        assert!(w1.iter().any(|e| e.attempt == 1 && e.error.is_none()));
        // The replacement came up on the spare node (3 primaries → the
        // spare is global node 3).
        assert_eq!(out.replacements, vec![(TaskKey::new("worker", 1), 1, 3)]);
        assert_eq!(
            out.cluster.server(&TaskKey::new("worker", 1)).unwrap().node,
            3
        );
        // Failure at 0.2, retry runs 0.2 → 1.2.
        assert!((out.elapsed_s - 1.2).abs() < 1e-9, "{}", out.elapsed_s);
    }

    #[test]
    fn real_mode_heartbeats_run_clean() {
        // Smoke: real-mode heartbeat threads + monitor produce no
        // false positives on a healthy gang and retire members on exit.
        let cfg = LaunchConfig::real(
            platform::tegner_k420(),
            vec![JobSpec::new("worker", 2, 1)],
            Protocol::Grpc,
        )
        .with_supervisor(SupervisorConfig::default().with_heartbeats(0.02, 2.0));
        let out = launch(&cfg, |_ctx| {
            std::thread::sleep(std::time::Duration::from_millis(50));
            Ok(())
        })
        .unwrap();
        let m = out.membership.expect("membership enabled");
        assert!(m.events().iter().all(|e| e.to != Liveness::Dead));
        for (_, rec) in m.members() {
            assert_eq!(rec.state, Liveness::Left);
        }
    }
}
