//! # tfhpc-dist
//!
//! The distributed runtime: TensorFlow's parameter-server/worker model
//! rebuilt for this reproduction. Provides cluster specifications
//! ([`cluster_spec`]), the Slurm Cluster Resolver the paper contributes
//! ([`resolver`]), in-process servers with remote tensor primitives
//! over simulated gRPC/MPI/RDMA transports ([`server`]), the queue-pair
//! reducer of paper Fig. 5 ([`reducer`]) and an end-to-end launcher
//! that turns a platform + job list into one process per task
//! ([`mod@launch`]), plus the Horovod-style all-reduce family
//! ([`collective`]: ring, binomial tree, recursive halving-doubling,
//! and crossover-driven auto-selection) §VIII proposes as the
//! parameter-server model's successor, over pluggable staged-copy /
//! zero-copy link transports ([`transport`]).

pub mod breaker;
pub mod cluster_spec;
pub mod collective;
pub mod launch;
pub mod membership;
pub mod reducer;
pub mod rendezvous;
pub mod resolver;
pub mod server;
pub mod transport;
pub mod wire;

pub use breaker::{BreakerConfig, BreakerSet, BreakerState};
pub use cluster_spec::{ClusterSpec, TaskKey};
pub use collective::{
    all_reduce, all_reduce_auto, link_profile, rhd_all_reduce, ring_all_reduce, ring_all_reduce_op,
    ring_all_reduce_resilient, select_all_reduce, tree_all_reduce, AllReduceAlgo,
    ResilientRingOptions,
};
pub use launch::{
    launch, launch_traced, launch_with_setup, LaunchConfig, Launched, SupervisorConfig, TaskCtx,
    TaskExit,
};
pub use membership::{Liveness, MemberRecord, Membership, MembershipEvent};
pub use reducer::{canonical_reduce, worker_all_reduce, ReduceOp, Reducer};
pub use rendezvous::{
    recv, recv_deadline, send, RecvKernel, RendezvousEdge, RendezvousKey, SendKernel,
};
pub use resolver::{resolve, resolve_with_policy, JobSpec, Resolved, ResolvedTask};
pub use server::{Server, TfCluster};
pub use transport::Transport;
