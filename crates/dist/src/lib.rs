//! # tfhpc-dist
//!
//! The distributed runtime: TensorFlow's parameter-server/worker model
//! rebuilt for this reproduction. Provides cluster specifications
//! ([`cluster_spec`]), the Slurm Cluster Resolver the paper contributes
//! ([`resolver`]), in-process servers with remote tensor primitives
//! over simulated gRPC/MPI/RDMA transports ([`server`]), the queue-pair
//! reducer of paper Fig. 5 ([`reducer`]) and an end-to-end launcher
//! that turns a platform + job list into one process per task
//! ([`mod@launch`]), plus the Horovod-style ring all-reduce ([`collective`])
//! §VIII proposes as the parameter-server model's successor.

pub mod cluster_spec;
pub mod collective;
pub mod launch;
pub mod membership;
pub mod reducer;
pub mod rendezvous;
pub mod resolver;
pub mod server;
pub mod wire;

pub use cluster_spec::{ClusterSpec, TaskKey};
pub use collective::{ring_all_reduce, ring_all_reduce_resilient, ResilientRingOptions};
pub use launch::{
    launch, launch_traced, launch_with_setup, LaunchConfig, Launched, SupervisorConfig, TaskCtx,
    TaskExit,
};
pub use membership::{Liveness, MemberRecord, Membership, MembershipEvent};
pub use reducer::{worker_all_reduce, ReduceOp, Reducer};
pub use rendezvous::{
    recv, recv_deadline, send, RecvKernel, RendezvousEdge, RendezvousKey, SendKernel,
};
pub use resolver::{resolve, resolve_with_policy, JobSpec, Resolved, ResolvedTask};
pub use server::{Server, TfCluster};
