//! Checksummed wire verification for inter-task tensor movement.
//!
//! Every tensor crossing a staged-copy link is verified with a CRC32C
//! over its payload bytes; zero-copy links skip the software checksum
//! in steady state (see [`crate::transport`]) but share the corrupted-
//! window slow path below. Two paths compute the staged check:
//!
//! * **Fast path** (no corruption window active on any node the
//!   transfer touches): sender and receiver each checksum the tensor's
//!   raw storage bytes in place via
//!   [`Tensor::visit_payload_bytes`] — no frame materialization, no
//!   proto encode/decode, zero allocation — and the receiver keeps the
//!   sender's buffer on match. This is the steady-state cost of the
//!   integrity plane, and what the runtime bench gates at <5% of a
//!   cached CG step.
//! * **Slow path** (a `LinkCorrupt` window from the injected
//!   [`FaultPlan`](tfhpc_sim::fault::FaultPlan) is active at the
//!   current virtual instant): the tensor is round-tripped through a
//!   sealed [`tfhpc_proto::frame`] and a deterministic bit (derived
//!   from the plan's per-instant entropy, never the wall clock) is
//!   flipped in the in-flight copy so verification genuinely fails.
//!   The failure is counted as a detection + requested retransmission
//!   and surfaced as *transient* `DataLoss`: the caller's
//!   [`RetryConfig`](tfhpc_core::RetryConfig) re-runs the transfer from
//!   the sender's pristine copy, exactly like a retransmitting
//!   transport. Since each backoff advances the virtual clock, the
//!   corruption window eventually closes and the pristine bytes decode
//!   bit-exactly.
//!
//! The two paths agree on delivered bytes: the framed round-trip is
//! bit-exact on success (pinned by the chaos suite), so returning the
//! sender's tensors on the fast path is observationally identical.
//!
//! Verification can be disabled for A/B overhead measurement with
//! `TFHPC_WIRE_CHECKSUM=0` (the bench harness uses this to keep the
//! integrity plane's cost honest); it is on by default.

use crate::server::Server;
use crate::transport::Transport;
use std::sync::OnceLock;
use tfhpc_core::{CoreError, Result, TensorProto};
use tfhpc_proto::{frame, Message};
use tfhpc_tensor::Tensor;

/// Whether wire checksumming is enabled (`TFHPC_WIRE_CHECKSUM` != `0`).
pub fn checksum_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("TFHPC_WIRE_CHECKSUM")
            .map(|v| v != "0")
            .unwrap_or(true)
    })
}

/// CRC32C over a tensor's payload bytes (dtype, dims, raw storage),
/// computed in place with zero allocation. This is the checksum both
/// endpoints of a fast-path transfer compare; the bench harness calls
/// it directly to price the integrity plane.
#[inline]
pub fn payload_crc(t: &Tensor) -> u32 {
    let mut crc = 0u32;
    t.visit_payload_bytes(|chunk| crc = frame::crc32c_append(crc, chunk));
    crc
}

/// Verify `tensors` as they traverse the wire across `nodes` (the
/// endpoints the transfer touches, in path order) under `transport`.
/// Returns the delivered tensors — bit-exact when verification passes
/// — or transient [`CoreError::DataLoss`] after counting the
/// detection and the requested retransmission on `server`'s
/// resources.
///
/// Staged-copy links pay the software CRC on the fast path; zero-copy
/// links only walk the registered pages (the NIC's link-layer check
/// is modeled as free). Corruption windows are transport-independent:
/// both fall back to the framed slow path, where the injected bit
/// flip is detected and retransmitted.
pub(crate) fn transfer(
    server: &Server,
    what: &str,
    nodes: &[usize],
    tensors: &[Tensor],
    transport: Transport,
) -> Result<Vec<Tensor>> {
    if !checksum_enabled() {
        return Ok(tensors.to_vec());
    }
    let plan = server.try_cluster()?.faults();
    let now = tfhpc_sim::des::current().map(|p| p.now()).unwrap_or(0.0);
    // Bind the plan together with the corrupt node so the slow path
    // can't be entered without the plan that scheduled it.
    let corrupt = plan.as_ref().and_then(|p| {
        nodes
            .iter()
            .copied()
            .find(|n| p.link_corrupt_at(*n, now))
            .map(|n| (p, n))
    });

    let Some((plan, node)) = corrupt else {
        match transport {
            // Fast path, staged-copy: checksum the raw storage at both
            // endpoints and deliver the sender's buffer on match. The
            // mismatch arm is unreachable without injection (same
            // bytes hashed twice) but keeps the detection accounting
            // uniform with the framed path.
            Transport::StagedCopy => {
                for t in tensors {
                    if payload_crc(t) != payload_crc(t) {
                        server.resources.note_corruption();
                        server.resources.note_retransmit();
                        return Err(CoreError::link_data_loss(format!(
                            "{what}: payload checksum failed in flight (t={now:.6})"
                        )));
                    }
                }
            }
            // Fast path, zero-copy: one-sided handoff from the
            // sender's registered buffer — walk the pages (the cost
            // of registration/pinning) but never hash them.
            Transport::ZeroCopy => {
                let mut registered = 0usize;
                for t in tensors {
                    t.visit_payload_bytes(|chunk| registered += chunk.len());
                }
                std::hint::black_box(registered);
            }
        }
        return Ok(tensors.to_vec());
    };

    // Slow path: a corruption window is active on the route, so the
    // transfer must materialize real frames for the injected bit-flip
    // to land in.
    let mut out = Vec::with_capacity(tensors.len());
    for t in tensors {
        let mut framed = TensorProto(t.clone())
            .to_framed_bytes()
            .map_err(CoreError::from)?;
        frame::flip_bit(&mut framed, plan.corruption_entropy(node, now));
        match frame::open(&framed) {
            Ok(payload) => out.push(TensorProto::decode(payload).map_err(CoreError::from)?.0),
            Err(_) => {
                server.resources.note_corruption();
                server.resources.note_retransmit();
                return Err(CoreError::link_data_loss(format!(
                    "{what}: frame checksum failed in flight (t={now:.6})"
                )));
            }
        }
    }
    Ok(out)
}
