//! The Slurm Cluster Resolver — the paper's §III contribution.
//!
//! Given a Slurm allocation and a list of jobs, the resolver produces
//! the TensorFlow [`ClusterSpec`] automatically: it reads the host list
//! (as `scontrol show hostnames` would), distributes jobs and tasks
//! over the allocated nodes with the plane distribution, assigns a port
//! per co-located task, and computes the GPU-visibility mask for every
//! task so multiple TensorFlow instances on one node expose disjoint
//! GPUs.

use crate::cluster_spec::{ClusterSpec, TaskKey};
use tfhpc_slurm::{Allocation, SlurmCluster};

/// A job the resolver should lay out (`("worker", 4)` etc.).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job name.
    pub name: String,
    /// Number of tasks.
    pub tasks: usize,
    /// GPUs each task needs exposed (0 for CPU-only ps/reducer jobs).
    pub gpus_per_task: usize,
}

impl JobSpec {
    /// Convenience constructor.
    pub fn new(name: &str, tasks: usize, gpus_per_task: usize) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            tasks,
            gpus_per_task,
        }
    }
}

/// Placement of one resolved task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedTask {
    /// Which task.
    pub key: TaskKey,
    /// Node index within the allocation.
    pub node_index: usize,
    /// Hostname.
    pub hostname: String,
    /// Port the task's server listens on.
    pub port: u16,
    /// GPU ids exposed to this task (`CUDA_VISIBLE_DEVICES`).
    pub gpu_ids: Vec<usize>,
}

/// The resolver output: a cluster spec plus physical placements.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// The TensorFlow cluster specification.
    pub spec: ClusterSpec,
    /// Physical placement per task, in `spec.all_tasks()`-independent
    /// job order (jobs in the order given, indexes ascending).
    pub tasks: Vec<ResolvedTask>,
}

impl Resolved {
    /// Placement for a task key.
    pub fn task(&self, key: &TaskKey) -> Option<&ResolvedTask> {
        self.tasks.iter().find(|t| &t.key == key)
    }
}

/// Base port for TensorFlow servers (TF convention in the paper's
/// listings).
pub const BASE_PORT: u16 = 8888;

/// Resolve a cluster spec from a Slurm allocation.
///
/// Layout policy (homogeneous allocation, plane distribution — what
/// the paper's resolver supports): jobs are laid out in order; each
/// job's tasks fill nodes at `tasks_per_node` before advancing. GPU
/// jobs must not exceed the node's GPU count; co-located tasks get
/// consecutive ports and disjoint GPU ranges.
pub fn resolve(
    alloc: &Allocation,
    jobs: &[JobSpec],
    tasks_per_node: usize,
) -> Result<Resolved, String> {
    resolve_with_policy(alloc, jobs, tasks_per_node, false)
}

/// [`resolve`] with an explicit co-location policy: when
/// `fresh_node_per_job` is set, each job starts on an empty node (the
/// paper's STREAM places the ps and the worker on separate nodes, and
/// the experiment harness keeps CPU-only reducers off worker nodes).
pub fn resolve_with_policy(
    alloc: &Allocation,
    jobs: &[JobSpec],
    tasks_per_node: usize,
    fresh_node_per_job: bool,
) -> Result<Resolved, String> {
    let hosts = SlurmCluster::scontrol_show_hostnames(&SlurmCluster::nodelist(alloc));
    if hosts.is_empty() {
        return Err("empty allocation".into());
    }
    let tasks_per_node = tasks_per_node.max(1);

    let mut placements: Vec<ResolvedTask> = Vec::new();
    let mut spec_jobs: Vec<(String, Vec<String>)> = Vec::new();
    // Per-node occupancy (tasks already placed on each node).
    let mut occupancy = vec![0usize; hosts.len()];
    let mut next_node = 0usize;

    for job in jobs {
        if fresh_node_per_job && occupancy[next_node] > 0 {
            // Advance to the next empty node for this job.
            let start = next_node;
            loop {
                next_node = (next_node + 1) % hosts.len();
                if occupancy[next_node] == 0 {
                    break;
                }
                if next_node == start {
                    return Err("no empty node available for job boundary".into());
                }
            }
        }
        let mut addresses = Vec::with_capacity(job.tasks);
        for index in 0..job.tasks {
            // Find the next node with spare slots (plane fill).
            let mut scanned = 0;
            while occupancy[next_node] >= tasks_per_node {
                next_node = (next_node + 1) % hosts.len();
                scanned += 1;
                if scanned > hosts.len() {
                    return Err(format!(
                        "allocation of {} nodes x {} slots cannot host all tasks",
                        hosts.len(),
                        tasks_per_node
                    ));
                }
            }
            let node_index = next_node;
            let local_rank = occupancy[node_index];
            occupancy[node_index] += 1;

            let port = BASE_PORT + local_rank as u16;
            let gpu_lo = local_rank * job.gpus_per_task;
            let gpu_ids: Vec<usize> = (gpu_lo..gpu_lo + job.gpus_per_task).collect();
            addresses.push(format!("{}:{}", hosts[node_index], port));
            placements.push(ResolvedTask {
                key: TaskKey::new(&job.name, index),
                node_index,
                hostname: hosts[node_index].clone(),
                port,
                gpu_ids,
            });
        }
        spec_jobs.push((job.name.clone(), addresses));
    }

    Ok(Resolved {
        spec: ClusterSpec::new(spec_jobs),
        tasks: placements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfhpc_slurm::{Distribution, JobRequest, NodeInfo, SlurmCluster};

    fn alloc(nodes: usize, gpus: usize, ntasks: usize) -> Allocation {
        let mut c = SlurmCluster::new(
            "gpu",
            (0..nodes)
                .map(|i| NodeInfo {
                    name: format!("t01n{:02}", i + 1),
                    gpus,
                    cpus: 24,
                })
                .collect(),
        );
        c.submit(&JobRequest {
            nodes,
            ntasks,
            distribution: Distribution::Plane(ntasks.div_ceil(nodes)),
            gpus_per_task: 0,
        })
        .unwrap()
    }

    #[test]
    fn stream_layout_ps_and_worker_on_distinct_nodes() {
        // The paper's STREAM: a ps and a worker on two nodes.
        let a = alloc(2, 1, 2);
        let r = resolve(
            &a,
            &[JobSpec::new("ps", 1, 1), JobSpec::new("worker", 1, 1)],
            1,
        )
        .unwrap();
        let ps = r.task(&TaskKey::new("ps", 0)).unwrap();
        let worker = r.task(&TaskKey::new("worker", 0)).unwrap();
        assert_ne!(ps.node_index, worker.node_index);
        assert_eq!(
            r.spec.task_address(&TaskKey::new("ps", 0)).unwrap(),
            "t01n01:8888"
        );
        assert_eq!(
            r.spec.task_address(&TaskKey::new("worker", 0)).unwrap(),
            "t01n02:8888"
        );
    }

    #[test]
    fn colocated_tasks_get_disjoint_gpus_and_ports() {
        // Kebnekaise-style: 4 TF instances per K80 node.
        let a = alloc(2, 4, 8);
        let r = resolve(&a, &[JobSpec::new("worker", 8, 1)], 4).unwrap();
        for node in 0..2 {
            let on_node: Vec<&ResolvedTask> =
                r.tasks.iter().filter(|t| t.node_index == node).collect();
            assert_eq!(on_node.len(), 4);
            let mut ports: Vec<u16> = on_node.iter().map(|t| t.port).collect();
            ports.sort_unstable();
            assert_eq!(ports, vec![8888, 8889, 8890, 8891]);
            let mut gpus: Vec<usize> = on_node.iter().flat_map(|t| t.gpu_ids.clone()).collect();
            gpus.sort_unstable();
            assert_eq!(gpus, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn mixed_jobs_fill_in_order() {
        let a = alloc(3, 2, 6);
        let r = resolve(
            &a,
            &[JobSpec::new("reducer", 2, 0), JobSpec::new("worker", 4, 1)],
            2,
        )
        .unwrap();
        // Reducers fill node 0; workers fill nodes 1..2.
        assert_eq!(r.task(&TaskKey::new("reducer", 0)).unwrap().node_index, 0);
        assert_eq!(r.task(&TaskKey::new("reducer", 1)).unwrap().node_index, 0);
        assert_eq!(r.task(&TaskKey::new("worker", 0)).unwrap().node_index, 1);
        assert_eq!(r.task(&TaskKey::new("worker", 2)).unwrap().node_index, 2);
        // CPU-only job exposes no GPUs.
        assert!(r
            .task(&TaskKey::new("reducer", 0))
            .unwrap()
            .gpu_ids
            .is_empty());
    }

    #[test]
    fn over_subscription_rejected() {
        let a = alloc(1, 1, 2);
        assert!(resolve(&a, &[JobSpec::new("worker", 3, 0)], 2).is_err());
    }

    #[test]
    fn spec_matches_placements() {
        let a = alloc(2, 2, 4);
        let r = resolve(&a, &[JobSpec::new("worker", 4, 1)], 2).unwrap();
        for t in &r.tasks {
            assert_eq!(
                r.spec.task_address(&t.key).unwrap(),
                format!("{}:{}", t.hostname, t.port)
            );
        }
    }
}
