//! All-reduce collectives — the Horovod-style algorithms §VIII points
//! to as the fix for the parameter-server model's scalability limits
//! ("Uber's Horovod and Cray's Machine Learning Plugin ... enable ...
//! MPI like interfaces ... for functions such as allreduce without
//! needing the use of dedicated servers").
//!
//! Three algorithms move the bytes; all obey the **fixed
//! reduction-order contract** of [`crate::reducer::canonical_reduce`]
//! (canonical binomial order over worker indices), so for identical
//! inputs every algorithm — and the central queue-pair reducer —
//! produces bit-identical results:
//!
//! * [`ring_all_reduce`] — reduce-scatter + all-gather over a ring.
//!   `2(P−1)` steps of `~n/P`-element messages per worker: per-worker
//!   traffic `~2n` independent of P, bandwidth-optimal for large
//!   payloads. To keep the canonical combine order (a rotation of the
//!   ring visits workers out of index order), in-flight messages carry
//!   the *aligned binomial partial blocks* of the contributions folded
//!   so far instead of one opaque accumulator — at most
//!   `⌈log2 P⌉ + 1` chunk-sized partials per hop, the classic
//!   reproducible-allreduce carry-save representation.
//! * [`tree_all_reduce`] — binomial reduce to `group[0]` + binomial
//!   broadcast. `2⌈log2 P⌉` full-payload message rounds: latency-
//!   optimal for small payloads, where the per-message α dominates.
//! * [`rhd_all_reduce`] — recursive halving-doubling (Rabenseifner):
//!   vector-halving reduce-scatter with distance doubling, then a
//!   mirrored all-gather. `2 log2 P` rounds moving `~2n` bytes total:
//!   bandwidth-optimal with log-latency for power-of-two groups.
//!
//! [`all_reduce_auto`] picks among them per call from payload size,
//! group size and the active link's measured α/β profile (the
//! `bench_transport` sweep maps the actual crossover points).
//!
//! Every collective send is verified through the wire integrity plane
//! ([`crate::wire`]): an injected corruption window surfaces as
//! transient `DataLoss` and the cluster's `RetryConfig` retransmits
//! from the sender's pristine copy.

use crate::cluster_spec::TaskKey;
use crate::membership::Membership;
use crate::reducer::ReduceOp;
use crate::server::Server;
use std::sync::Arc;
use tfhpc_core::{CoreError, Result};
use tfhpc_tensor::{ops, Tensor};

/// Balanced chunk boundaries: `n` elements into `parts` ranges.
fn chunk_bounds(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

fn ring_queue(step_kind: &str, to: usize) -> String {
    format!("ring.{step_kind}.{to}")
}

/// One partial reduction over the aligned worker-index block
/// `[start, start+len)` — the carry-save unit the canonical ring ships.
struct Block {
    start: usize,
    len: usize,
    t: Tensor,
}

/// The partial blocks accumulated for one chunk, kept sorted by start
/// and carry-merged: whenever two adjacent blocks form a canonical
/// binomial node (`[a, a+2^k)` + `[a+2^k, min(a+2^{k+1}, P))` with `a`
/// aligned to `2^{k+1}`), they are combined lower-index-block first —
/// exactly the order [`crate::reducer::canonical_reduce`] uses.
struct Blockset(Vec<Block>);

impl Blockset {
    fn leaf(worker: usize, t: Tensor) -> Blockset {
        Blockset(vec![Block {
            start: worker,
            len: 1,
            t,
        }])
    }

    fn absorb(&mut self, incoming: Vec<Block>, p: usize, op: ReduceOp) -> Result<()> {
        self.0.extend(incoming);
        self.0.sort_by_key(|b| b.start);
        loop {
            let mut merged = false;
            let mut i = 0;
            while i + 1 < self.0.len() {
                let (a, la) = (self.0[i].start, self.0[i].len);
                let (b, lb) = (self.0[i + 1].start, self.0[i + 1].len);
                let sibling = b == a + la
                    && la.is_power_of_two()
                    && a % (2 * la) == 0
                    && b + lb == (a + 2 * la).min(p);
                if sibling {
                    let hi = self.0.remove(i + 1);
                    let combined = op.combine(&self.0[i].t, &hi.t)?;
                    self.0[i].len = la + lb;
                    self.0[i].t = combined;
                    merged = true;
                } else {
                    i += 1;
                }
            }
            if !merged {
                return Ok(());
            }
        }
    }

    /// Wire encoding: `[meta, t_0, ..., t_{k-1}]` with `meta` an i64
    /// tensor of `(start, len)` pairs in block order.
    fn into_tuple(self) -> Result<Vec<Tensor>> {
        let mut meta = Vec::with_capacity(self.0.len() * 2);
        for b in &self.0 {
            meta.push(b.start as i64);
            meta.push(b.len as i64);
        }
        let mut tuple = Vec::with_capacity(self.0.len() + 1);
        tuple.push(Tensor::from_i64([meta.len()], meta)?);
        tuple.extend(self.0.into_iter().map(|b| b.t));
        Ok(tuple)
    }

    fn blocks_from_tuple(tuple: Vec<Tensor>) -> Result<Vec<Block>> {
        let mut it = tuple.into_iter();
        let meta = it
            .next()
            .ok_or_else(|| CoreError::Invalid("empty ring message".into()))?
            .as_i64()?
            .to_vec();
        let mut blocks = Vec::with_capacity(meta.len() / 2);
        for (pair, t) in meta.chunks_exact(2).zip(it) {
            blocks.push(Block {
                start: pair[0] as usize,
                len: pair[1] as usize,
                t,
            });
        }
        Ok(blocks)
    }

    fn into_root(self, p: usize) -> Result<Tensor> {
        let mut it = self.0.into_iter();
        match (it.next(), it.next()) {
            (Some(b), None) if b.start == 0 && b.len == p => Ok(b.t),
            _ => Err(CoreError::Invalid(
                "ring reduce-scatter did not converge to the root block".into(),
            )),
        }
    }
}

/// Send `tuple` into `queue` on `peer`, paying the modeled transfer and
/// verifying through the wire integrity plane. A corruption window
/// surfaces as transient `DataLoss`; the cluster's retry policy
/// retransmits from the pristine copy, re-charging the wire each time
/// like a real retransmitting transport.
fn verified_send(
    worker: &Arc<Server>,
    peer: &Arc<Server>,
    what: &str,
    queue: &str,
    cap: usize,
    gpu: Option<usize>,
    tuple: Vec<Tensor>,
) -> Result<()> {
    // Receiver-side queue (created on demand so arrival order between
    // group members does not matter).
    let q = peer.resources.get_or_create_queue(queue, cap);
    let bytes: u64 = tuple.iter().map(|t| t.byte_size() as u64).sum();
    let retry = worker.cluster().retry_config();
    let transport = worker.transport_to(peer);
    retry.run(what, Some(&worker.resources), || {
        worker.charge_transfer_to(peer, gpu, None, bytes);
        let verified =
            crate::wire::transfer(worker, what, &[worker.node, peer.node], &tuple, transport)?;
        q.enqueue(verified)
    })
}

/// Participate in a ring all-reduce (sum) over `group`.
///
/// `my` is this worker's index in `group`; `value` must be a rank-1
/// tensor of identical length on every participant. Blocks until the
/// reduction completes; returns the full reduced vector, bit-identical
/// to the central reducer's canonical fold.
pub fn ring_all_reduce(
    worker: &Arc<Server>,
    group: &[TaskKey],
    my: usize,
    value: Tensor,
    gpu: Option<usize>,
) -> Result<Tensor> {
    ring_all_reduce_op(worker, group, my, value, gpu, ReduceOp::Sum)
}

/// [`ring_all_reduce`] with an explicit reduction operator.
pub fn ring_all_reduce_op(
    worker: &Arc<Server>,
    group: &[TaskKey],
    my: usize,
    value: Tensor,
    gpu: Option<usize>,
    op: ReduceOp,
) -> Result<Tensor> {
    let p = group.len();
    if p == 0 || my >= p {
        return Err(CoreError::Invalid(format!(
            "bad ring membership: {my} of {p}"
        )));
    }
    if value.shape().rank() != 1 {
        return Err(CoreError::Invalid(
            "ring_all_reduce expects rank-1 tensors".into(),
        ));
    }
    if p == 1 {
        return Ok(value);
    }
    let n = value.num_elements();
    let bounds = chunk_bounds(n, p);
    let empty = |idx: usize| bounds[idx].0 == bounds[idx].1;
    let right = (my + 1) % p;
    let cluster = worker.cluster();
    let right_server = cluster.server(&group[right])?;

    // My queue must exist before my left neighbour pushes into it.
    worker
        .resources
        .get_or_create_queue(&ring_queue("rs", my), 2);
    worker
        .resources
        .get_or_create_queue(&ring_queue("ag", my), 2);

    let mut chunks: Vec<Tensor> = bounds
        .iter()
        .map(|(s, e)| value.slice_range(*s, *e))
        .collect::<std::result::Result<_, _>>()?;
    let mut sets: Vec<Option<Blockset>> = chunks
        .iter()
        .enumerate()
        .map(|(i, c)| (!empty(i)).then(|| Blockset::leaf(my, c.clone())))
        .collect();

    let send = |kind: &str, tuple: Vec<Tensor>| -> Result<()> {
        verified_send(
            worker,
            &right_server,
            "ring_all_reduce",
            &ring_queue(kind, right),
            2,
            gpu,
            tuple,
        )
    };
    let recv = |kind: &str| -> Result<Vec<Tensor>> {
        worker
            .resources
            .get_or_create_queue(&ring_queue(kind, my), 2)
            .dequeue()
    };

    // Phase 1 — reduce-scatter: after P−1 steps, chunk (my+1) mod P
    // holds the full canonical fold at this worker. Zero-length chunks
    // (P > n) move no messages at all: both endpoints compute the same
    // bounds, so neither sends nor waits.
    for step in 0..p - 1 {
        let send_idx = (my + p - step) % p;
        let recv_idx = (my + p - step - 1) % p;
        if !empty(send_idx) {
            let outgoing = sets[send_idx]
                .take()
                .ok_or_else(|| CoreError::Invalid("ring chunk sent twice".into()))?;
            send("rs", outgoing.into_tuple()?)?;
        }
        if !empty(recv_idx) {
            let incoming = Blockset::blocks_from_tuple(recv("rs")?)?;
            let mine = sets[recv_idx]
                .as_mut()
                .ok_or_else(|| CoreError::Invalid("ring chunk received twice".into()))?;
            mine.absorb(incoming, p, op)?;
        }
    }
    let done = (my + 1) % p;
    if !empty(done) {
        chunks[done] = sets[done]
            .take()
            .ok_or_else(|| CoreError::Invalid("ring finished chunk missing".into()))?
            .into_root(p)?;
    }

    // Phase 2 — all-gather: circulate the finished chunks.
    for step in 0..p - 1 {
        let send_idx = (my + 1 + p - step) % p;
        let recv_idx = (my + p - step) % p;
        if !empty(send_idx) {
            send("ag", vec![chunks[send_idx].clone()])?;
        }
        if !empty(recv_idx) {
            chunks[recv_idx] = recv("ag")?
                .into_iter()
                .next()
                .ok_or_else(|| CoreError::Invalid("empty ring message".into()))?;
        }
    }

    Tensor::concat_vecs(&chunks).map_err(CoreError::from)
}

/// Participate in a binomial-tree all-reduce over `group`: reduce to
/// `group[0]` in `⌈log2 P⌉` rounds, then binomial broadcast back.
/// Latency-optimal: `2⌈log2 P⌉` full-payload messages on the critical
/// path versus the ring's `2(P−1)`. Works for any group size; result
/// is bit-identical to the central reducer's canonical fold (each tree
/// combine *is* a canonical binomial node, lower-index subtree first).
pub fn tree_all_reduce(
    worker: &Arc<Server>,
    group: &[TaskKey],
    my: usize,
    value: Tensor,
    gpu: Option<usize>,
    op: ReduceOp,
) -> Result<Tensor> {
    let p = group.len();
    if p == 0 || my >= p {
        return Err(CoreError::Invalid(format!(
            "bad tree membership: {my} of {p}"
        )));
    }
    if value.shape().rank() != 1 {
        return Err(CoreError::Invalid(
            "tree_all_reduce expects rank-1 tensors".into(),
        ));
    }
    if p == 1 {
        return Ok(value);
    }
    let cluster = worker.cluster();
    let send_to = |peer_idx: usize, queue: String, t: Tensor| -> Result<()> {
        let peer = cluster.server(&group[peer_idx])?;
        verified_send(worker, &peer, "tree_all_reduce", &queue, 2, gpu, vec![t])
    };
    let recv_on = |queue: String| -> Result<Tensor> {
        worker
            .resources
            .get_or_create_queue(&queue, 2)
            .dequeue()?
            .into_iter()
            .next()
            .ok_or_else(|| CoreError::Invalid("empty tree message".into()))
    };

    // Reduce phase. Round k pairs `w` (receiver, `w % 2^{k+1} == 0`)
    // with `w + 2^k` (sender); the sender's accumulator covers worker
    // block `[w+2^k, min(w+2^{k+1}, P))`, so `combine(mine, theirs)`
    // forms exactly the canonical binomial node. Per-round queues pin
    // the pairing: a grandchild finishing early can never be mistaken
    // for a child's message.
    let mut acc = value;
    let mut k = 0;
    while (1 << k) < p {
        let bit = 1usize << k;
        if my.is_multiple_of(bit << 1) {
            if my + bit < p {
                let incoming = recv_on(format!("tree.red.{my}.{k}"))?;
                acc = op.combine(&acc, &incoming)?;
            }
        } else {
            // `my`'s lowest set bit is k: ship the subtree sum upward
            // and wait for the broadcast.
            send_to(my - bit, format!("tree.red.{}.{k}", my - bit), acc)?;
            acc = recv_on(format!("tree.bc.{my}"))?;
            // Forward down my own subtree (rounds below k, mirrored).
            for j in (0..k).rev() {
                let child = my + (1 << j);
                if child < p {
                    send_to(child, format!("tree.bc.{child}"), acc.clone())?;
                }
            }
            return Ok(acc);
        }
        k += 1;
    }
    // Root: broadcast down the full tree.
    for j in (0..k).rev() {
        let child = 1usize << j;
        if child < p {
            send_to(child, format!("tree.bc.{child}"), acc.clone())?;
        }
    }
    Ok(acc)
}

/// Participate in a recursive halving-doubling all-reduce
/// (Rabenseifner's algorithm) over `group`, which must be a power-of-
/// two size: `log2 P` vector-halving exchange rounds (reduce-scatter)
/// followed by `log2 P` mirrored vector-doubling rounds (all-gather).
/// Total traffic `~2n` per worker like the ring, but only `2 log2 P`
/// message latencies. Bit-identical to the canonical fold: round-`k`
/// partners hold the two halves of a canonical binomial node and
/// combine lower-index-block first. Zero-length segments (`P > n`)
/// move no messages.
pub fn rhd_all_reduce(
    worker: &Arc<Server>,
    group: &[TaskKey],
    my: usize,
    value: Tensor,
    gpu: Option<usize>,
    op: ReduceOp,
) -> Result<Tensor> {
    let p = group.len();
    if p == 0 || my >= p {
        return Err(CoreError::Invalid(format!(
            "bad rhd membership: {my} of {p}"
        )));
    }
    if !p.is_power_of_two() {
        return Err(CoreError::InvalidArgument(format!(
            "rhd_all_reduce requires a power-of-two group, got {p}"
        )));
    }
    if value.shape().rank() != 1 {
        return Err(CoreError::Invalid(
            "rhd_all_reduce expects rank-1 tensors".into(),
        ));
    }
    if p == 1 {
        return Ok(value);
    }
    let rounds = p.trailing_zeros() as usize;
    let cluster = worker.cluster();
    let exchange = |phase: &str,
                    k: usize,
                    partner: usize,
                    t: Option<Tensor>,
                    want_len: usize|
     -> Result<Option<Tensor>> {
        if let Some(t) = t {
            let peer = cluster.server(&group[partner])?;
            verified_send(
                worker,
                &peer,
                "rhd_all_reduce",
                &format!("rhd.{phase}.{partner}.{k}"),
                1,
                gpu,
                vec![t],
            )?;
        }
        if want_len == 0 {
            return Ok(None);
        }
        worker
            .resources
            .get_or_create_queue(&format!("rhd.{phase}.{my}.{k}"), 1)
            .dequeue()?
            .into_iter()
            .next()
            .map(Some)
            .ok_or_else(|| CoreError::Invalid("empty rhd message".into()))
    };

    // Reduce-scatter: at round k my segment is [lo, hi) (shared with
    // the partner, since it depends only on bits < k of the index);
    // keep one half, ship the other, combine in worker-block order.
    let n = value.num_elements();
    let mut acc = value;
    let (mut lo, mut hi) = (0usize, n);
    let mut parents: Vec<(usize, usize)> = Vec::with_capacity(rounds);
    for k in 0..rounds {
        let bit = 1usize << k;
        let partner = my ^ bit;
        parents.push((lo, hi));
        let mid = lo + (hi - lo).div_ceil(2);
        let (keep_lo, keep_hi, send_lo, send_hi) = if my & bit == 0 {
            (lo, mid, mid, hi)
        } else {
            (mid, hi, lo, mid)
        };
        let outgoing = (send_hi > send_lo)
            .then(|| acc.slice_range(send_lo - lo, send_hi - lo))
            .transpose()?;
        let kept = acc.slice_range(keep_lo - lo, keep_hi - lo)?;
        let incoming = exchange("rs", k, partner, outgoing, keep_hi - keep_lo)?;
        acc = match incoming {
            Some(theirs) if my & bit == 0 => op.combine(&kept, &theirs)?,
            Some(theirs) => op.combine(&theirs, &kept)?,
            None => kept,
        };
        lo = keep_lo;
        hi = keep_hi;
    }

    // All-gather: mirror the rounds; partners own the two halves of
    // the round's parent segment and swap them.
    let mut segments: Vec<Tensor> = vec![acc];
    let mut seg_lo = lo;
    for k in (0..rounds).rev() {
        let bit = 1usize << k;
        let partner = my ^ bit;
        let (plo, phi) = parents[k];
        let mid = plo + (phi - plo).div_ceil(2);
        let mine_is_lower = my & bit == 0;
        let (theirs_lo, theirs_hi) = if mine_is_lower {
            (mid, phi)
        } else {
            (plo, mid)
        };
        let outgoing = (hi > lo)
            .then(|| {
                if segments.len() == 1 {
                    Ok(segments[0].clone())
                } else {
                    Tensor::concat_vecs(&segments)
                }
            })
            .transpose()?;
        let incoming = exchange("ag", k, partner, outgoing, theirs_hi - theirs_lo)?;
        if let Some(theirs) = incoming {
            if theirs_lo < seg_lo {
                segments.insert(0, theirs);
                seg_lo = theirs_lo;
            } else {
                segments.push(theirs);
            }
        }
        lo = plo;
        hi = phi;
    }
    Tensor::concat_vecs(&segments).map_err(CoreError::from)
}

/// Which algorithm an all-reduce call used or should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllReduceAlgo {
    /// Bandwidth-optimal ring (any group size).
    Ring,
    /// Latency-optimal binomial tree (any group size).
    Tree,
    /// Recursive halving-doubling (power-of-two groups).
    Rhd,
}

impl AllReduceAlgo {
    /// Metrics/bench label.
    pub fn name(self) -> &'static str {
        match self {
            AllReduceAlgo::Ring => "ring",
            AllReduceAlgo::Tree => "tree",
            AllReduceAlgo::Rhd => "rhd",
        }
    }
}

/// The active link's measured latency/bandwidth profile: `alpha_s` per
/// message plus `beta_s_per_byte` per payload byte, probed from the
/// uncontended transfer model between the group's first two members
/// (every member probes the same canonical pair, so all members select
/// the same algorithm). Real-mode (un-simulated) clusters fall back to
/// Verbs-class constants.
pub fn link_profile(worker: &Arc<Server>, group: &[TaskKey]) -> (f64, f64) {
    const REAL_ALPHA_S: f64 = 2.0e-5;
    const REAL_BETA_S_PER_BYTE: f64 = 1.0 / 6.6e9;
    let profile = || -> Result<(f64, f64)> {
        let cluster = worker.try_cluster()?;
        let sim = cluster
            .sim
            .as_ref()
            .ok_or_else(|| CoreError::Unavailable("real mode".into()))?;
        let (a, b) = match group {
            [a, b, ..] => (cluster.server(a)?, cluster.server(b)?),
            _ => return Err(CoreError::Invalid("degenerate group".into())),
        };
        let path = sim.path(
            a.loc(None),
            b.loc(None),
            cluster.wire_protocol(&a.key.job, &b.key.job),
        );
        const PROBE_BYTES: u64 = 1 << 20;
        let alpha = path.uncontended_seconds(0);
        let beta = (path.uncontended_seconds(PROBE_BYTES) - alpha) / PROBE_BYTES as f64;
        Ok((alpha, beta.max(0.0)))
    };
    profile().unwrap_or((REAL_ALPHA_S, REAL_BETA_S_PER_BYTE))
}

/// Select the fastest all-reduce algorithm for `payload_bytes` over a
/// group of `p` members on a link with the given `(alpha, beta)`
/// profile, using the textbook cost models (documented in DESIGN.md §
/// "Transport & collectives"). Deterministic: ties prefer
/// Tree → RHD → Ring.
pub fn select_all_reduce(
    p: usize,
    payload_bytes: u64,
    alpha_s: f64,
    beta_s_per_byte: f64,
) -> AllReduceAlgo {
    if p <= 1 {
        return AllReduceAlgo::Tree;
    }
    let n = payload_bytes as f64;
    let logp = (usize::BITS - (p - 1).leading_zeros()) as f64; // ceil(log2 p)
    let pf = p as f64;
    let tree = 2.0 * logp * (alpha_s + n * beta_s_per_byte);
    let ring = 2.0 * (pf - 1.0) * (alpha_s + n / pf * beta_s_per_byte);
    let mut best = (tree, AllReduceAlgo::Tree);
    if p.is_power_of_two() {
        let rhd = 2.0 * logp * alpha_s + 2.0 * n * beta_s_per_byte * (pf - 1.0) / pf;
        if rhd < best.0 {
            best = (rhd, AllReduceAlgo::Rhd);
        }
    }
    if ring < best.0 {
        best = (ring, AllReduceAlgo::Ring);
    }
    best.1
}

/// Forced algorithm from `TFHPC_COLLECTIVE` (`auto`/`ring`/`tree`/
/// `rhd`); unset or `auto` keeps the cost-model choice, malformed is a
/// loud error per the env-knob contract.
fn env_collective() -> Result<Option<AllReduceAlgo>> {
    match std::env::var("TFHPC_COLLECTIVE") {
        Err(_) => Ok(None),
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(None),
            "ring" => Ok(Some(AllReduceAlgo::Ring)),
            "tree" => Ok(Some(AllReduceAlgo::Tree)),
            "rhd" => Ok(Some(AllReduceAlgo::Rhd)),
            _ => Err(CoreError::InvalidArgument(format!(
                "TFHPC_COLLECTIVE=`{raw}` is not one of auto/ring/tree/rhd"
            ))),
        },
    }
}

/// Run one all-reduce with an explicit algorithm.
pub fn all_reduce(
    worker: &Arc<Server>,
    group: &[TaskKey],
    my: usize,
    value: Tensor,
    gpu: Option<usize>,
    op: ReduceOp,
    algo: AllReduceAlgo,
) -> Result<Tensor> {
    match algo {
        AllReduceAlgo::Ring => ring_all_reduce_op(worker, group, my, value, gpu, op),
        AllReduceAlgo::Tree => tree_all_reduce(worker, group, my, value, gpu, op),
        AllReduceAlgo::Rhd => rhd_all_reduce(worker, group, my, value, gpu, op),
    }
}

/// All-reduce with automatic algorithm selection from payload size,
/// group size and the active link's α/β profile ([`select_all_reduce`];
/// `TFHPC_COLLECTIVE` forces a choice). All candidates obey the fixed
/// reduction-order contract, so the selection never changes the bits —
/// only the schedule. The choice is exported as
/// `tfhpc_collective_selected_total{algo=...}`.
pub fn all_reduce_auto(
    worker: &Arc<Server>,
    group: &[TaskKey],
    my: usize,
    value: Tensor,
    gpu: Option<usize>,
    op: ReduceOp,
) -> Result<Tensor> {
    let algo = match env_collective()? {
        Some(forced) => forced,
        None => {
            let (alpha, beta) = link_profile(worker, group);
            select_all_reduce(group.len(), value.byte_size() as u64, alpha, beta)
        }
    };
    tfhpc_obs::global()
        .counter_with("tfhpc_collective_selected_total", &[("algo", algo.name())])
        .inc();
    all_reduce(worker, group, my, value, gpu, op, algo)
}

/// Tuning for [`ring_all_reduce_resilient`].
#[derive(Debug, Clone)]
pub struct ResilientRingOptions {
    /// Total seconds a member waits on one ring receive before
    /// declaring the round stalled and sweeping the membership table.
    pub recv_timeout_s: f64,
    /// How many times the ring may re-form over survivors before the
    /// reduction gives up with `DeadlineExceeded`.
    pub max_reforms: usize,
}

impl Default for ResilientRingOptions {
    fn default() -> Self {
        ResilientRingOptions {
            recv_timeout_s: 1.0,
            max_reforms: 2,
        }
    }
}

fn resilient_queue(round: usize, step_kind: &str, to: usize) -> String {
    format!("ring.r{round}.{step_kind}.{to}")
}

/// One attempt at a full ring round over `members` (round-scoped
/// queues). While parked on a receive, the member keeps heartbeating
/// `membership` in short ticks so a stalled ring never makes *healthy*
/// members look silent — only the actual straggler misses deadlines.
#[allow(clippy::too_many_arguments)]
fn resilient_round(
    worker: &Arc<Server>,
    members: &[TaskKey],
    my: usize,
    my_key: &TaskKey,
    round: usize,
    value: &Tensor,
    gpu: Option<usize>,
    membership: &Membership,
    opts: &ResilientRingOptions,
) -> Result<Tensor> {
    let p = members.len();
    if p == 1 {
        return Ok(value.clone());
    }
    let n = value.num_elements();
    let bounds = chunk_bounds(n, p);
    let right = (my + 1) % p;
    let cluster = worker.try_cluster()?;
    let right_server = cluster.server(&members[right])?;
    // Capacity 2p: a member can run at most a phase ahead of a slow
    // neighbour, so sends never block (only receives can stall).
    let cap = 2 * p;
    worker
        .resources
        .get_or_create_queue(&resilient_queue(round, "rs", my), cap);
    worker
        .resources
        .get_or_create_queue(&resilient_queue(round, "ag", my), cap);

    let mut chunks: Vec<Tensor> = bounds
        .iter()
        .map(|(s, e)| value.slice_range(*s, *e))
        .collect::<std::result::Result<_, _>>()?;

    let tick = membership.period_s().max(1e-4);
    let send = |kind: &str, chunk: Tensor| -> Result<()> {
        membership.beat(my_key, tfhpc_obs::now_seconds());
        let q = right_server
            .resources
            .get_or_create_queue(&resilient_queue(round, kind, right), cap);
        worker.charge_transfer_to(&right_server, gpu, None, chunk.byte_size() as u64);
        q.enqueue(vec![chunk])
    };
    let recv = |kind: &str| -> Result<Tensor> {
        let q = worker
            .resources
            .get_or_create_queue(&resilient_queue(round, kind, my), cap);
        let mut waited = 0.0;
        let tuple = loop {
            membership.beat(my_key, tfhpc_obs::now_seconds());
            match q.dequeue_timeout(tick) {
                Ok(tuple) => break tuple,
                Err(CoreError::DeadlineExceeded(_)) => {
                    waited += tick;
                    if waited + 1e-12 >= opts.recv_timeout_s {
                        return Err(CoreError::DeadlineExceeded(format!(
                            "ring round {round}: no chunk after {waited:.6}s"
                        )));
                    }
                }
                Err(e) => return Err(e),
            }
        };
        tuple
            .into_iter()
            .next()
            .ok_or_else(|| CoreError::Invalid("empty ring message".into()))
    };

    for step in 0..p - 1 {
        let send_idx = (my + p - step) % p;
        let recv_idx = (my + p - step - 1) % p;
        send("rs", chunks[send_idx].clone())?;
        let incoming = recv("rs")?;
        chunks[recv_idx] = ops::add(&chunks[recv_idx], &incoming)?;
    }
    for step in 0..p - 1 {
        let send_idx = (my + 1 + p - step) % p;
        let recv_idx = (my + p - step) % p;
        send("ag", chunks[send_idx].clone())?;
        chunks[recv_idx] = recv("ag")?;
    }
    Tensor::concat_vecs(&chunks).map_err(CoreError::from)
}

/// [`ring_all_reduce`] with straggler mitigation through the membership
/// plane.
///
/// Every participant calls this with the same `group` and `membership`.
/// When a receive stalls past `opts.recv_timeout_s`, the stalled member
/// sweeps the membership deadlines: members whose heartbeats went
/// silent are declared `Dead` and ejected, and the ring *re-forms over
/// the survivors* on round-scoped queues. An ejected member observes
/// its own verdict and returns `Aborted` — its contribution is dropped
/// from the reduction, which is the degradation (not correctness-
/// preserving averaging) mode of Horovod-style elastic collectives.
///
/// Returns the reduced tensor together with the member set it was
/// reduced over.
pub fn ring_all_reduce_resilient(
    worker: &Arc<Server>,
    group: &[TaskKey],
    my_key: &TaskKey,
    value: Tensor,
    gpu: Option<usize>,
    membership: &Membership,
    opts: &ResilientRingOptions,
) -> Result<(Tensor, Vec<TaskKey>)> {
    if value.shape().rank() != 1 {
        return Err(CoreError::Invalid(
            "ring_all_reduce expects rank-1 tensors".into(),
        ));
    }
    let now = tfhpc_obs::now_seconds();
    for k in group {
        membership.join(k, now);
    }
    let mut survivors: Vec<TaskKey> = group
        .iter()
        .filter(|k| !membership.is_dead(k))
        .cloned()
        .collect();
    let mut round = 0;
    let mut reforms = 0;
    loop {
        if membership.is_dead(my_key) {
            return Err(CoreError::Aborted(format!(
                "{my_key} ejected from ring by the failure detector"
            )));
        }
        let my = survivors
            .iter()
            .position(|k| k == my_key)
            .ok_or_else(|| CoreError::Invalid(format!("{my_key} is not a ring member")))?;
        match resilient_round(
            worker, &survivors, my, my_key, round, &value, gpu, membership, opts,
        ) {
            Ok(t) => return Ok((t, survivors)),
            Err(CoreError::DeadlineExceeded(what)) => {
                // Deadline-sweep the detector, then drop every member
                // it has declared dead. State (not edge) based, so all
                // stalled survivors converge on the same next ring.
                membership.sweep(tfhpc_obs::now_seconds());
                if membership.is_dead(my_key) {
                    return Err(CoreError::Aborted(format!(
                        "{my_key} ejected from ring by the failure detector"
                    )));
                }
                let next: Vec<TaskKey> = survivors
                    .iter()
                    .filter(|k| !membership.is_dead(k))
                    .cloned()
                    .collect();
                if next.len() == survivors.len() {
                    return Err(CoreError::DeadlineExceeded(format!(
                        "ring stalled with no detectable failure: {what}"
                    )));
                }
                reforms += 1;
                if reforms > opts.max_reforms {
                    return Err(CoreError::DeadlineExceeded(format!(
                        "ring re-formed {} times without completing",
                        reforms - 1
                    )));
                }
                tfhpc_obs::global()
                    .counter("tfhpc_ring_reforms_total")
                    .inc();
                survivors = next;
                round += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_spec::ClusterSpec;
    use crate::server::TfCluster;
    use tfhpc_sim::net::Protocol;

    fn workers(p: usize) -> (Arc<TfCluster>, Vec<Arc<Server>>) {
        let spec = ClusterSpec::new([(
            "worker".to_string(),
            (0..p).map(|i| format!("n{i}:8888")).collect(),
        )]);
        let c = TfCluster::new(spec, Protocol::Rdma, None);
        let servers = (0..p)
            .map(|i| c.start_server(TaskKey::new("worker", i), i, vec![0]))
            .collect();
        (c, servers)
    }

    fn group(p: usize) -> Vec<TaskKey> {
        (0..p).map(|i| TaskKey::new("worker", i)).collect()
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        assert_eq!(chunk_bounds(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(chunk_bounds(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(chunk_bounds(2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
    }

    fn run_ring(p: usize, n: usize) {
        let (_c, servers) = workers(p);
        let g = group(p);
        let mut handles = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                let v: Vec<f64> = (0..n).map(|k| (i * n + k) as f64).collect();
                let t = Tensor::from_f64([n], v).unwrap();
                ring_all_reduce(&s, &g, i, t, None).unwrap()
            }));
        }
        let results: Vec<Tensor> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Expected sum at element k: sum_i (i*n + k).
        let base: f64 = (0..p).map(|i| (i * n) as f64).sum();
        for r in &results {
            let rv = r.as_f64().unwrap();
            assert_eq!(rv.len(), n);
            for (k, x) in rv.iter().enumerate() {
                assert_eq!(*x, base + (p * k) as f64, "element {k}");
            }
        }
    }

    #[test]
    fn two_worker_ring() {
        run_ring(2, 8);
    }

    #[test]
    fn four_worker_ring_uneven_chunks() {
        run_ring(4, 10); // 10 % 4 != 0
    }

    #[test]
    fn eight_worker_ring() {
        run_ring(8, 64);
    }

    /// Run `algo` on `p` threads over length-`n` payloads and check
    /// every member's result is bit-identical to the central
    /// reducer's canonical fold of the same leaves.
    fn run_algo(algo: AllReduceAlgo, p: usize, n: usize, op: ReduceOp) {
        let (_c, servers) = workers(p);
        let g = group(p);
        let leaf = move |i: usize| {
            let v: Vec<f64> = (0..n)
                .map(|k| {
                    ((i * n + k) as f64)
                        * if (i + k).is_multiple_of(3) {
                            -1.5
                        } else {
                            0.25
                        }
                })
                .collect();
            Tensor::from_f64([n], v).unwrap()
        };
        let expected = crate::reducer::canonical_reduce(op, (0..p).map(leaf).collect())
            .unwrap()
            .as_f64()
            .unwrap()
            .to_vec();
        let mut handles = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                all_reduce(&s, &g, i, leaf(i), None, op, algo).unwrap()
            }));
        }
        for h in handles {
            let r = h.join().unwrap();
            let bits: Vec<u64> = r.as_f64().unwrap().iter().map(|x| x.to_bits()).collect();
            let want: Vec<u64> = expected.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits, want, "{}: p={p} n={n} {}", algo.name(), op.name());
        }
    }

    #[test]
    fn tree_matches_central_reducer() {
        for p in [2, 3, 5, 8] {
            run_algo(AllReduceAlgo::Tree, p, 7, ReduceOp::Sum);
        }
    }

    #[test]
    fn rhd_matches_central_reducer() {
        for p in [2, 4, 8] {
            run_algo(AllReduceAlgo::Rhd, p, 10, ReduceOp::Sum);
        }
    }

    #[test]
    fn ring_matches_central_reducer() {
        for p in [2, 3, 4, 6] {
            run_algo(AllReduceAlgo::Ring, p, 9, ReduceOp::Sum);
        }
    }

    #[test]
    fn min_max_parity_across_algorithms() {
        for op in [ReduceOp::Min, ReduceOp::Max] {
            run_algo(AllReduceAlgo::Ring, 5, 11, op);
            run_algo(AllReduceAlgo::Tree, 5, 11, op);
            run_algo(AllReduceAlgo::Rhd, 4, 11, op);
        }
    }

    #[test]
    fn more_workers_than_elements() {
        // P > n: some ring chunks and RHD segments are empty; no
        // zero-length messages may be exchanged (they would wedge the
        // empty-skip protocol on the peer side).
        run_algo(AllReduceAlgo::Ring, 6, 2, ReduceOp::Sum);
        run_algo(AllReduceAlgo::Ring, 4, 1, ReduceOp::Sum);
        run_algo(AllReduceAlgo::Rhd, 8, 3, ReduceOp::Sum);
        run_algo(AllReduceAlgo::Tree, 6, 2, ReduceOp::Sum);
    }

    #[test]
    fn rhd_rejects_non_power_of_two() {
        let (_c, servers) = workers(3);
        let t = Tensor::from_f64([4], vec![0.0; 4]).unwrap();
        let err = rhd_all_reduce(&servers[0], &group(3), 0, t, None, ReduceOp::Sum).unwrap_err();
        assert!(matches!(err, CoreError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn auto_selects_by_size_and_matches() {
        // Small payloads on a latency-heavy link → tree; large → ring
        // or RHD. Either way the bits must match the canonical fold.
        run_algo_auto(4, 2);
        run_algo_auto(4, 4096);
    }

    fn run_algo_auto(p: usize, n: usize) {
        let (_c, servers) = workers(p);
        let g = group(p);
        let leaf = move |i: usize| {
            let v: Vec<f64> = (0..n).map(|k| (i * n + k) as f64).collect();
            Tensor::from_f64([n], v).unwrap()
        };
        let expected = crate::reducer::canonical_reduce(ReduceOp::Sum, (0..p).map(leaf).collect())
            .unwrap()
            .as_f64()
            .unwrap()
            .to_vec();
        let mut handles = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                all_reduce_auto(&s, &g, i, leaf(i), None, ReduceOp::Sum).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap().as_f64().unwrap(), &expected[..]);
        }
    }

    #[test]
    fn selection_cost_model_crossover() {
        // Verbs-class profile: 20 µs latency, ~6.6 GB/s.
        let (a, b) = (2.0e-5, 1.0 / 6.6e9);
        // Power-of-two groups: RHD dominates tree outright (same
        // latency term, smaller bandwidth term) and beats the ring's
        // 2(P−1) latencies everywhere — tiny or huge.
        assert_eq!(select_all_reduce(8, 64, a, b), AllReduceAlgo::Rhd);
        assert_eq!(select_all_reduce(8, 64 << 20, a, b), AllReduceAlgo::Rhd);
        // Non-power-of-two small → tree (latency-optimal), large →
        // ring (bandwidth-optimal).
        assert_eq!(select_all_reduce(6, 64, a, b), AllReduceAlgo::Tree);
        assert_eq!(select_all_reduce(6, 64 << 20, a, b), AllReduceAlgo::Ring);
    }

    #[test]
    fn single_worker_is_identity() {
        let (_c, servers) = workers(1);
        let t = Tensor::from_f64([3], vec![1.0, 2.0, 3.0]).unwrap();
        let r = ring_all_reduce(&servers[0], &group(1), 0, t.clone(), None).unwrap();
        assert_eq!(r.as_f64().unwrap(), t.as_f64().unwrap());
    }

    #[test]
    fn bad_membership_rejected() {
        let (_c, servers) = workers(2);
        let t = Tensor::from_f64([2], vec![0.0, 0.0]).unwrap();
        assert!(ring_all_reduce(&servers[0], &group(2), 5, t.clone(), None).is_err());
        let m = Tensor::zeros(tfhpc_tensor::DType::F64, [2, 2]);
        assert!(ring_all_reduce(&servers[0], &group(2), 0, m, None).is_err());
    }

    type RingResult = Result<(Tensor, Vec<TaskKey>)>;

    #[test]
    fn straggler_is_ejected_and_ring_reforms_in_sim() {
        let sim = tfhpc_sim::des::Sim::new();
        let (_c, servers) = workers(3);
        let g = group(3);
        let m = Arc::new(Membership::new(0.01, 0.05));
        let opts = ResilientRingOptions {
            recv_timeout_s: 0.1,
            max_reforms: 2,
        };
        let results: Arc<parking_lot::Mutex<Vec<Option<RingResult>>>> =
            Arc::new(parking_lot::Mutex::new(vec![None, None, None]));
        for (i, s) in servers.iter().enumerate() {
            let s = Arc::clone(s);
            let g2 = g.clone();
            let m2 = Arc::clone(&m);
            let opts2 = opts.clone();
            let results2 = Arc::clone(&results);
            sim.spawn(&format!("w{i}"), move || {
                let me = tfhpc_sim::des::current().unwrap();
                if i == 2 {
                    // The straggler: frozen for a full virtual second
                    // before it even reaches the collective.
                    me.advance(1.0);
                }
                let v: Vec<f64> = (0..6).map(|k| (i * 10 + k) as f64).collect();
                let t = Tensor::from_f64([6], v).unwrap();
                let r = ring_all_reduce_resilient(&s, &g2, &g2[i], t, None, &m2, &opts2);
                results2.lock()[i] = Some(r);
            });
        }
        sim.run();
        let results = results.lock();
        // Workers 0 and 1 eject the straggler and reduce over the
        // survivor pair, bit-exactly.
        let expected: Vec<f64> = (0..6).map(|k| (k + (10 + k)) as f64).collect();
        for r in results.iter().take(2) {
            let (t, survivors) = r.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(t.as_f64().unwrap(), &expected[..]);
            assert_eq!(survivors, &g[..2]);
        }
        // The straggler observes its own verdict.
        let err = results[2].as_ref().unwrap().as_ref().unwrap_err();
        assert!(matches!(err, CoreError::Aborted(_)), "{err}");
        assert!(m.is_dead(&g[2]));
    }

    #[test]
    fn straggler_is_ejected_in_real_threads() {
        let (_c, servers) = workers(3);
        let g = group(3);
        // Generous wall-clock margins so a descheduled CI thread is
        // not mistaken for the straggler.
        let m = Arc::new(Membership::new(0.02, 0.6));
        let opts = ResilientRingOptions {
            recv_timeout_s: 0.8,
            max_reforms: 2,
        };
        let mut handles = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            let g2 = g.clone();
            let m2 = Arc::clone(&m);
            let opts2 = opts.clone();
            handles.push(std::thread::spawn(move || {
                if i == 2 {
                    std::thread::sleep(std::time::Duration::from_millis(3000));
                }
                let t = Tensor::from_f64([4], vec![i as f64; 4]).unwrap();
                ring_all_reduce_resilient(&s, &g2, &g2[i], t, None, &m2, &opts2)
            }));
        }
        let results: Vec<RingResult> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in results.iter().take(2) {
            let (t, survivors) = r.as_ref().unwrap();
            assert_eq!(t.as_f64().unwrap(), &[1.0; 4]);
            assert_eq!(survivors.len(), 2);
        }
        let err = results[2].as_ref().unwrap_err();
        assert!(matches!(err, CoreError::Aborted(_)), "{err}");
    }

    #[test]
    fn resilient_ring_matches_plain_ring_when_healthy() {
        let (_c, servers) = workers(4);
        let g = group(4);
        let m = Arc::new(Membership::new(0.05, 5.0));
        let opts = ResilientRingOptions::default();
        let mut handles = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            let g2 = g.clone();
            let m2 = Arc::clone(&m);
            let opts2 = opts.clone();
            handles.push(std::thread::spawn(move || {
                let v: Vec<f64> = (0..10).map(|k| (i * 10 + k) as f64).collect();
                let t = Tensor::from_f64([10], v).unwrap();
                ring_all_reduce_resilient(&s, &g2, &g2[i], t, None, &m2, &opts2)
            }));
        }
        let expected: Vec<f64> = (0..10)
            .map(|k| (0..4).map(|i| (i * 10 + k) as f64).sum())
            .collect();
        for h in handles {
            let (t, survivors) = h.join().unwrap().unwrap();
            assert_eq!(t.as_f64().unwrap(), &expected[..]);
            assert_eq!(survivors.len(), 4);
        }
    }
}
