//! Ring all-reduce — the Horovod-style collective §VIII points to as
//! the fix for the parameter-server model's scalability limits ("Uber's
//! Horovod and Cray's Machine Learning Plugin ... enable ... MPI like
//! interfaces ... for functions such as allreduce without needing the
//! use of dedicated servers").
//!
//! Each of `P` workers contributes a same-shape vector; after the call
//! every worker holds the elementwise sum. The ring moves `2(P−1)`
//! chunk messages per worker of `n/P` elements each, so per-worker
//! traffic is `~2n` *independent of P* — versus the queue-pair reducer
//! where the central task receives and sends `P·n` elements per round.
//! The `ablation_allreduce` harness (A5) measures exactly that
//! asymmetry on the simulated clusters.

use crate::cluster_spec::TaskKey;
use crate::server::Server;
use std::sync::Arc;
use tfhpc_core::{CoreError, Result};
use tfhpc_tensor::{ops, Tensor};

/// Balanced chunk boundaries: `n` elements into `parts` ranges.
fn chunk_bounds(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

fn ring_queue(step_kind: &str, to: usize) -> String {
    format!("ring.{step_kind}.{to}")
}

/// Participate in a ring all-reduce (sum) over `group`.
///
/// `my` is this worker's index in `group`; `value` must be a rank-1
/// tensor of identical length on every participant. Blocks until the
/// reduction completes; returns the full reduced vector.
pub fn ring_all_reduce(
    worker: &Arc<Server>,
    group: &[TaskKey],
    my: usize,
    value: Tensor,
    gpu: Option<usize>,
) -> Result<Tensor> {
    let p = group.len();
    if p == 0 || my >= p {
        return Err(CoreError::Invalid(format!(
            "bad ring membership: {my} of {p}"
        )));
    }
    if value.shape().rank() != 1 {
        return Err(CoreError::Invalid(
            "ring_all_reduce expects rank-1 tensors".into(),
        ));
    }
    if p == 1 {
        return Ok(value);
    }
    let n = value.num_elements();
    let bounds = chunk_bounds(n, p);
    let right = (my + 1) % p;
    let cluster = worker.cluster();
    let right_server = cluster.server(&group[right])?;

    // My queue must exist before my left neighbour pushes into it.
    worker
        .resources
        .get_or_create_queue(&ring_queue("rs", my), 2);
    worker
        .resources
        .get_or_create_queue(&ring_queue("ag", my), 2);

    let mut chunks: Vec<Tensor> = bounds
        .iter()
        .map(|(s, e)| value.slice_range(*s, *e))
        .collect::<std::result::Result<_, _>>()?;

    let send = |kind: &str, chunk: Tensor| -> Result<()> {
        // Receiver-side queue (created on demand so arrival order
        // between ring members does not matter).
        let q = right_server
            .resources
            .get_or_create_queue(&ring_queue(kind, right), 2);
        worker.charge_transfer_to(&right_server, gpu, None, chunk.byte_size() as u64);
        q.enqueue(vec![chunk])
    };
    let recv = |kind: &str| -> Result<Tensor> {
        let q = worker
            .resources
            .get_or_create_queue(&ring_queue(kind, my), 2);
        let tuple = q.dequeue()?;
        tuple
            .into_iter()
            .next()
            .ok_or_else(|| CoreError::Invalid("empty ring message".into()))
    };

    // Phase 1 — reduce-scatter: after P−1 steps, chunk (my+1) mod P
    // holds the full sum at this worker.
    for step in 0..p - 1 {
        let send_idx = (my + p - step) % p;
        let recv_idx = (my + p - step - 1) % p;
        send("rs", chunks[send_idx].clone())?;
        let incoming = recv("rs")?;
        chunks[recv_idx] = ops::add(&chunks[recv_idx], &incoming)?;
    }

    // Phase 2 — all-gather: circulate the finished chunks.
    for step in 0..p - 1 {
        let send_idx = (my + 1 + p - step) % p;
        let recv_idx = (my + p - step) % p;
        send("ag", chunks[send_idx].clone())?;
        chunks[recv_idx] = recv("ag")?;
    }

    Tensor::concat_vecs(&chunks).map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_spec::ClusterSpec;
    use crate::server::TfCluster;
    use tfhpc_sim::net::Protocol;

    fn workers(p: usize) -> (Arc<TfCluster>, Vec<Arc<Server>>) {
        let spec = ClusterSpec::new([(
            "worker".to_string(),
            (0..p).map(|i| format!("n{i}:8888")).collect(),
        )]);
        let c = TfCluster::new(spec, Protocol::Rdma, None);
        let servers = (0..p)
            .map(|i| c.start_server(TaskKey::new("worker", i), i, vec![0]))
            .collect();
        (c, servers)
    }

    fn group(p: usize) -> Vec<TaskKey> {
        (0..p).map(|i| TaskKey::new("worker", i)).collect()
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        assert_eq!(chunk_bounds(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(chunk_bounds(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(chunk_bounds(2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
    }

    fn run_ring(p: usize, n: usize) {
        let (_c, servers) = workers(p);
        let g = group(p);
        let mut handles = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                let v: Vec<f64> = (0..n).map(|k| (i * n + k) as f64).collect();
                let t = Tensor::from_f64([n], v).unwrap();
                ring_all_reduce(&s, &g, i, t, None).unwrap()
            }));
        }
        let results: Vec<Tensor> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Expected sum at element k: sum_i (i*n + k).
        let base: f64 = (0..p).map(|i| (i * n) as f64).sum();
        for r in &results {
            let rv = r.as_f64().unwrap();
            assert_eq!(rv.len(), n);
            for (k, x) in rv.iter().enumerate() {
                assert_eq!(*x, base + (p * k) as f64, "element {k}");
            }
        }
    }

    #[test]
    fn two_worker_ring() {
        run_ring(2, 8);
    }

    #[test]
    fn four_worker_ring_uneven_chunks() {
        run_ring(4, 10); // 10 % 4 != 0
    }

    #[test]
    fn eight_worker_ring() {
        run_ring(8, 64);
    }

    #[test]
    fn single_worker_is_identity() {
        let (_c, servers) = workers(1);
        let t = Tensor::from_f64([3], vec![1.0, 2.0, 3.0]).unwrap();
        let r = ring_all_reduce(&servers[0], &group(1), 0, t.clone(), None).unwrap();
        assert_eq!(r.as_f64().unwrap(), t.as_f64().unwrap());
    }

    #[test]
    fn bad_membership_rejected() {
        let (_c, servers) = workers(2);
        let t = Tensor::from_f64([2], vec![0.0, 0.0]).unwrap();
        assert!(ring_all_reduce(&servers[0], &group(2), 5, t.clone(), None).is_err());
        let m = Tensor::zeros(tfhpc_tensor::DType::F64, [2, 2]);
        assert!(ring_all_reduce(&servers[0], &group(2), 0, m, None).is_err());
    }
}
