//! Ring all-reduce — the Horovod-style collective §VIII points to as
//! the fix for the parameter-server model's scalability limits ("Uber's
//! Horovod and Cray's Machine Learning Plugin ... enable ... MPI like
//! interfaces ... for functions such as allreduce without needing the
//! use of dedicated servers").
//!
//! Each of `P` workers contributes a same-shape vector; after the call
//! every worker holds the elementwise sum. The ring moves `2(P−1)`
//! chunk messages per worker of `n/P` elements each, so per-worker
//! traffic is `~2n` *independent of P* — versus the queue-pair reducer
//! where the central task receives and sends `P·n` elements per round.
//! The `ablation_allreduce` harness (A5) measures exactly that
//! asymmetry on the simulated clusters.

use crate::cluster_spec::TaskKey;
use crate::membership::Membership;
use crate::server::Server;
use std::sync::Arc;
use tfhpc_core::{CoreError, Result};
use tfhpc_tensor::{ops, Tensor};

/// Balanced chunk boundaries: `n` elements into `parts` ranges.
fn chunk_bounds(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

fn ring_queue(step_kind: &str, to: usize) -> String {
    format!("ring.{step_kind}.{to}")
}

/// Participate in a ring all-reduce (sum) over `group`.
///
/// `my` is this worker's index in `group`; `value` must be a rank-1
/// tensor of identical length on every participant. Blocks until the
/// reduction completes; returns the full reduced vector.
pub fn ring_all_reduce(
    worker: &Arc<Server>,
    group: &[TaskKey],
    my: usize,
    value: Tensor,
    gpu: Option<usize>,
) -> Result<Tensor> {
    let p = group.len();
    if p == 0 || my >= p {
        return Err(CoreError::Invalid(format!(
            "bad ring membership: {my} of {p}"
        )));
    }
    if value.shape().rank() != 1 {
        return Err(CoreError::Invalid(
            "ring_all_reduce expects rank-1 tensors".into(),
        ));
    }
    if p == 1 {
        return Ok(value);
    }
    let n = value.num_elements();
    let bounds = chunk_bounds(n, p);
    let right = (my + 1) % p;
    let cluster = worker.cluster();
    let right_server = cluster.server(&group[right])?;

    // My queue must exist before my left neighbour pushes into it.
    worker
        .resources
        .get_or_create_queue(&ring_queue("rs", my), 2);
    worker
        .resources
        .get_or_create_queue(&ring_queue("ag", my), 2);

    let mut chunks: Vec<Tensor> = bounds
        .iter()
        .map(|(s, e)| value.slice_range(*s, *e))
        .collect::<std::result::Result<_, _>>()?;

    let send = |kind: &str, chunk: Tensor| -> Result<()> {
        // Receiver-side queue (created on demand so arrival order
        // between ring members does not matter).
        let q = right_server
            .resources
            .get_or_create_queue(&ring_queue(kind, right), 2);
        worker.charge_transfer_to(&right_server, gpu, None, chunk.byte_size() as u64);
        q.enqueue(vec![chunk])
    };
    let recv = |kind: &str| -> Result<Tensor> {
        let q = worker
            .resources
            .get_or_create_queue(&ring_queue(kind, my), 2);
        let tuple = q.dequeue()?;
        tuple
            .into_iter()
            .next()
            .ok_or_else(|| CoreError::Invalid("empty ring message".into()))
    };

    // Phase 1 — reduce-scatter: after P−1 steps, chunk (my+1) mod P
    // holds the full sum at this worker.
    for step in 0..p - 1 {
        let send_idx = (my + p - step) % p;
        let recv_idx = (my + p - step - 1) % p;
        send("rs", chunks[send_idx].clone())?;
        let incoming = recv("rs")?;
        chunks[recv_idx] = ops::add(&chunks[recv_idx], &incoming)?;
    }

    // Phase 2 — all-gather: circulate the finished chunks.
    for step in 0..p - 1 {
        let send_idx = (my + 1 + p - step) % p;
        let recv_idx = (my + p - step) % p;
        send("ag", chunks[send_idx].clone())?;
        chunks[recv_idx] = recv("ag")?;
    }

    Tensor::concat_vecs(&chunks).map_err(CoreError::from)
}

/// Tuning for [`ring_all_reduce_resilient`].
#[derive(Debug, Clone)]
pub struct ResilientRingOptions {
    /// Total seconds a member waits on one ring receive before
    /// declaring the round stalled and sweeping the membership table.
    pub recv_timeout_s: f64,
    /// How many times the ring may re-form over survivors before the
    /// reduction gives up with `DeadlineExceeded`.
    pub max_reforms: usize,
}

impl Default for ResilientRingOptions {
    fn default() -> Self {
        ResilientRingOptions {
            recv_timeout_s: 1.0,
            max_reforms: 2,
        }
    }
}

fn resilient_queue(round: usize, step_kind: &str, to: usize) -> String {
    format!("ring.r{round}.{step_kind}.{to}")
}

/// One attempt at a full ring round over `members` (round-scoped
/// queues). While parked on a receive, the member keeps heartbeating
/// `membership` in short ticks so a stalled ring never makes *healthy*
/// members look silent — only the actual straggler misses deadlines.
#[allow(clippy::too_many_arguments)]
fn resilient_round(
    worker: &Arc<Server>,
    members: &[TaskKey],
    my: usize,
    my_key: &TaskKey,
    round: usize,
    value: &Tensor,
    gpu: Option<usize>,
    membership: &Membership,
    opts: &ResilientRingOptions,
) -> Result<Tensor> {
    let p = members.len();
    if p == 1 {
        return Ok(value.clone());
    }
    let n = value.num_elements();
    let bounds = chunk_bounds(n, p);
    let right = (my + 1) % p;
    let cluster = worker.try_cluster()?;
    let right_server = cluster.server(&members[right])?;
    // Capacity 2p: a member can run at most a phase ahead of a slow
    // neighbour, so sends never block (only receives can stall).
    let cap = 2 * p;
    worker
        .resources
        .get_or_create_queue(&resilient_queue(round, "rs", my), cap);
    worker
        .resources
        .get_or_create_queue(&resilient_queue(round, "ag", my), cap);

    let mut chunks: Vec<Tensor> = bounds
        .iter()
        .map(|(s, e)| value.slice_range(*s, *e))
        .collect::<std::result::Result<_, _>>()?;

    let tick = membership.period_s().max(1e-4);
    let send = |kind: &str, chunk: Tensor| -> Result<()> {
        membership.beat(my_key, tfhpc_obs::now_seconds());
        let q = right_server
            .resources
            .get_or_create_queue(&resilient_queue(round, kind, right), cap);
        worker.charge_transfer_to(&right_server, gpu, None, chunk.byte_size() as u64);
        q.enqueue(vec![chunk])
    };
    let recv = |kind: &str| -> Result<Tensor> {
        let q = worker
            .resources
            .get_or_create_queue(&resilient_queue(round, kind, my), cap);
        let mut waited = 0.0;
        let tuple = loop {
            membership.beat(my_key, tfhpc_obs::now_seconds());
            match q.dequeue_timeout(tick) {
                Ok(tuple) => break tuple,
                Err(CoreError::DeadlineExceeded(_)) => {
                    waited += tick;
                    if waited + 1e-12 >= opts.recv_timeout_s {
                        return Err(CoreError::DeadlineExceeded(format!(
                            "ring round {round}: no chunk after {waited:.6}s"
                        )));
                    }
                }
                Err(e) => return Err(e),
            }
        };
        tuple
            .into_iter()
            .next()
            .ok_or_else(|| CoreError::Invalid("empty ring message".into()))
    };

    for step in 0..p - 1 {
        let send_idx = (my + p - step) % p;
        let recv_idx = (my + p - step - 1) % p;
        send("rs", chunks[send_idx].clone())?;
        let incoming = recv("rs")?;
        chunks[recv_idx] = ops::add(&chunks[recv_idx], &incoming)?;
    }
    for step in 0..p - 1 {
        let send_idx = (my + 1 + p - step) % p;
        let recv_idx = (my + p - step) % p;
        send("ag", chunks[send_idx].clone())?;
        chunks[recv_idx] = recv("ag")?;
    }
    Tensor::concat_vecs(&chunks).map_err(CoreError::from)
}

/// [`ring_all_reduce`] with straggler mitigation through the membership
/// plane.
///
/// Every participant calls this with the same `group` and `membership`.
/// When a receive stalls past `opts.recv_timeout_s`, the stalled member
/// sweeps the membership deadlines: members whose heartbeats went
/// silent are declared `Dead` and ejected, and the ring *re-forms over
/// the survivors* on round-scoped queues. An ejected member observes
/// its own verdict and returns `Aborted` — its contribution is dropped
/// from the reduction, which is the degradation (not correctness-
/// preserving averaging) mode of Horovod-style elastic collectives.
///
/// Returns the reduced tensor together with the member set it was
/// reduced over.
pub fn ring_all_reduce_resilient(
    worker: &Arc<Server>,
    group: &[TaskKey],
    my_key: &TaskKey,
    value: Tensor,
    gpu: Option<usize>,
    membership: &Membership,
    opts: &ResilientRingOptions,
) -> Result<(Tensor, Vec<TaskKey>)> {
    if value.shape().rank() != 1 {
        return Err(CoreError::Invalid(
            "ring_all_reduce expects rank-1 tensors".into(),
        ));
    }
    let now = tfhpc_obs::now_seconds();
    for k in group {
        membership.join(k, now);
    }
    let mut survivors: Vec<TaskKey> = group
        .iter()
        .filter(|k| !membership.is_dead(k))
        .cloned()
        .collect();
    let mut round = 0;
    let mut reforms = 0;
    loop {
        if membership.is_dead(my_key) {
            return Err(CoreError::Aborted(format!(
                "{my_key} ejected from ring by the failure detector"
            )));
        }
        let my = survivors
            .iter()
            .position(|k| k == my_key)
            .ok_or_else(|| CoreError::Invalid(format!("{my_key} is not a ring member")))?;
        match resilient_round(
            worker, &survivors, my, my_key, round, &value, gpu, membership, opts,
        ) {
            Ok(t) => return Ok((t, survivors)),
            Err(CoreError::DeadlineExceeded(what)) => {
                // Deadline-sweep the detector, then drop every member
                // it has declared dead. State (not edge) based, so all
                // stalled survivors converge on the same next ring.
                membership.sweep(tfhpc_obs::now_seconds());
                if membership.is_dead(my_key) {
                    return Err(CoreError::Aborted(format!(
                        "{my_key} ejected from ring by the failure detector"
                    )));
                }
                let next: Vec<TaskKey> = survivors
                    .iter()
                    .filter(|k| !membership.is_dead(k))
                    .cloned()
                    .collect();
                if next.len() == survivors.len() {
                    return Err(CoreError::DeadlineExceeded(format!(
                        "ring stalled with no detectable failure: {what}"
                    )));
                }
                reforms += 1;
                if reforms > opts.max_reforms {
                    return Err(CoreError::DeadlineExceeded(format!(
                        "ring re-formed {} times without completing",
                        reforms - 1
                    )));
                }
                tfhpc_obs::global()
                    .counter("tfhpc_ring_reforms_total")
                    .inc();
                survivors = next;
                round += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_spec::ClusterSpec;
    use crate::server::TfCluster;
    use tfhpc_sim::net::Protocol;

    fn workers(p: usize) -> (Arc<TfCluster>, Vec<Arc<Server>>) {
        let spec = ClusterSpec::new([(
            "worker".to_string(),
            (0..p).map(|i| format!("n{i}:8888")).collect(),
        )]);
        let c = TfCluster::new(spec, Protocol::Rdma, None);
        let servers = (0..p)
            .map(|i| c.start_server(TaskKey::new("worker", i), i, vec![0]))
            .collect();
        (c, servers)
    }

    fn group(p: usize) -> Vec<TaskKey> {
        (0..p).map(|i| TaskKey::new("worker", i)).collect()
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        assert_eq!(chunk_bounds(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(chunk_bounds(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(chunk_bounds(2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
    }

    fn run_ring(p: usize, n: usize) {
        let (_c, servers) = workers(p);
        let g = group(p);
        let mut handles = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                let v: Vec<f64> = (0..n).map(|k| (i * n + k) as f64).collect();
                let t = Tensor::from_f64([n], v).unwrap();
                ring_all_reduce(&s, &g, i, t, None).unwrap()
            }));
        }
        let results: Vec<Tensor> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Expected sum at element k: sum_i (i*n + k).
        let base: f64 = (0..p).map(|i| (i * n) as f64).sum();
        for r in &results {
            let rv = r.as_f64().unwrap();
            assert_eq!(rv.len(), n);
            for (k, x) in rv.iter().enumerate() {
                assert_eq!(*x, base + (p * k) as f64, "element {k}");
            }
        }
    }

    #[test]
    fn two_worker_ring() {
        run_ring(2, 8);
    }

    #[test]
    fn four_worker_ring_uneven_chunks() {
        run_ring(4, 10); // 10 % 4 != 0
    }

    #[test]
    fn eight_worker_ring() {
        run_ring(8, 64);
    }

    #[test]
    fn single_worker_is_identity() {
        let (_c, servers) = workers(1);
        let t = Tensor::from_f64([3], vec![1.0, 2.0, 3.0]).unwrap();
        let r = ring_all_reduce(&servers[0], &group(1), 0, t.clone(), None).unwrap();
        assert_eq!(r.as_f64().unwrap(), t.as_f64().unwrap());
    }

    #[test]
    fn bad_membership_rejected() {
        let (_c, servers) = workers(2);
        let t = Tensor::from_f64([2], vec![0.0, 0.0]).unwrap();
        assert!(ring_all_reduce(&servers[0], &group(2), 5, t.clone(), None).is_err());
        let m = Tensor::zeros(tfhpc_tensor::DType::F64, [2, 2]);
        assert!(ring_all_reduce(&servers[0], &group(2), 0, m, None).is_err());
    }

    type RingResult = Result<(Tensor, Vec<TaskKey>)>;

    #[test]
    fn straggler_is_ejected_and_ring_reforms_in_sim() {
        let sim = tfhpc_sim::des::Sim::new();
        let (_c, servers) = workers(3);
        let g = group(3);
        let m = Arc::new(Membership::new(0.01, 0.05));
        let opts = ResilientRingOptions {
            recv_timeout_s: 0.1,
            max_reforms: 2,
        };
        let results: Arc<parking_lot::Mutex<Vec<Option<RingResult>>>> =
            Arc::new(parking_lot::Mutex::new(vec![None, None, None]));
        for (i, s) in servers.iter().enumerate() {
            let s = Arc::clone(s);
            let g2 = g.clone();
            let m2 = Arc::clone(&m);
            let opts2 = opts.clone();
            let results2 = Arc::clone(&results);
            sim.spawn(&format!("w{i}"), move || {
                let me = tfhpc_sim::des::current().unwrap();
                if i == 2 {
                    // The straggler: frozen for a full virtual second
                    // before it even reaches the collective.
                    me.advance(1.0);
                }
                let v: Vec<f64> = (0..6).map(|k| (i * 10 + k) as f64).collect();
                let t = Tensor::from_f64([6], v).unwrap();
                let r = ring_all_reduce_resilient(&s, &g2, &g2[i], t, None, &m2, &opts2);
                results2.lock()[i] = Some(r);
            });
        }
        sim.run();
        let results = results.lock();
        // Workers 0 and 1 eject the straggler and reduce over the
        // survivor pair, bit-exactly.
        let expected: Vec<f64> = (0..6).map(|k| (k + (10 + k)) as f64).collect();
        for r in results.iter().take(2) {
            let (t, survivors) = r.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(t.as_f64().unwrap(), &expected[..]);
            assert_eq!(survivors, &g[..2]);
        }
        // The straggler observes its own verdict.
        let err = results[2].as_ref().unwrap().as_ref().unwrap_err();
        assert!(matches!(err, CoreError::Aborted(_)), "{err}");
        assert!(m.is_dead(&g[2]));
    }

    #[test]
    fn straggler_is_ejected_in_real_threads() {
        let (_c, servers) = workers(3);
        let g = group(3);
        // Generous wall-clock margins so a descheduled CI thread is
        // not mistaken for the straggler.
        let m = Arc::new(Membership::new(0.02, 0.6));
        let opts = ResilientRingOptions {
            recv_timeout_s: 0.8,
            max_reforms: 2,
        };
        let mut handles = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            let g2 = g.clone();
            let m2 = Arc::clone(&m);
            let opts2 = opts.clone();
            handles.push(std::thread::spawn(move || {
                if i == 2 {
                    std::thread::sleep(std::time::Duration::from_millis(3000));
                }
                let t = Tensor::from_f64([4], vec![i as f64; 4]).unwrap();
                ring_all_reduce_resilient(&s, &g2, &g2[i], t, None, &m2, &opts2)
            }));
        }
        let results: Vec<RingResult> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in results.iter().take(2) {
            let (t, survivors) = r.as_ref().unwrap();
            assert_eq!(t.as_f64().unwrap(), &[1.0; 4]);
            assert_eq!(survivors.len(), 2);
        }
        let err = results[2].as_ref().unwrap_err();
        assert!(matches!(err, CoreError::Aborted(_)), "{err}");
    }

    #[test]
    fn resilient_ring_matches_plain_ring_when_healthy() {
        let (_c, servers) = workers(4);
        let g = group(4);
        let m = Arc::new(Membership::new(0.05, 5.0));
        let opts = ResilientRingOptions::default();
        let mut handles = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            let g2 = g.clone();
            let m2 = Arc::clone(&m);
            let opts2 = opts.clone();
            handles.push(std::thread::spawn(move || {
                let v: Vec<f64> = (0..10).map(|k| (i * 10 + k) as f64).collect();
                let t = Tensor::from_f64([10], v).unwrap();
                ring_all_reduce_resilient(&s, &g2, &g2[i], t, None, &m2, &opts2)
            }));
        }
        let expected: Vec<f64> = (0..10)
            .map(|k| (0..4).map(|i| (i * 10 + k) as f64).sum())
            .collect();
        for h in handles {
            let (t, survivors) = h.join().unwrap().unwrap();
            assert_eq!(t.as_f64().unwrap(), &expected[..]);
            assert_eq!(survivors.len(), 4);
        }
    }
}
