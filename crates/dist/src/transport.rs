//! Pluggable transport models for the rendezvous/wire plane — the
//! paper's Fig. 7 axis (gRPC vs MPI vs Verbs RDMA) made selectable
//! per link instead of baked into the cluster protocol.
//!
//! Two models move a tensor between tasks:
//!
//! * [`Transport::StagedCopy`] — the gRPC-style path `wire.rs` has
//!   always modeled: serialize → frame → copy at each endpoint, with a
//!   CRC32C integrity check over the payload. On an RDMA cluster this
//!   is the "RPC on Verbs" configuration ("RPC Considered Harmful"):
//!   the wire itself runs at Verbs speed but both endpoints still pay
//!   a staging copy, charged at the platform's `serialize_gbs`.
//! * [`Transport::ZeroCopy`] — a one-sided RDMA-style handoff: the
//!   payload moves from the sender's registered buffer straight into
//!   the receiver's, with no endpoint staging and no software
//!   checksum (the NIC's link-layer check is modeled as free on the
//!   happy path). The DES charge always uses [`Protocol::Rdma`] costs
//!   regardless of the cluster protocol, and the fast-path integrity
//!   walk touches the registered pages without hashing them.
//!
//! Injected corruption windows are transport-independent: both models
//! fall back to the framed slow path in [`crate::wire`], detect the
//! bit flip, and retransmit — a zero-copy NIC still detects link
//! errors, it just never pays the software CRC in steady state.
//!
//! Selection, most-specific wins:
//! 1. a per-link override on the [`ClusterSpec`](crate::ClusterSpec)
//!    (`with_link_transport`),
//! 2. the spec-wide default (`with_default_transport`),
//! 3. the `TFHPC_TRANSPORT` env knob (resolved at cluster creation;
//!    strict parsing per the env-knob contract),
//! 4. the cluster protocol's natural default: Verbs RDMA links are
//!    zero-copy, gRPC/MPI links are staged-copy.
//!
//! The defaults reproduce the pre-transport modeled numbers exactly:
//! a `Protocol::Rdma` cluster already charged Verbs wire costs, and a
//! `Protocol::Grpc`/`Mpi` cluster already included its staging in the
//! path model.

use tfhpc_core::{CoreError, Result};
use tfhpc_sim::net::Protocol;

/// How bytes cross one inter-task link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transport {
    /// Two-sided RPC: serialize → frame → copy at each endpoint, with
    /// a software CRC32C integrity check (gRPC-style).
    StagedCopy,
    /// One-sided registered-buffer handoff at Verbs costs, with no
    /// endpoint staging and no software checksum (RDMA-style).
    ZeroCopy,
}

impl Transport {
    /// Metrics/bench label.
    pub fn name(self) -> &'static str {
        match self {
            Transport::StagedCopy => "staged",
            Transport::ZeroCopy => "zerocopy",
        }
    }

    /// The natural transport for a cluster protocol: Verbs RDMA links
    /// hand off zero-copy, gRPC/MPI links stage through RPC buffers.
    pub fn default_for(protocol: Protocol) -> Transport {
        match protocol {
            Protocol::Rdma => Transport::ZeroCopy,
            Protocol::Grpc | Protocol::Mpi => Transport::StagedCopy,
        }
    }

    /// The DES cost model this transport charges on a cluster running
    /// `cluster_protocol`: zero-copy always moves at Verbs costs;
    /// staged-copy moves at the cluster protocol's costs (its staging
    /// surcharge on Verbs wires is added separately by
    /// `charge_transfer_to`).
    pub fn wire_protocol(self, cluster_protocol: Protocol) -> Protocol {
        match self {
            Transport::ZeroCopy => Protocol::Rdma,
            Transport::StagedCopy => cluster_protocol,
        }
    }

    /// Parse a knob value (`staged`/`zerocopy`, with `staged-copy` /
    /// `zero-copy` aliases).
    pub fn parse(raw: &str) -> Result<Transport> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "staged" | "staged-copy" | "stagedcopy" => Ok(Transport::StagedCopy),
            "zerocopy" | "zero-copy" => Ok(Transport::ZeroCopy),
            _ => Err(CoreError::InvalidArgument(format!(
                "TFHPC_TRANSPORT=`{raw}` is not one of staged/zerocopy/auto"
            ))),
        }
    }
}

/// The `TFHPC_TRANSPORT` knob: unset or `auto` keeps per-link
/// resolution, otherwise forces one transport cluster-wide. Malformed
/// values are a loud error per the env-knob contract.
pub fn env_transport() -> Result<Option<Transport>> {
    match std::env::var("TFHPC_TRANSPORT") {
        Err(_) => Ok(None),
        Ok(raw) if raw.trim().eq_ignore_ascii_case("auto") => Ok(None),
        Ok(raw) => Transport::parse(&raw).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_defaults() {
        assert_eq!(Transport::default_for(Protocol::Rdma), Transport::ZeroCopy);
        assert_eq!(
            Transport::default_for(Protocol::Grpc),
            Transport::StagedCopy
        );
        assert_eq!(Transport::default_for(Protocol::Mpi), Transport::StagedCopy);
    }

    #[test]
    fn zero_copy_always_charges_verbs() {
        for p in [Protocol::Grpc, Protocol::Mpi, Protocol::Rdma] {
            assert_eq!(Transport::ZeroCopy.wire_protocol(p), Protocol::Rdma);
            assert_eq!(Transport::StagedCopy.wire_protocol(p), p);
        }
    }

    #[test]
    fn knob_parsing_is_strict() {
        assert_eq!(Transport::parse("staged").unwrap(), Transport::StagedCopy);
        assert_eq!(
            Transport::parse(" Zero-Copy ").unwrap(),
            Transport::ZeroCopy
        );
        assert!(matches!(
            Transport::parse("carrier-pigeon"),
            Err(CoreError::InvalidArgument(_))
        ));
    }
}
