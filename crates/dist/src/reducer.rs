//! The queue-pair reducer (paper Fig. 5).
//!
//! TensorFlow's parameter-server model has no collective reduction, so
//! the paper builds one from queues: workers push partial values into
//! the reducer's *incoming* queue and block on an *outgoing* queue; the
//! reducer pops one partial per worker, applies the reduction, then
//! pushes one copy of the result per worker. We split the outgoing side
//! into one queue per worker: with a single shared outgoing queue a
//! fast worker's next-round dequeue can steal a slow worker's copy of
//! the previous round (TensorFlow's `SyncReplicasOptimizer` avoids the
//! same race by tagging its token queue with the global step).

use crate::cluster_spec::TaskKey;
use crate::server::Server;
use std::sync::Arc;
use tfhpc_core::{CoreError, Result};
use tfhpc_sim::device::{Cost, KernelClass};
use tfhpc_tensor::{ops, Tensor};

/// Per-round software overhead on the reducer: its own `session.run`
/// dispatch plus Python-side queue handling (GIL'd QueueRunners — the
/// §VIII limitation). Dominates CG iterations at high worker counts and
/// produces the strong-scaling saturation of Fig. 10.
pub const ROUND_OVERHEAD_S: f64 = 1.2e-3;

/// Reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise max (scalar tensors).
    Max,
}

/// Server-side reduction service over a queue pair.
pub struct Reducer {
    server: Arc<Server>,
    name: String,
    n_workers: usize,
    op: ReduceOp,
}

impl Reducer {
    /// Create the reducer's queue pair (`<name>.in`, `<name>.out`) on
    /// `server` and return the service handle.
    pub fn new(server: Arc<Server>, name: &str, n_workers: usize, op: ReduceOp) -> Reducer {
        assert!(n_workers > 0);
        server
            .resources
            .create_queue(&format!("{name}.in"), n_workers.max(1) * 2);
        for w in 0..n_workers {
            server.resources.create_queue(&format!("{name}.out.{w}"), 2);
        }
        Reducer {
            server,
            name: name.to_string(),
            n_workers,
            op,
        }
    }

    fn reduce(&self, values: Vec<Tensor>) -> Result<Tensor> {
        let mut it = values.into_iter();
        let mut acc = it
            .next()
            .ok_or_else(|| CoreError::Invalid("reduce of zero values".into()))?;
        for v in it {
            acc = match self.op {
                ReduceOp::Sum => ops::add(&acc, &v)?,
                ReduceOp::Max => {
                    let a = acc.scalar_value_f64()?;
                    let b = v.scalar_value_f64()?;
                    Tensor::scalar_f64(a.max(b))
                }
            };
        }
        Ok(acc)
    }

    /// Serve one reduction round: collect `n_workers` partials, reduce,
    /// broadcast `n_workers` copies.
    pub fn serve_round(&self) -> Result<()> {
        if let Some(me) = tfhpc_sim::des::current() {
            me.advance(ROUND_OVERHEAD_S);
        }
        let in_q = self.server.resources.queue(&format!("{}.in", self.name))?;
        let mut partials = Vec::with_capacity(self.n_workers);
        for _ in 0..self.n_workers {
            let tuple = in_q.dequeue()?;
            partials.push(
                tuple
                    .into_iter()
                    .next()
                    .ok_or_else(|| CoreError::Invalid("reducer received an empty tuple".into()))?,
            );
        }
        // The reduction itself runs on the reducer's host CPU.
        let bytes: f64 = partials.iter().map(|t| t.byte_size() as f64).sum();
        let flops: f64 = partials.iter().map(|t| t.num_elements() as f64).sum();
        let reduced = self.reduce(partials)?;
        self.server.devices.charge_kernel(
            tfhpc_core::Placement::Cpu,
            &Cost {
                flops,
                bytes,
                class: KernelClass::Blas1,
            },
            true,
        );
        for w in 0..self.n_workers {
            self.server
                .resources
                .queue(&format!("{}.out.{w}", self.name))?
                .enqueue(vec![reduced.clone()])?;
        }
        Ok(())
    }

    /// Serve `rounds` reduction rounds.
    pub fn serve(&self, rounds: usize) -> Result<()> {
        for _ in 0..rounds {
            self.serve_round()?;
        }
        Ok(())
    }

    /// Serve until the incoming queue is closed; returns rounds served.
    pub fn serve_until_closed(&self) -> Result<usize> {
        let mut rounds = 0;
        loop {
            match self.serve_round() {
                Ok(()) => rounds += 1,
                Err(CoreError::QueueClosed(_)) => return Ok(rounds),
                Err(e) => return Err(e),
            }
        }
    }

    /// Close the reducer's queues (shutdown).
    pub fn close(&self) -> Result<()> {
        self.server
            .resources
            .queue(&format!("{}.in", self.name))?
            .close();
        for w in 0..self.n_workers {
            self.server
                .resources
                .queue(&format!("{}.out.{w}", self.name))?
                .close();
        }
        Ok(())
    }
}

/// Worker-side participation in one reduction round: send `value` into
/// the reducer's incoming queue, block on the outgoing queue, return
/// the reduced value (paper Fig. 5's workflow).
pub fn worker_all_reduce(
    worker: &Arc<Server>,
    reducer: &TaskKey,
    name: &str,
    worker_index: usize,
    value: Tensor,
    gpu: Option<usize>,
) -> Result<Tensor> {
    worker.remote_enqueue(reducer, &format!("{name}.in"), vec![value], gpu)?;
    let tuple = worker.remote_dequeue(reducer, &format!("{name}.out.{worker_index}"), gpu)?;
    tuple
        .into_iter()
        .next()
        .ok_or_else(|| CoreError::Invalid("empty reduction result".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_spec::ClusterSpec;
    use crate::server::TfCluster;
    use tfhpc_sim::net::Protocol;

    fn cluster(n_workers: usize) -> (Arc<TfCluster>, Arc<Server>, Vec<Arc<Server>>) {
        let spec = ClusterSpec::new([
            ("reducer".to_string(), vec!["a:8888".to_string()]),
            (
                "worker".to_string(),
                (0..n_workers).map(|i| format!("b{i}:8888")).collect(),
            ),
        ]);
        let c = TfCluster::new(spec, Protocol::Rdma, None);
        let red = c.start_server(TaskKey::new("reducer", 0), 0, vec![]);
        let workers = (0..n_workers)
            .map(|i| c.start_server(TaskKey::new("worker", i), 1 + i, vec![0]))
            .collect();
        (c, red, workers)
    }

    #[test]
    fn sum_reduction_across_threads() {
        let (_c, red, workers) = cluster(3);
        let reducer = Reducer::new(Arc::clone(&red), "r", 3, ReduceOp::Sum);
        let svc = std::thread::spawn(move || reducer.serve(2).unwrap());
        let mut handles = Vec::new();
        for (i, w) in workers.into_iter().enumerate() {
            handles.push(std::thread::spawn(move || {
                let key = TaskKey::new("reducer", 0);
                let r1 =
                    worker_all_reduce(&w, &key, "r", i, Tensor::scalar_f64((i + 1) as f64), None)
                        .unwrap();
                assert_eq!(r1.scalar_value_f64().unwrap(), 6.0);
                let r2 =
                    worker_all_reduce(&w, &key, "r", i, Tensor::scalar_f64(10.0), None).unwrap();
                assert_eq!(r2.scalar_value_f64().unwrap(), 30.0);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        svc.join().unwrap();
    }

    #[test]
    fn max_reduction() {
        let (_c, red, workers) = cluster(2);
        let reducer = Reducer::new(Arc::clone(&red), "m", 2, ReduceOp::Max);
        let svc = std::thread::spawn(move || reducer.serve(1).unwrap());
        let mut handles = Vec::new();
        for (i, w) in workers.into_iter().enumerate() {
            handles.push(std::thread::spawn(move || {
                let key = TaskKey::new("reducer", 0);
                let r = worker_all_reduce(&w, &key, "m", i, Tensor::scalar_f64(i as f64), None)
                    .unwrap();
                assert_eq!(r.scalar_value_f64().unwrap(), 1.0);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        svc.join().unwrap();
    }

    #[test]
    fn vector_sum_reduction() {
        let (_c, red, workers) = cluster(2);
        let reducer = Reducer::new(Arc::clone(&red), "v", 2, ReduceOp::Sum);
        let svc = std::thread::spawn(move || reducer.serve(1).unwrap());
        let mut handles = Vec::new();
        for (i, w) in workers.into_iter().enumerate() {
            handles.push(std::thread::spawn(move || {
                let key = TaskKey::new("reducer", 0);
                let v = Tensor::from_f64([3], vec![1.0, 2.0, 3.0]).unwrap();
                let r = worker_all_reduce(&w, &key, "v", i, v, None).unwrap();
                assert_eq!(r.as_f64().unwrap(), &[2.0, 4.0, 6.0]);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        svc.join().unwrap();
    }

    #[test]
    fn close_unblocks_service_loop() {
        let (_c, red, _workers) = cluster(2);
        let reducer = Arc::new(Reducer::new(Arc::clone(&red), "c", 2, ReduceOp::Sum));
        let r2 = Arc::clone(&reducer);
        let svc = std::thread::spawn(move || r2.serve_until_closed().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        reducer.close().unwrap();
        assert_eq!(svc.join().unwrap(), 0);
    }
}
