//! The queue-pair reducer (paper Fig. 5).
//!
//! TensorFlow's parameter-server model has no collective reduction, so
//! the paper builds one from queues: workers push partial values into
//! the reducer's *incoming* queue and block on an *outgoing* queue; the
//! reducer pops one partial per worker, applies the reduction, then
//! pushes one copy of the result per worker. We split the outgoing side
//! into one queue per worker: with a single shared outgoing queue a
//! fast worker's next-round dequeue can steal a slow worker's copy of
//! the previous round (TensorFlow's `SyncReplicasOptimizer` avoids the
//! same race by tagging its token queue with the global step).
//!
//! ## Fixed reduction-order contract
//!
//! Floating-point reduction is not associative, so the *order* in which
//! partials are combined is part of the result. Every reduction in this
//! crate — the central reducer here and the ring/tree/RHD collectives
//! in [`crate::collective`] — combines partials in **canonical binomial
//! order** over worker indices ([`canonical_reduce`]): blocks
//! `[a, a+2^k)` and `[a+2^k, min(a+2^{k+1}, P))` are combined
//! lower-index-block first, level by level. Partials arriving out of
//! order are slotted by their worker-index tag before folding, so the
//! result is a pure function of the contributed values — independent of
//! arrival order, thread scheduling, and which algorithm moved the
//! bytes. This is what makes ring, tree, recursive halving-doubling and
//! the queue-pair reducer bit-identical to each other (pinned by
//! `tests/collectives.rs`).

use crate::cluster_spec::TaskKey;
use crate::server::Server;
use std::sync::Arc;
use tfhpc_core::{CoreError, Result};
use tfhpc_sim::device::{Cost, KernelClass};
use tfhpc_tensor::{ops, Tensor};

/// Per-round software overhead on the reducer: its own `session.run`
/// dispatch plus Python-side queue handling (GIL'd QueueRunners — the
/// §VIII limitation). Dominates CG iterations at high worker counts and
/// produces the strong-scaling saturation of Fig. 10.
pub const ROUND_OVERHEAD_S: f64 = 1.2e-3;

/// Reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise max (IEEE semantics: NaN yields the other operand).
    Max,
    /// Elementwise min (IEEE semantics: NaN yields the other operand).
    Min,
}

impl ReduceOp {
    /// Short name for metrics labels and bench output.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Max => "max",
            ReduceOp::Min => "min",
        }
    }

    /// Combine two same-shape partials. This is the *only* pairwise
    /// combine the reduction planes use; all orderings above it are
    /// fixed by [`canonical_reduce`].
    pub fn combine(self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let t = match self {
            ReduceOp::Sum => ops::add(a, b)?,
            ReduceOp::Max => ops::maximum(a, b)?,
            ReduceOp::Min => ops::minimum(a, b)?,
        };
        Ok(t)
    }
}

/// Fold `parts[0..P]` (one partial per worker index) in canonical
/// binomial order: level by level, combine block `[a, a+2^k)` with
/// block `[a+2^k, min(a+2^{k+1}, P))`, lower-index block as the left
/// operand. This is the reduction-order contract every collective
/// reproduces on the wire; folding here (with all partials in hand)
/// defines the reference bits.
pub fn canonical_reduce(op: ReduceOp, parts: Vec<Tensor>) -> Result<Tensor> {
    let p = parts.len();
    if p == 0 {
        return Err(CoreError::Invalid("reduce of zero values".into()));
    }
    let mut slots: Vec<Option<Tensor>> = parts.into_iter().map(Some).collect();
    let mut width = 1;
    while width < p {
        let mut a = 0;
        while a + width < p {
            let hi = slots[a + width].take().expect("binomial slot consumed");
            let lo = slots[a].take().expect("binomial slot consumed");
            slots[a] = Some(op.combine(&lo, &hi)?);
            a += 2 * width;
        }
        width *= 2;
    }
    Ok(slots[0].take().expect("binomial root"))
}

/// Server-side reduction service over a queue pair.
pub struct Reducer {
    server: Arc<Server>,
    name: String,
    n_workers: usize,
    op: ReduceOp,
}

impl Reducer {
    /// Create the reducer's queue pair (`<name>.in`, `<name>.out`) on
    /// `server` and return the service handle.
    pub fn new(server: Arc<Server>, name: &str, n_workers: usize, op: ReduceOp) -> Reducer {
        assert!(n_workers > 0);
        server
            .resources
            .create_queue(&format!("{name}.in"), n_workers.max(1) * 2);
        for w in 0..n_workers {
            server.resources.create_queue(&format!("{name}.out.{w}"), 2);
        }
        Reducer {
            server,
            name: name.to_string(),
            n_workers,
            op,
        }
    }

    /// Serve one reduction round: collect `n_workers` tagged partials,
    /// slot them by worker index, fold in canonical binomial order,
    /// broadcast `n_workers` copies. The result is independent of
    /// arrival order (see the module docs).
    pub fn serve_round(&self) -> Result<()> {
        if let Some(me) = tfhpc_sim::des::current() {
            me.advance(ROUND_OVERHEAD_S);
        }
        let in_q = self.server.resources.queue(&format!("{}.in", self.name))?;
        let mut slots: Vec<Option<Tensor>> = vec![None; self.n_workers];
        for _ in 0..self.n_workers {
            let mut tuple = in_q.dequeue()?.into_iter();
            let (tag, value) = match (tuple.next(), tuple.next()) {
                (Some(tag), Some(value)) => (tag, value),
                _ => {
                    return Err(CoreError::Invalid(
                        "reducer expects [worker_index, partial] tuples".into(),
                    ))
                }
            };
            let w = tag.scalar_value_i64()? as usize;
            if w >= self.n_workers {
                return Err(CoreError::Invalid(format!(
                    "reducer partial tagged for worker {w} of {}",
                    self.n_workers
                )));
            }
            if slots[w].replace(value).is_some() {
                return Err(CoreError::Invalid(format!(
                    "reducer received two partials from worker {w} in one round"
                )));
            }
        }
        let partials: Vec<Tensor> = slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect();
        // The reduction itself runs on the reducer's host CPU.
        let bytes: f64 = partials.iter().map(|t| t.byte_size() as f64).sum();
        let flops: f64 = partials.iter().map(|t| t.num_elements() as f64).sum();
        let reduced = canonical_reduce(self.op, partials)?;
        self.server.devices.charge_kernel(
            tfhpc_core::Placement::Cpu,
            &Cost {
                flops,
                bytes,
                class: KernelClass::Blas1,
            },
            true,
        );
        for w in 0..self.n_workers {
            self.server
                .resources
                .queue(&format!("{}.out.{w}", self.name))?
                .enqueue(vec![reduced.clone()])?;
        }
        Ok(())
    }

    /// Serve `rounds` reduction rounds.
    pub fn serve(&self, rounds: usize) -> Result<()> {
        for _ in 0..rounds {
            self.serve_round()?;
        }
        Ok(())
    }

    /// Serve until the incoming queue is closed; returns rounds served.
    pub fn serve_until_closed(&self) -> Result<usize> {
        let mut rounds = 0;
        loop {
            match self.serve_round() {
                Ok(()) => rounds += 1,
                Err(CoreError::QueueClosed(_)) => return Ok(rounds),
                Err(e) => return Err(e),
            }
        }
    }

    /// Close the reducer's queues (shutdown).
    pub fn close(&self) -> Result<()> {
        self.server
            .resources
            .queue(&format!("{}.in", self.name))?
            .close();
        for w in 0..self.n_workers {
            self.server
                .resources
                .queue(&format!("{}.out.{w}", self.name))?
                .close();
        }
        Ok(())
    }
}

/// Worker-side participation in one reduction round: send the
/// index-tagged `value` into the reducer's incoming queue, block on the
/// outgoing queue, return the reduced value (paper Fig. 5's workflow).
/// The tag lets the reducer fold partials in canonical order no matter
/// how worker arrivals interleave.
pub fn worker_all_reduce(
    worker: &Arc<Server>,
    reducer: &TaskKey,
    name: &str,
    worker_index: usize,
    value: Tensor,
    gpu: Option<usize>,
) -> Result<Tensor> {
    worker.remote_enqueue(
        reducer,
        &format!("{name}.in"),
        vec![Tensor::scalar_i64(worker_index as i64), value],
        gpu,
    )?;
    let tuple = worker.remote_dequeue(reducer, &format!("{name}.out.{worker_index}"), gpu)?;
    tuple
        .into_iter()
        .next()
        .ok_or_else(|| CoreError::Invalid("empty reduction result".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_spec::ClusterSpec;
    use crate::server::TfCluster;
    use tfhpc_sim::net::Protocol;

    fn cluster(n_workers: usize) -> (Arc<TfCluster>, Arc<Server>, Vec<Arc<Server>>) {
        let spec = ClusterSpec::new([
            ("reducer".to_string(), vec!["a:8888".to_string()]),
            (
                "worker".to_string(),
                (0..n_workers).map(|i| format!("b{i}:8888")).collect(),
            ),
        ]);
        let c = TfCluster::new(spec, Protocol::Rdma, None);
        let red = c.start_server(TaskKey::new("reducer", 0), 0, vec![]);
        let workers = (0..n_workers)
            .map(|i| c.start_server(TaskKey::new("worker", i), 1 + i, vec![0]))
            .collect();
        (c, red, workers)
    }

    #[test]
    fn sum_reduction_across_threads() {
        let (_c, red, workers) = cluster(3);
        let reducer = Reducer::new(Arc::clone(&red), "r", 3, ReduceOp::Sum);
        let svc = std::thread::spawn(move || reducer.serve(2).unwrap());
        let mut handles = Vec::new();
        for (i, w) in workers.into_iter().enumerate() {
            handles.push(std::thread::spawn(move || {
                let key = TaskKey::new("reducer", 0);
                let r1 =
                    worker_all_reduce(&w, &key, "r", i, Tensor::scalar_f64((i + 1) as f64), None)
                        .unwrap();
                assert_eq!(r1.scalar_value_f64().unwrap(), 6.0);
                let r2 =
                    worker_all_reduce(&w, &key, "r", i, Tensor::scalar_f64(10.0), None).unwrap();
                assert_eq!(r2.scalar_value_f64().unwrap(), 30.0);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        svc.join().unwrap();
    }

    #[test]
    fn max_reduction() {
        let (_c, red, workers) = cluster(2);
        let reducer = Reducer::new(Arc::clone(&red), "m", 2, ReduceOp::Max);
        let svc = std::thread::spawn(move || reducer.serve(1).unwrap());
        let mut handles = Vec::new();
        for (i, w) in workers.into_iter().enumerate() {
            handles.push(std::thread::spawn(move || {
                let key = TaskKey::new("reducer", 0);
                let r = worker_all_reduce(&w, &key, "m", i, Tensor::scalar_f64(i as f64), None)
                    .unwrap();
                assert_eq!(r.scalar_value_f64().unwrap(), 1.0);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        svc.join().unwrap();
    }

    #[test]
    fn vector_sum_reduction() {
        let (_c, red, workers) = cluster(2);
        let reducer = Reducer::new(Arc::clone(&red), "v", 2, ReduceOp::Sum);
        let svc = std::thread::spawn(move || reducer.serve(1).unwrap());
        let mut handles = Vec::new();
        for (i, w) in workers.into_iter().enumerate() {
            handles.push(std::thread::spawn(move || {
                let key = TaskKey::new("reducer", 0);
                let v = Tensor::from_f64([3], vec![1.0, 2.0, 3.0]).unwrap();
                let r = worker_all_reduce(&w, &key, "v", i, v, None).unwrap();
                assert_eq!(r.as_f64().unwrap(), &[2.0, 4.0, 6.0]);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        svc.join().unwrap();
    }

    #[test]
    fn close_unblocks_service_loop() {
        let (_c, red, _workers) = cluster(2);
        let reducer = Arc::new(Reducer::new(Arc::clone(&red), "c", 2, ReduceOp::Sum));
        let r2 = Arc::clone(&reducer);
        let svc = std::thread::spawn(move || r2.serve_until_closed().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        reducer.close().unwrap();
        assert_eq!(svc.join().unwrap(), 0);
    }
}
