//! `tf.train.ClusterSpec`: named jobs mapping to task addresses.

use crate::transport::Transport;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one task: a job name and task index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskKey {
    /// Job name (`"ps"`, `"worker"`, `"reducer"`, ...).
    pub job: String,
    /// Task index within the job.
    pub index: usize,
}

impl TaskKey {
    /// Build a key.
    pub fn new(job: &str, index: usize) -> TaskKey {
        TaskKey {
            job: job.to_string(),
            index,
        }
    }
}

impl fmt::Display for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/job:{}/task:{}", self.job, self.index)
    }
}

/// A cluster specification: jobs → ordered task addresses
/// (`host:port`), mirroring the paper's Listing 2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterSpec {
    jobs: BTreeMap<String, Vec<String>>,
    /// Spec-wide transport override for every link (beats the
    /// `TFHPC_TRANSPORT` knob and the protocol default).
    default_transport: Option<Transport>,
    /// Per-link transport overrides, keyed by unordered job pair (a
    /// link's transport is direction-independent). Beats everything.
    link_transports: BTreeMap<(String, String), Transport>,
}

impl ClusterSpec {
    /// Build from `(job, addresses)` pairs.
    pub fn new(jobs: impl IntoIterator<Item = (String, Vec<String>)>) -> ClusterSpec {
        ClusterSpec {
            jobs: jobs.into_iter().collect(),
            default_transport: None,
            link_transports: BTreeMap::new(),
        }
    }

    /// Force `transport` on every link of this cluster.
    pub fn with_default_transport(mut self, transport: Transport) -> ClusterSpec {
        self.default_transport = Some(transport);
        self
    }

    /// Force `transport` on the (direction-independent) link between
    /// two jobs — e.g. keep worker↔worker collectives zero-copy while
    /// the ps↔worker control plane stays staged RPC.
    pub fn with_link_transport(
        mut self,
        job_a: &str,
        job_b: &str,
        transport: Transport,
    ) -> ClusterSpec {
        let key = if job_a <= job_b {
            (job_a.to_string(), job_b.to_string())
        } else {
            (job_b.to_string(), job_a.to_string())
        };
        self.link_transports.insert(key, transport);
        self
    }

    /// The spec's transport override for a link, most-specific first
    /// (per-link, then spec default); `None` defers to the env knob /
    /// protocol default.
    pub fn transport_override(&self, job_a: &str, job_b: &str) -> Option<Transport> {
        // Allocation-free: this runs per message on the charge path
        // and the override map is tiny (usually empty).
        if self.link_transports.is_empty() {
            return self.default_transport;
        }
        let (a, b) = if job_a <= job_b {
            (job_a, job_b)
        } else {
            (job_b, job_a)
        };
        self.link_transports
            .iter()
            .find(|((x, y), _)| x == a && y == b)
            .map(|(_, t)| *t)
            .or(self.default_transport)
    }

    /// Job names, sorted.
    pub fn job_names(&self) -> Vec<&str> {
        self.jobs.keys().map(|s| s.as_str()).collect()
    }

    /// Addresses of a job's tasks.
    pub fn job_tasks(&self, job: &str) -> Option<&[String]> {
        self.jobs.get(job).map(|v| v.as_slice())
    }

    /// Number of tasks in a job (0 if absent).
    pub fn num_tasks(&self, job: &str) -> usize {
        self.jobs.get(job).map(|v| v.len()).unwrap_or(0)
    }

    /// Address of one task.
    pub fn task_address(&self, key: &TaskKey) -> Option<&str> {
        self.jobs
            .get(&key.job)
            .and_then(|v| v.get(key.index))
            .map(|s| s.as_str())
    }

    /// Total number of tasks across jobs.
    pub fn total_tasks(&self) -> usize {
        self.jobs.values().map(|v| v.len()).sum()
    }

    /// All task keys, job-sorted then index-ordered.
    pub fn all_tasks(&self) -> Vec<TaskKey> {
        self.jobs
            .iter()
            .flat_map(|(job, tasks)| (0..tasks.len()).map(move |i| TaskKey::new(job, i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        // The paper's Listing 2.
        ClusterSpec::new([
            ("ps".to_string(), vec!["t01n01:8888".to_string()]),
            (
                "worker".to_string(),
                vec!["t01n02:8888".to_string(), "t01n03:8888".to_string()],
            ),
        ])
    }

    #[test]
    fn listing2_shape() {
        let s = spec();
        assert_eq!(s.job_names(), vec!["ps", "worker"]);
        assert_eq!(s.num_tasks("worker"), 2);
        assert_eq!(s.num_tasks("ps"), 1);
        assert_eq!(s.num_tasks("absent"), 0);
        assert_eq!(s.total_tasks(), 3);
    }

    #[test]
    fn task_addresses() {
        let s = spec();
        assert_eq!(
            s.task_address(&TaskKey::new("worker", 1)),
            Some("t01n03:8888")
        );
        assert_eq!(s.task_address(&TaskKey::new("worker", 2)), None);
        assert_eq!(s.task_address(&TaskKey::new("nope", 0)), None);
    }

    #[test]
    fn all_tasks_enumerates() {
        let s = spec();
        let all = s.all_tasks();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], TaskKey::new("ps", 0));
        assert_eq!(all[2].to_string(), "/job:worker/task:1");
    }
}
