//! Per-destination circuit breakers and retry budgets — the overload
//! half of the partition/overload robustness plane.
//!
//! A partitioned or overloaded peer must fail *fast*: without a
//! breaker, every caller re-runs its full retry schedule against the
//! dead destination, and the retry traffic itself amplifies the
//! overload ("RPC Considered Harmful"'s retry-storm collapse). The
//! breaker gives each destination task a three-state machine:
//!
//! * **Closed** — healthy; calls pass through. `failure_threshold`
//!   *consecutive* transient failures trip it.
//! * **Open** — calls fail immediately with `ResourceExhausted`
//!   (deliberately **not** transient, so [`RetryConfig`]'s loop
//!   propagates it on the spot instead of burning its backoff
//!   schedule against a peer known to be down).
//! * **HalfOpen** — after a cooldown, exactly one probe call is let
//!   through. Success closes the breaker and refills the retry
//!   budget; failure re-opens it for another cooldown.
//!
//! Probe timing is deterministic: the cooldown is stretched by an
//! FNV-jittered factor derived from the destination and the trip
//! count ([`tfhpc_core::retry::unit_hash`] — the same seedless hash
//! the retry backoff uses), so repeated trips don't probe in
//! lockstep across callers yet replay byte-identically under the DES.
//!
//! Orthogonally, a **retry budget** bounds the retry *volume* toward
//! each destination: every retry (not first attempts) consumes a
//! token, a success refills the bucket, and exhaustion fails with
//! `ResourceExhausted`. Budgets cap storm amplification even when the
//! failure pattern is too intermittent to trip the breaker.
//!
//! [`RetryConfig`]: tfhpc_core::RetryConfig

use crate::cluster_spec::TaskKey;
use parking_lot::Mutex;
use std::collections::HashMap;
use tfhpc_core::env::{env_f64, env_u64, env_usize};
use tfhpc_core::retry::unit_hash;
use tfhpc_core::{CoreError, Result};

/// Breaker/budget policy, shared by every destination in a
/// [`BreakerSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive transient failures that trip Closed→Open.
    /// `usize::MAX` never trips (retry-budget-only operation).
    pub failure_threshold: usize,
    /// Base Open→HalfOpen cooldown, seconds; each probe is scheduled
    /// at `opened_at + cooldown·(1 + 0.1·jitter(dest, trips))`.
    pub cooldown_s: f64,
    /// Per-destination retry-token bucket: each retry consumes one,
    /// success refills. `None` leaves retry volume unbounded.
    pub retry_budget: Option<u64>,
}

impl BreakerConfig {
    /// Breaker tripping after `failure_threshold` consecutive
    /// transient failures, with a `cooldown_s` probe cooldown and no
    /// retry budget.
    pub fn new(failure_threshold: usize, cooldown_s: f64) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: failure_threshold.max(1),
            cooldown_s: cooldown_s.max(0.0),
            retry_budget: None,
        }
    }

    /// Add a per-destination retry-token budget.
    pub fn with_retry_budget(mut self, tokens: u64) -> BreakerConfig {
        self.retry_budget = Some(tokens);
        self
    }

    /// Resolve the breaker policy from the environment, per the strict
    /// env-knob contract (unset → `Ok(None)`, malformed →
    /// `InvalidArgument`):
    ///
    /// * `TFHPC_BREAKER_THRESHOLD` — consecutive-failure trip count;
    ///   set and > 0 enables the breaker (`0` explicitly disables).
    /// * `TFHPC_BREAKER_COOLDOWN` — probe cooldown seconds
    ///   (default 1.0 when the breaker is enabled).
    /// * `TFHPC_RETRY_BUDGET` — per-destination retry tokens; set
    ///   enables budgeting even without a trip threshold.
    pub fn from_env() -> Result<Option<BreakerConfig>> {
        let threshold = env_usize("TFHPC_BREAKER_THRESHOLD")?;
        let cooldown = env_f64("TFHPC_BREAKER_COOLDOWN")?;
        let budget = env_u64("TFHPC_RETRY_BUDGET")?;
        let tripping = matches!(threshold, Some(t) if t > 0);
        if !tripping && budget.is_none() {
            return Ok(None);
        }
        Ok(Some(BreakerConfig {
            failure_threshold: threshold.filter(|&t| t > 0).unwrap_or(usize::MAX),
            cooldown_s: cooldown.unwrap_or(1.0),
            retry_budget: budget,
        }))
    }
}

/// Breaker state for one destination task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls pass through.
    Closed,
    /// Tripped: calls fail fast until the probe time.
    Open,
    /// Cooled down: one probe in flight decides the next state.
    HalfOpen,
}

#[derive(Debug)]
struct DestState {
    state: BreakerState,
    /// Consecutive transient failures since the last success.
    consecutive_failures: usize,
    /// Virtual/wall time the breaker last opened.
    opened_at_s: f64,
    /// Lifetime Closed→Open transitions (jitter salt input).
    trips: u64,
    /// Remaining retry tokens (`None` = unbounded).
    retry_tokens: Option<u64>,
    /// A HalfOpen probe has been admitted and not yet resolved.
    probing: bool,
}

/// Per-destination breaker + retry-budget registry for one cluster.
pub struct BreakerSet {
    config: BreakerConfig,
    dests: Mutex<HashMap<TaskKey, DestState>>,
}

impl BreakerSet {
    /// An empty registry under `config`; destinations materialize
    /// Closed with a full token bucket on first contact.
    pub fn new(config: BreakerConfig) -> BreakerSet {
        BreakerSet {
            config,
            dests: Mutex::new(HashMap::new()),
        }
    }

    /// The policy this set runs under.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// When the breaker for (`dest`, trip number `trips`) probes after
    /// opening at `opened_at_s`.
    fn probe_at(&self, dest: &TaskKey, opened_at_s: f64, trips: u64) -> f64 {
        let salt = format!("breaker:{dest}");
        opened_at_s + self.config.cooldown_s * (1.0 + 0.1 * unit_hash(&salt, trips as usize))
    }

    fn with_dest<T>(&self, dest: &TaskKey, f: impl FnOnce(&mut DestState) -> T) -> T {
        let mut dests = self.dests.lock();
        let st = dests.entry(dest.clone()).or_insert_with(|| DestState {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_s: 0.0,
            trips: 0,
            retry_tokens: self.config.retry_budget,
            probing: false,
        });
        f(st)
    }

    /// Admission check before an attempt toward `dest` at time
    /// `now_s`. Closed admits; Open fails fast with
    /// `ResourceExhausted` (non-transient — retry loops propagate it
    /// immediately) until the jittered probe time, when the caller is
    /// admitted as the HalfOpen probe; a second caller during an
    /// in-flight probe fails fast too.
    pub fn admit(&self, dest: &TaskKey, now_s: f64) -> Result<()> {
        let verdict = self.with_dest(dest, |st| match st.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                let probe_at = self.probe_at(dest, st.opened_at_s, st.trips);
                if now_s >= probe_at {
                    st.state = BreakerState::HalfOpen;
                    st.probing = true;
                    Ok(())
                } else {
                    Err(probe_at)
                }
            }
            BreakerState::HalfOpen => {
                if st.probing {
                    Err(self.probe_at(dest, st.opened_at_s, st.trips))
                } else {
                    st.probing = true;
                    Ok(())
                }
            }
        });
        match verdict {
            Ok(()) => Ok(()),
            Err(probe_at) => {
                tfhpc_obs::global()
                    .counter("tfhpc_breaker_fastfail_total")
                    .inc();
                Err(CoreError::ResourceExhausted(format!(
                    "circuit breaker open for {dest}: failing fast until probe at \
                     t={probe_at:.6} (t={now_s:.6})"
                )))
            }
        }
    }

    /// Charge one retry token toward `dest` (call before each retry,
    /// never the first attempt). Exhaustion fails with
    /// `ResourceExhausted`; success refills via [`BreakerSet::on_success`].
    pub fn charge_retry(&self, dest: &TaskKey, what: &str) -> Result<()> {
        let ok = self.with_dest(dest, |st| match &mut st.retry_tokens {
            Some(0) => false,
            Some(tokens) => {
                *tokens -= 1;
                true
            }
            None => true,
        });
        if ok {
            Ok(())
        } else {
            tfhpc_obs::global()
                .counter("tfhpc_retry_budget_exhausted_total")
                .inc();
            Err(CoreError::ResourceExhausted(format!(
                "{what}: retry budget toward {dest} exhausted \
                 ({} tokens spent without a success)",
                self.config.retry_budget.unwrap_or(0)
            )))
        }
    }

    /// Record a successful attempt toward `dest`: closes the breaker,
    /// clears the failure streak, refills the retry budget.
    pub fn on_success(&self, dest: &TaskKey) {
        self.with_dest(dest, |st| {
            st.state = BreakerState::Closed;
            st.consecutive_failures = 0;
            st.retry_tokens = self.config.retry_budget;
            st.probing = false;
        });
    }

    /// Record a transient failure toward `dest` at `now_s`: a failed
    /// HalfOpen probe re-opens immediately; in Closed, the
    /// consecutive-failure streak trips at the threshold.
    pub fn on_failure(&self, dest: &TaskKey, now_s: f64) {
        let tripped = self.with_dest(dest, |st| {
            st.probing = false;
            st.consecutive_failures += 1;
            let trip = match st.state {
                BreakerState::HalfOpen => true,
                BreakerState::Closed => st.consecutive_failures >= self.config.failure_threshold,
                BreakerState::Open => false,
            };
            if trip {
                st.state = BreakerState::Open;
                st.opened_at_s = now_s;
                st.trips += 1;
            }
            trip
        });
        if tripped {
            tfhpc_obs::global()
                .counter("tfhpc_breaker_open_total")
                .inc();
        }
    }

    /// The breaker state for `dest` (Closed for never-contacted
    /// destinations).
    pub fn state(&self, dest: &TaskKey) -> BreakerState {
        self.with_dest(dest, |st| st.state)
    }

    /// Lifetime Closed→Open trips for `dest`.
    pub fn trips(&self, dest: &TaskKey) -> u64 {
        self.with_dest(dest, |st| st.trips)
    }

    /// Remaining retry tokens toward `dest` (`None` = unbounded).
    pub fn retry_tokens(&self, dest: &TaskKey) -> Option<u64> {
        self.with_dest(dest, |st| st.retry_tokens)
    }

    /// Total trips across all destinations (drill reporting).
    pub fn total_trips(&self) -> u64 {
        self.dests.lock().values().map(|st| st.trips).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dest() -> TaskKey {
        TaskKey::new("worker", 1)
    }

    #[test]
    fn closed_breaker_admits_until_threshold() {
        let b = BreakerSet::new(BreakerConfig::new(3, 1.0));
        let d = dest();
        for _ in 0..2 {
            b.admit(&d, 0.0).unwrap();
            b.on_failure(&d, 0.0);
        }
        assert_eq!(b.state(&d), BreakerState::Closed);
        b.admit(&d, 0.0).unwrap();
        b.on_failure(&d, 0.0);
        assert_eq!(b.state(&d), BreakerState::Open);
        assert_eq!(b.trips(&d), 1);
    }

    #[test]
    fn open_breaker_fails_fast_then_probes_after_cooldown() {
        let b = BreakerSet::new(BreakerConfig::new(1, 1.0));
        let d = dest();
        b.on_failure(&d, 10.0);
        assert_eq!(b.state(&d), BreakerState::Open);
        let err = b.admit(&d, 10.5).unwrap_err();
        assert!(matches!(err, CoreError::ResourceExhausted(_)), "{err}");
        assert!(!err.is_transient(), "fast-fail must not be retried");
        // Jitter stretches the cooldown by at most 10%.
        assert!(b.admit(&d, 11.0).is_err(), "before jittered probe time");
        b.admit(&d, 11.2).unwrap();
        assert_eq!(b.state(&d), BreakerState::HalfOpen);
        // A second caller during the probe still fails fast.
        assert!(b.admit(&d, 11.2).is_err());
        b.on_success(&d);
        assert_eq!(b.state(&d), BreakerState::Closed);
        b.admit(&d, 11.3).unwrap();
    }

    #[test]
    fn failed_probe_reopens_with_new_trip() {
        let b = BreakerSet::new(BreakerConfig::new(1, 1.0));
        let d = dest();
        b.on_failure(&d, 0.0);
        b.admit(&d, 2.0).unwrap(); // probe admitted
        b.on_failure(&d, 2.0); // probe failed
        assert_eq!(b.state(&d), BreakerState::Open);
        assert_eq!(b.trips(&d), 2);
        assert!(b.admit(&d, 2.5).is_err(), "cooldown restarted");
    }

    #[test]
    fn probe_timing_is_deterministic_and_dest_sensitive() {
        let b = BreakerSet::new(BreakerConfig::new(1, 1.0));
        let a = b.probe_at(&TaskKey::new("worker", 0), 5.0, 1);
        assert_eq!(a, b.probe_at(&TaskKey::new("worker", 0), 5.0, 1));
        assert_ne!(a, b.probe_at(&TaskKey::new("worker", 1), 5.0, 1));
        assert_ne!(a, b.probe_at(&TaskKey::new("worker", 0), 5.0, 2));
        assert!((6.0..=6.1).contains(&a), "{a}");
    }

    #[test]
    fn retry_budget_exhausts_and_refills_on_success() {
        let b = BreakerSet::new(BreakerConfig::new(usize::MAX, 1.0).with_retry_budget(2));
        let d = dest();
        b.charge_retry(&d, "op").unwrap();
        b.charge_retry(&d, "op").unwrap();
        let err = b.charge_retry(&d, "op").unwrap_err();
        assert!(matches!(err, CoreError::ResourceExhausted(_)), "{err}");
        b.on_success(&d);
        assert_eq!(b.retry_tokens(&d), Some(2));
        b.charge_retry(&d, "op").unwrap();
    }

    #[test]
    fn from_env_requires_a_knob() {
        // No knobs set in the test environment: policy disabled.
        assert_eq!(BreakerConfig::from_env().unwrap(), None);
    }
}
