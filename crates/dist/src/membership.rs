//! Liveness and membership plane: a deadline-based failure detector
//! over per-task heartbeats.
//!
//! Exit-code supervision (PR 2) only reacts when a task body *returns*;
//! a hung task stalls the gang forever. This module adds the missing
//! signal: every task incarnation heartbeats a shared [`Membership`]
//! table, and a monitor sweeps deadlines to drive the per-task liveness
//! state machine
//!
//! ```text
//!          beat                    beat (refutation)
//!        ┌──────┐                ┌───────────────────┐
//!        ▼      │                ▼                   │
//!      Alive ───┴─ overdue ─▶ Suspect ── timeout ─▶ Dead ── restarted ─▶ Alive'
//!        │                                                (incarnation+1)
//!        └── clean exit ─▶ Left
//! ```
//!
//! Transitions are *epoch-fenced*: a heartbeat stamped with a stale
//! cluster epoch (a zombie from a superseded generation) is ignored, so
//! a gang restart cannot be "refuted" back to life by its own corpse.
//! All timestamps are caller-provided virtual (or wall) seconds — the
//! table never reads a clock itself, which is what keeps seeded DES
//! runs byte-reproducible.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::cluster_spec::TaskKey;

/// Per-task liveness state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Heartbeats arriving within deadline.
    Alive,
    /// Overdue past the suspicion threshold but not yet the timeout; a
    /// fresh heartbeat refutes the suspicion.
    Suspect,
    /// Missed heartbeats past the full timeout — a verdict. Only
    /// [`Membership::restarted`] (a new incarnation) leaves this state.
    Dead,
    /// Exited cleanly; no longer monitored.
    Left,
}

/// One member's detector record.
#[derive(Debug, Clone)]
pub struct MemberRecord {
    /// Current liveness state.
    pub state: Liveness,
    /// Timestamp of the last accepted heartbeat, seconds.
    pub last_beat_s: f64,
    /// Incarnation counter — bumped by every [`Membership::restarted`].
    pub incarnation: u64,
    /// When the member entered `Suspect`, if currently suspected.
    pub suspected_at_s: Option<f64>,
    /// When the member was declared `Dead`, if it was.
    pub dead_at_s: Option<f64>,
}

/// A recorded liveness transition (the detector's audit log).
#[derive(Debug, Clone)]
pub struct MembershipEvent {
    /// Member that transitioned.
    pub key: TaskKey,
    /// State before.
    pub from: Liveness,
    /// State after.
    pub to: Liveness,
    /// Transition instant, seconds.
    pub at_s: f64,
    /// Cluster epoch at the transition.
    pub epoch: u64,
    /// Member incarnation at the transition.
    pub incarnation: u64,
    /// Seconds of heartbeat silence at the transition (0 for beats).
    pub silent_for_s: f64,
}

struct Inner {
    members: BTreeMap<TaskKey, MemberRecord>,
    events: Vec<MembershipEvent>,
}

/// The membership table + deadline failure detector.
pub struct Membership {
    period_s: f64,
    timeout_s: f64,
    epoch: AtomicU64,
    inner: Mutex<Inner>,
}

impl Membership {
    /// Build a detector: members beat every `period_s`; silence of
    /// `timeout_s` is a death verdict. A `timeout_s` of 0 disables
    /// detection entirely ([`Membership::enabled`] is false).
    pub fn new(period_s: f64, timeout_s: f64) -> Membership {
        Membership {
            period_s,
            timeout_s,
            epoch: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                members: BTreeMap::new(),
                events: Vec::new(),
            }),
        }
    }

    /// Is detection active (timeout > 0)?
    pub fn enabled(&self) -> bool {
        self.timeout_s > 0.0
    }

    /// Configured heartbeat period, seconds.
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// Configured death timeout, seconds.
    pub fn timeout_s(&self) -> f64 {
        self.timeout_s
    }

    /// Silence threshold after which a member turns `Suspect` — half
    /// the timeout, but never tighter than one period.
    pub fn suspect_after_s(&self) -> f64 {
        (self.timeout_s * 0.5).max(self.period_s)
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Advance the fencing epoch (gang restart): beats stamped with an
    /// older epoch are discarded from now on.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::SeqCst);
    }

    /// Register a member as `Alive` with its first beat at `now_s`.
    /// Idempotent: a key already in the table keeps its state — a
    /// re-join cannot refute a `Dead` verdict (only
    /// [`Membership::restarted`] revives a key).
    pub fn join(&self, key: &TaskKey, now_s: f64) {
        let mut inner = self.inner.lock();
        inner
            .members
            .entry(key.clone())
            .or_insert_with(|| MemberRecord {
                state: Liveness::Alive,
                last_beat_s: now_s,
                incarnation: 0,
                suspected_at_s: None,
                dead_at_s: None,
            });
    }

    /// Record a heartbeat stamped with `epoch` at `now_s`. Returns
    /// false when the beat was discarded (stale epoch, unknown member,
    /// or a member already declared `Dead` — a verdict is not refuted
    /// by a late zombie beat; only `restarted` revives the key).
    pub fn heartbeat(&self, key: &TaskKey, epoch: u64, now_s: f64) -> bool {
        if epoch < self.epoch() {
            return false;
        }
        let mut inner = self.inner.lock();
        let Some(rec) = inner.members.get_mut(key) else {
            return false;
        };
        match rec.state {
            Liveness::Dead | Liveness::Left => false,
            Liveness::Suspect => {
                let (incarnation, silent) = (rec.incarnation, now_s - rec.last_beat_s);
                rec.state = Liveness::Alive;
                rec.last_beat_s = rec.last_beat_s.max(now_s);
                rec.suspected_at_s = None;
                let key = key.clone();
                inner.events.push(MembershipEvent {
                    key,
                    from: Liveness::Suspect,
                    to: Liveness::Alive,
                    at_s: now_s,
                    epoch,
                    incarnation,
                    silent_for_s: silent.max(0.0),
                });
                true
            }
            Liveness::Alive => {
                rec.last_beat_s = rec.last_beat_s.max(now_s);
                true
            }
        }
    }

    /// Convenience beat stamped with the current epoch.
    pub fn beat(&self, key: &TaskKey, now_s: f64) -> bool {
        self.heartbeat(key, self.epoch(), now_s)
    }

    /// Mark a clean exit: the member leaves the monitored set.
    pub fn left(&self, key: &TaskKey, now_s: f64) {
        let mut inner = self.inner.lock();
        if let Some(rec) = inner.members.get_mut(key) {
            if rec.state == Liveness::Left {
                return;
            }
            let (from, incarnation) = (rec.state, rec.incarnation);
            rec.state = Liveness::Left;
            let key = key.clone();
            let epoch = self.epoch();
            inner.events.push(MembershipEvent {
                key,
                from,
                to: Liveness::Left,
                at_s: now_s,
                epoch,
                incarnation,
                silent_for_s: 0.0,
            });
        }
    }

    /// A replacement incarnation came up: revive the key as `Alive`
    /// under `epoch` with a fresh beat and a bumped incarnation.
    /// Returns how long the key had been `Dead`, if it was (the repair
    /// half of MTTR).
    pub fn restarted(&self, key: &TaskKey, epoch: u64, now_s: f64) -> Option<f64> {
        self.set_epoch(epoch);
        let mut inner = self.inner.lock();
        let rec = inner
            .members
            .entry(key.clone())
            .or_insert_with(|| MemberRecord {
                state: Liveness::Dead,
                last_beat_s: now_s,
                incarnation: 0,
                suspected_at_s: None,
                dead_at_s: None,
            });
        let dead_for = rec.dead_at_s.map(|t| (now_s - t).max(0.0));
        let (from, incarnation) = (rec.state, rec.incarnation + 1);
        rec.state = Liveness::Alive;
        rec.last_beat_s = now_s;
        rec.incarnation = incarnation;
        rec.suspected_at_s = None;
        rec.dead_at_s = None;
        let key = key.clone();
        inner.events.push(MembershipEvent {
            key,
            from,
            to: Liveness::Alive,
            at_s: now_s,
            epoch,
            incarnation,
            silent_for_s: 0.0,
        });
        dead_for
    }

    /// Deadline-check one member at `now_s`; returns the transition it
    /// took, if any. An `Alive` member that blew straight past the full
    /// timeout jumps directly to `Dead`.
    pub fn evaluate(&self, key: &TaskKey, now_s: f64) -> Option<MembershipEvent> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        let epoch = self.epoch();
        let suspect_after = self.suspect_after_s();
        let rec = inner.members.get_mut(key)?;
        if !matches!(rec.state, Liveness::Alive | Liveness::Suspect) {
            return None;
        }
        let silent = now_s - rec.last_beat_s;
        let (from, to) = if silent >= self.timeout_s {
            (rec.state, Liveness::Dead)
        } else if rec.state == Liveness::Alive && silent >= suspect_after {
            (Liveness::Alive, Liveness::Suspect)
        } else {
            return None;
        };
        rec.state = to;
        match to {
            Liveness::Suspect => rec.suspected_at_s = Some(now_s),
            Liveness::Dead => rec.dead_at_s = Some(now_s),
            _ => {}
        }
        let incarnation = rec.incarnation;
        let ev = MembershipEvent {
            key: key.clone(),
            from,
            to,
            at_s: now_s,
            epoch,
            incarnation,
            silent_for_s: silent.max(0.0),
        };
        inner.events.push(ev.clone());
        Some(ev)
    }

    /// Deadline-check every monitored member; returns the transitions
    /// taken this sweep (deterministic order: members sorted by key).
    pub fn sweep(&self, now_s: f64) -> Vec<MembershipEvent> {
        let keys: Vec<TaskKey> = {
            let inner = self.inner.lock();
            inner
                .members
                .iter()
                .filter(|(_, r)| matches!(r.state, Liveness::Alive | Liveness::Suspect))
                .map(|(k, _)| k.clone())
                .collect()
        };
        keys.iter()
            .filter_map(|k| self.evaluate(k, now_s))
            .collect()
    }

    /// Current state of a member.
    pub fn state(&self, key: &TaskKey) -> Option<Liveness> {
        self.inner.lock().members.get(key).map(|r| r.state)
    }

    /// Full detector record of a member.
    pub fn record(&self, key: &TaskKey) -> Option<MemberRecord> {
        self.inner.lock().members.get(key).cloned()
    }

    /// Has the detector declared this member dead?
    pub fn is_dead(&self, key: &TaskKey) -> bool {
        self.state(key) == Some(Liveness::Dead)
    }

    /// When the member was declared dead, if it was.
    pub fn dead_since(&self, key: &TaskKey) -> Option<f64> {
        self.inner.lock().members.get(key).and_then(|r| r.dead_at_s)
    }

    /// Snapshot of every member record, sorted by key.
    pub fn members(&self) -> Vec<(TaskKey, MemberRecord)> {
        self.inner
            .lock()
            .members
            .iter()
            .map(|(k, r)| (k.clone(), r.clone()))
            .collect()
    }

    /// The transition audit log, in order.
    pub fn events(&self) -> Vec<MembershipEvent> {
        self.inner.lock().events.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: usize) -> TaskKey {
        TaskKey::new("worker", i)
    }

    #[test]
    fn beats_keep_members_alive() {
        let m = Membership::new(0.1, 0.5);
        m.join(&key(0), 0.0);
        for i in 1..10 {
            assert!(m.beat(&key(0), i as f64 * 0.1));
            assert!(m.sweep(i as f64 * 0.1).is_empty());
        }
        assert_eq!(m.state(&key(0)), Some(Liveness::Alive));
    }

    #[test]
    fn silence_walks_suspect_then_dead() {
        let m = Membership::new(0.1, 0.5);
        m.join(&key(0), 0.0);
        // Half the timeout: suspect.
        let evs = m.sweep(0.3);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].to, Liveness::Suspect);
        assert_eq!(m.state(&key(0)), Some(Liveness::Suspect));
        // A beat refutes the suspicion.
        assert!(m.beat(&key(0), 0.35));
        assert_eq!(m.state(&key(0)), Some(Liveness::Alive));
        // Full timeout of silence: dead, with the silence recorded.
        let evs = m.sweep(0.9);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].to, Liveness::Dead);
        assert!((evs[0].silent_for_s - 0.55).abs() < 1e-12);
        assert!(m.is_dead(&key(0)));
        // A zombie beat does not revive a verdict.
        assert!(!m.beat(&key(0), 0.95));
        assert!(m.is_dead(&key(0)));
    }

    #[test]
    fn alive_jumps_straight_to_dead_past_timeout() {
        let m = Membership::new(0.1, 0.5);
        m.join(&key(0), 0.0);
        let evs = m.sweep(1.0);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].from, Liveness::Alive);
        assert_eq!(evs[0].to, Liveness::Dead);
    }

    #[test]
    fn stale_epoch_beats_are_fenced() {
        let m = Membership::new(0.1, 0.5);
        m.join(&key(0), 0.0);
        m.set_epoch(3);
        assert!(!m.heartbeat(&key(0), 2, 0.1));
        assert!(m.heartbeat(&key(0), 3, 0.1));
    }

    #[test]
    fn restart_revives_with_bumped_incarnation_and_reports_dead_time() {
        let m = Membership::new(0.1, 0.5);
        m.join(&key(0), 0.0);
        m.sweep(0.6);
        assert!(m.is_dead(&key(0)));
        let dead_for = m.restarted(&key(0), 1, 1.0);
        assert_eq!(dead_for, Some(1.0 - 0.6));
        let rec = m.record(&key(0)).unwrap();
        assert_eq!(rec.state, Liveness::Alive);
        assert_eq!(rec.incarnation, 1);
        assert_eq!(rec.dead_at_s, None);
    }

    #[test]
    fn left_members_are_not_monitored() {
        let m = Membership::new(0.1, 0.5);
        m.join(&key(0), 0.0);
        m.left(&key(0), 0.2);
        assert!(m.sweep(10.0).is_empty());
        assert_eq!(m.state(&key(0)), Some(Liveness::Left));
    }

    #[test]
    fn zero_timeout_disables_detection() {
        let m = Membership::new(0.1, 0.0);
        assert!(!m.enabled());
        m.join(&key(0), 0.0);
        assert!(m.sweep(100.0).is_empty());
        assert_eq!(m.state(&key(0)), Some(Liveness::Alive));
    }
}
