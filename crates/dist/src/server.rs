//! TensorFlow servers and the in-process runtime cluster.
//!
//! A [`Server`] is one TensorFlow task: it owns a resource manager
//! (variables, queues, iterators) and a device context, and can reach
//! peer servers through the [`TfCluster`] registry — the in-process
//! analogue of the gRPC connections a `tf.train.Server` establishes
//! from a cluster spec. Remote primitives (`remote_enqueue`,
//! `remote_assign_add`, ...) move tensors between tasks, charging the
//! simulated transport (gRPC/MPI/RDMA) with the correct source and
//! destination device residency.

use crate::breaker::BreakerSet;
use crate::cluster_spec::{ClusterSpec, TaskKey};
use crate::transport::Transport;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use tfhpc_core::{
    CoreError, DeviceCtx, FifoQueue, Graph, OpKernel, Resources, Result, RetryConfig, Session,
    SessionOptions, TileStore,
};
use tfhpc_sim::device::{Cost, KernelClass};
use tfhpc_sim::fault::FaultPlan;
use tfhpc_sim::net::Protocol;
use tfhpc_sim::topology::{ClusterSim, Loc};
use tfhpc_tensor::Tensor;

/// The runtime cluster: a registry of in-process servers plus the
/// transport configuration and (optionally) the simulated hardware.
pub struct TfCluster {
    /// The logical cluster specification.
    pub spec: ClusterSpec,
    /// Wire protocol for inter-task tensor movement.
    pub protocol: Protocol,
    /// Cluster-wide transport forced by `TFHPC_TRANSPORT`, resolved
    /// once at creation. Per-link [`ClusterSpec`] overrides beat it;
    /// it beats the protocol's natural default.
    transport_env: Option<Transport>,
    /// Simulated hardware, when running on the virtual platform.
    pub sim: Option<Arc<ClusterSim>>,
    servers: RwLock<HashMap<TaskKey, Arc<Server>>>,
    stores: RwLock<HashMap<String, Arc<TileStore>>>,
    /// Tasks known to be down, with the reason — remote ops targeting
    /// them fail fast with `Unavailable` instead of parking forever.
    dead: RwLock<HashMap<TaskKey, String>>,
    /// Cluster generation, bumped on gang restart. Servers remember
    /// the generation they were started under; a server from an older
    /// generation is fenced off (its remote ops return `Aborted`) so a
    /// straggler process cannot corrupt the restarted computation.
    epoch: AtomicU64,
    /// Injected fault schedule (node crashes, link faults, delay
    /// spikes), evaluated against virtual time.
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Retry policy applied to the remote primitives.
    retry: RwLock<RetryConfig>,
    /// Parking surface for tasks frozen by an injected hang: a hung
    /// task blocks here instead of exiting, and supervision notifies
    /// the gate after fencing so the corpse unwinds. Installed by the
    /// launcher on simulated runs.
    hang_gate: RwLock<Option<tfhpc_sim::des::SimCondvar>>,
    /// Per-destination circuit breakers + retry budgets, resolved from
    /// `TFHPC_BREAKER_*` / `TFHPC_RETRY_BUDGET` at creation (None =
    /// policy disabled).
    breakers: RwLock<Option<Arc<BreakerSet>>>,
    /// `TFHPC_QUORUM` override of the strict-majority quorum size.
    quorum_override: Option<usize>,
    /// Audit log of quorum self-fences: one entry per task entering
    /// the `Fenced` park (the drill's time-to-fence source).
    fence_log: Mutex<Vec<FenceEvent>>,
}

/// One task entering the quorum-fenced park.
#[derive(Debug, Clone, PartialEq)]
pub struct FenceEvent {
    /// The task that fenced itself.
    pub key: TaskKey,
    /// Its node index.
    pub node: usize,
    /// Virtual time it observed the quorum loss.
    pub at_s: f64,
}

impl TfCluster {
    /// Create a runtime cluster. Fails fast (panics) on a malformed
    /// `TFHPC_TRANSPORT`, `TFHPC_BREAKER_*`, `TFHPC_RETRY_BUDGET` or
    /// `TFHPC_QUORUM` value, per the strict env-knob contract.
    pub fn new(spec: ClusterSpec, protocol: Protocol, sim: Option<Arc<ClusterSim>>) -> Arc<Self> {
        let transport_env = crate::transport::env_transport().unwrap_or_else(|e| panic!("{e}"));
        let breakers = crate::breaker::BreakerConfig::from_env()
            .unwrap_or_else(|e| panic!("{e}"))
            .map(|cfg| Arc::new(BreakerSet::new(cfg)));
        let quorum_override =
            tfhpc_core::env::env_usize("TFHPC_QUORUM").unwrap_or_else(|e| panic!("{e}"));
        Arc::new(TfCluster {
            spec,
            protocol,
            transport_env,
            sim,
            servers: RwLock::new(HashMap::new()),
            stores: RwLock::new(HashMap::new()),
            dead: RwLock::new(HashMap::new()),
            epoch: AtomicU64::new(0),
            faults: RwLock::new(None),
            retry: RwLock::new(RetryConfig::disabled()),
            hang_gate: RwLock::new(None),
            breakers: RwLock::new(breakers),
            quorum_override,
            fence_log: Mutex::new(Vec::new()),
        })
    }

    /// Create and register the server for `key`, bound to `node` with
    /// the given visible-GPU mapping. Re-starting an existing key
    /// replaces the old server (checkpoint-restart): the new
    /// incarnation is stamped with the current cluster generation and
    /// virtual time, and any stale death mark for the key is cleared.
    pub fn start_server(
        self: &Arc<Self>,
        key: TaskKey,
        node: usize,
        gpu_map: Vec<usize>,
    ) -> Arc<Server> {
        let devices = match &self.sim {
            Some(sim) => DeviceCtx::simulated(Arc::clone(sim), node, gpu_map),
            None => DeviceCtx::real(gpu_map.len()),
        };
        let server = Arc::new(Server {
            key: key.clone(),
            node,
            resources: Resources::new(),
            devices,
            cluster: Arc::downgrade(self),
            epoch: self.epoch.load(Ordering::SeqCst),
            born_at: tfhpc_sim::des::current().map(|p| p.now()).unwrap_or(0.0),
            send_seq: AtomicU64::new(0),
            seen_msgs: Mutex::new(HashSet::new()),
        });
        self.dead.write().remove(&key);
        self.servers.write().insert(key, Arc::clone(&server));
        server
    }

    /// Look up a running server.
    pub fn server(&self, key: &TaskKey) -> Result<Arc<Server>> {
        self.servers
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| CoreError::NotFound(format!("server {key}")))
    }

    // ---- failure plane -----------------------------------------------------

    /// Install an injected fault schedule.
    pub fn set_faults(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.write() = plan;
    }

    /// The injected fault schedule, when one is installed.
    pub fn faults(&self) -> Option<Arc<FaultPlan>> {
        self.faults.read().clone()
    }

    /// Install the hang-gate condvar hung tasks park on (sim only).
    pub fn set_hang_gate(&self, gate: Option<tfhpc_sim::des::SimCondvar>) {
        *self.hang_gate.write() = gate;
    }

    /// The hang-gate condvar, when one is installed.
    pub fn hang_gate(&self) -> Option<tfhpc_sim::des::SimCondvar> {
        self.hang_gate.read().clone()
    }

    /// Wake every task parked on the hang gate so it can observe its
    /// fencing verdict (supersession or death mark) and unwind. Must be
    /// called from inside a sim process.
    pub fn notify_hang_gate(&self) {
        if let Some(gate) = self.hang_gate.read().clone() {
            gate.notify_all();
        }
    }

    /// Is `server` still the registered incarnation for its key? False
    /// once a partial restart replaced it — the per-task analogue of
    /// the epoch fence.
    pub fn is_current(&self, server: &Server) -> bool {
        self.servers
            .read()
            .get(&server.key)
            .is_some_and(|reg| std::ptr::eq(Arc::as_ptr(reg), server))
    }

    /// Install (or clear) the per-destination breaker/budget policy —
    /// tests and benches use this in place of the env knobs.
    pub fn set_breakers(&self, breakers: Option<Arc<BreakerSet>>) {
        *self.breakers.write() = breakers;
    }

    /// The per-destination breaker registry, when the policy is on.
    pub fn breakers(&self) -> Option<Arc<BreakerSet>> {
        self.breakers.read().clone()
    }

    // ---- quorum / fencing --------------------------------------------------

    /// The sorted distinct node set hosting registered servers — the
    /// voting universe the quorum rule counts over.
    pub fn universe(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self
            .servers
            .read()
            .values()
            .map(|s| s.node)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        nodes.sort_unstable();
        nodes
    }

    /// Nodes a partition island must bidirectionally reach to keep
    /// deciding: strict majority of the universe (`len/2 + 1`), or the
    /// `TFHPC_QUORUM` override (clamped to at least 1).
    pub fn quorum_required(&self, universe_len: usize) -> usize {
        self.quorum_override.unwrap_or(universe_len / 2 + 1).max(1)
    }

    /// Does `node` sit in a quorate partition island at `now_s`? True
    /// when no partition fault kinds are scheduled at all (the cheap
    /// steady-state path), or when `node` bidirectionally reaches a
    /// quorum of the universe.
    pub fn has_quorum(&self, node: usize, now_s: f64) -> bool {
        let Some(plan) = self.faults() else {
            return true;
        };
        if !plan.has_partition_events() {
            return true;
        }
        let universe = self.universe();
        plan.reachable_count(node, &universe, now_s) >= self.quorum_required(universe.len())
    }

    /// Record a task entering the quorum-fenced park.
    fn note_fenced(&self, key: &TaskKey, node: usize, at_s: f64) {
        tfhpc_obs::global().counter("tfhpc_fenced_total").inc();
        self.fence_log.lock().push(FenceEvent {
            key: key.clone(),
            node,
            at_s,
        });
    }

    /// Audit log of quorum self-fences, in park order.
    pub fn fence_events(&self) -> Vec<FenceEvent> {
        self.fence_log.lock().clone()
    }

    /// Install the retry policy the remote primitives run under.
    pub fn set_retry(&self, retry: RetryConfig) {
        *self.retry.write() = retry;
    }

    /// The retry policy the remote primitives run under.
    pub fn retry_config(&self) -> RetryConfig {
        self.retry.read().clone()
    }

    /// The transport active on the (direction-independent) link
    /// between two jobs: per-link spec override > spec default >
    /// `TFHPC_TRANSPORT` > protocol default.
    pub fn transport_for(&self, job_a: &str, job_b: &str) -> Transport {
        self.spec
            .transport_override(job_a, job_b)
            .or(self.transport_env)
            .unwrap_or_else(|| Transport::default_for(self.protocol))
    }

    /// The DES protocol charged on the link between two jobs under its
    /// active transport (zero-copy always moves at Verbs costs).
    pub fn wire_protocol(&self, job_a: &str, job_b: &str) -> Protocol {
        self.transport_for(job_a, job_b)
            .wire_protocol(self.protocol)
    }

    /// Current cluster generation.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Bump the cluster generation (gang restart); returns the new
    /// generation. Servers started before the bump are fenced off.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Declare `key` down: record the reason and abort every queue on
    /// its server with `Unavailable`, waking peers parked on it.
    pub fn mark_dead(&self, key: &TaskKey, reason: &str) {
        self.dead
            .write()
            .entry(key.clone())
            .or_insert_with(|| reason.to_string());
        if let Some(server) = self.servers.read().get(key).cloned() {
            server
                .resources
                .abort_all_queues(CoreError::Unavailable(format!(
                    "task {key} is down: {reason}"
                )));
        }
    }

    /// True when `key` has been declared down.
    pub fn is_dead(&self, key: &TaskKey) -> bool {
        self.dead.read().contains_key(key)
    }

    /// Why `key` is down, when it is.
    pub fn death_reason(&self, key: &TaskKey) -> Option<String> {
        self.dead.read().get(key).cloned()
    }

    /// Forget all death marks (gang restart brings every task back).
    pub fn clear_dead(&self) {
        self.dead.write().clear();
    }

    /// Abort every queue of every registered server with `err` —
    /// the supervisor's gang teardown, unblocking all parked tasks.
    pub fn abort_all(&self, err: CoreError) {
        let servers: Vec<Arc<Server>> = self.servers.read().values().cloned().collect();
        for s in servers {
            s.resources.abort_all_queues(err.clone());
        }
    }

    /// Mount an existing tile store into this cluster's shared
    /// namespace (persistent Lustre data surviving across job
    /// allocations — e.g. checkpoints picked up by a restarted job).
    pub fn register_shared_store(&self, name: &str, store: Arc<TileStore>) {
        self.stores.write().insert(name.to_string(), store);
    }

    /// A cluster-wide shared tile store (the Lustre namespace both
    /// systems mount; every task sees the same files).
    pub fn shared_store(&self, name: &str) -> Arc<TileStore> {
        let mut stores = self.stores.write();
        if let Some(s) = stores.get(name) {
            return Arc::clone(s);
        }
        // Build through a scratch resource manager to reuse its ctor.
        let tmp = Resources::new();
        let store = tmp.create_store(name);
        stores.insert(name.to_string(), Arc::clone(&store));
        store
    }
}

/// One TensorFlow task's server.
pub struct Server {
    /// This task's identity.
    pub key: TaskKey,
    /// Node index on the (possibly simulated) cluster.
    pub node: usize,
    /// The task's resource manager.
    pub resources: Arc<Resources>,
    /// The task's device context.
    pub devices: DeviceCtx,
    cluster: Weak<TfCluster>,
    /// Cluster generation this incarnation was started under.
    epoch: u64,
    /// Virtual time this incarnation was started at — crashes injected
    /// before it (i.e. the crash that *caused* a restart) don't kill
    /// the replacement server on the same node.
    born_at: f64,
    /// Sender-side message sequence, mixed into wire message ids so a
    /// duplication window's redundant delivery dedups by identity.
    send_seq: AtomicU64,
    /// Receiver-side dedup set: ids of messages already applied. An
    /// at-least-once transport may deliver twice; the second copy is
    /// dropped here instead of double-applying.
    seen_msgs: Mutex<HashSet<u64>>,
}

impl Server {
    /// The owning runtime cluster. Panics when the cluster has been
    /// dropped; internal paths use [`Server::try_cluster`] instead.
    pub fn cluster(&self) -> Arc<TfCluster> {
        self.cluster.upgrade().expect("cluster dropped")
    }

    /// The owning runtime cluster, or `Unavailable` when it has been
    /// torn down under this server (shutdown race).
    pub fn try_cluster(&self) -> Result<Arc<TfCluster>> {
        self.cluster.upgrade().ok_or_else(|| {
            CoreError::Unavailable(format!("task {}: cluster has been shut down", self.key))
        })
    }

    /// Cluster generation this incarnation belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Virtual time this incarnation came up (0 in real mode).
    pub fn born_at(&self) -> f64 {
        self.born_at
    }

    /// Current virtual time as seen from the calling process (0 when
    /// not inside a simulated process).
    fn now_s(&self) -> f64 {
        tfhpc_sim::des::current().map(|p| p.now()).unwrap_or(0.0)
    }

    /// Fencing check: fail with `Aborted` when this incarnation has
    /// been superseded by a gang restart or a partial restart, or when
    /// the injected fault plan has crashed this incarnation's node. A
    /// *hung* node does not return at all: the call parks on the
    /// cluster hang gate until supervision fences the incarnation off —
    /// the failure mode only the membership plane's heartbeat deadline
    /// can catch. A node cut off from quorum by a partition parks as
    /// `Fenced` ([`Server::park_fenced`]): it never becomes a second
    /// decider, and rejoins only when the partition heals (or unwinds
    /// once supervision supersedes it).
    pub fn check_alive(&self) -> Result<()> {
        let cluster = self.try_cluster()?;
        self.fenced(&cluster)?;
        if let Some(plan) = cluster.faults() {
            let now = self.now_s();
            if plan.crashed(self.node, self.born_at, now) {
                return Err(CoreError::Aborted(format!(
                    "task {} lost: node {} crashed (injected, t={now:.6})",
                    self.key, self.node
                )));
            }
            if plan.hung(self.node, self.born_at, now) {
                return self.park_hung(&cluster);
            }
            if plan.has_partition_events() && !cluster.has_quorum(self.node, now) {
                return self.park_fenced(&cluster, &plan);
            }
        }
        Ok(())
    }

    /// The pure fencing predicates (no fault-plan consultation):
    /// generation fence, then the per-task incarnation fence a partial
    /// restart advances.
    fn fenced(&self, cluster: &Arc<TfCluster>) -> Result<()> {
        let epoch = cluster.epoch();
        if self.epoch != epoch {
            return Err(CoreError::Aborted(format!(
                "task {} generation {} superseded by generation {epoch}",
                self.key, self.epoch
            )));
        }
        if !cluster.is_current(self) {
            return Err(CoreError::Aborted(format!(
                "task {} incarnation superseded by a partial restart",
                self.key
            )));
        }
        Ok(())
    }

    /// Freeze the calling task: block on the hang gate until a fencing
    /// verdict (supersession, death mark) lets the corpse unwind.
    /// Without a gate (real mode, bare clusters) the hang degrades to a
    /// crash-style abort so the failure stays visible.
    fn park_hung(&self, cluster: &Arc<TfCluster>) -> Result<()> {
        let gate = cluster.hang_gate();
        let (Some(gate), Some(_)) = (gate, tfhpc_sim::des::current()) else {
            return Err(CoreError::Aborted(format!(
                "task {} frozen: node {} hung (injected, no hang gate installed)",
                self.key, self.node
            )));
        };
        loop {
            gate.wait();
            self.fenced(cluster)?;
            if let Some(reason) = cluster.death_reason(&self.key) {
                return Err(CoreError::Unavailable(format!(
                    "task {} is down: {reason}",
                    self.key
                )));
            }
        }
    }

    /// Quorum self-fence: the calling task sits in a minority
    /// partition island, so it parks instead of deciding — the
    /// split-brain guard that keeps a second supervised-resume decider
    /// from ever electing itself. The park ends three ways:
    ///
    /// * the partition heals → `Ok(())`, the task *rejoins* and the
    ///   interrupted op proceeds;
    /// * supervision (driven by the missed heartbeats) supersedes or
    ///   gang-restarts the incarnation → `Aborted` via the usual
    ///   fencing predicates, and the corpse unwinds;
    /// * the task is marked dead → `Unavailable`.
    ///
    /// Parks on the cluster hang gate when one is installed (woken by
    /// supervision verdicts and bounded by the plan's heal time);
    /// otherwise sleeps virtual time to the heal point, or — outside
    /// the DES with no gate — degrades to an immediate `Unavailable`
    /// so the fence stays visible.
    fn park_fenced(&self, cluster: &Arc<TfCluster>, plan: &Arc<FaultPlan>) -> Result<()> {
        cluster.note_fenced(&self.key, self.node, self.now_s());
        let gate = cluster.hang_gate();
        loop {
            let now = self.now_s();
            if cluster.has_quorum(self.node, now) {
                return Ok(());
            }
            self.fenced(cluster)?;
            if let Some(reason) = cluster.death_reason(&self.key) {
                return Err(CoreError::Unavailable(format!(
                    "task {} is down: {reason}",
                    self.key
                )));
            }
            let heal = plan.partition_heal_s(now).filter(|&t| t > now);
            match (&gate, tfhpc_sim::des::current()) {
                (Some(g), Some(_)) => match heal {
                    Some(t) => {
                        g.wait_until(t);
                    }
                    None => g.wait(),
                },
                (None, Some(me)) => match heal {
                    Some(t) => me.advance(t - now),
                    None => {
                        return Err(CoreError::Unavailable(format!(
                            "task {} fenced: node {} lost quorum with no heal scheduled",
                            self.key, self.node
                        )))
                    }
                },
                _ => {
                    return Err(CoreError::Unavailable(format!(
                        "task {} fenced: node {} lost quorum (minority partition, t={now:.6})",
                        self.key, self.node
                    )))
                }
            }
        }
    }

    /// Resolve `target` for a remote op, applying the failure plane:
    /// fences this server ([`Server::check_alive`]), fails the request
    /// when its propagated deadline is already spent, fails fast with
    /// `Unavailable` when the target is marked dead, its node is
    /// crashed, the route is partitioned/blackholed, or a link fault
    /// is active on either endpoint, and charges active delay spikes
    /// to the caller's virtual clock.
    fn peer_checked(&self, target: &TaskKey) -> Result<Arc<Server>> {
        self.check_alive()?;
        tfhpc_core::deadline::check("remote op")?;
        let cluster = self.try_cluster()?;
        if let Some(reason) = cluster.death_reason(target) {
            return Err(CoreError::Unavailable(format!(
                "task {target} is down: {reason}"
            )));
        }
        let peer = cluster.server(target)?;
        if let Some(plan) = cluster.faults() {
            let now = self.now_s();
            if plan.crashed(peer.node, peer.born_at, now) {
                return Err(CoreError::Unavailable(format!(
                    "task {target} unreachable: node {} crashed (injected, t={now:.6})",
                    peer.node
                )));
            }
            // Remote primitives are request/response: a partition or
            // a one-way blackhole on *either* direction severs the op.
            for (from, to) in [(self.node, peer.node), (peer.node, self.node)] {
                if !plan.can_send(from, to, now) {
                    let until = plan
                        .partition_until(self.node, peer.node, now)
                        .map(|u| format!(" until t={u:.6}"))
                        .unwrap_or_default();
                    return Err(CoreError::Unavailable(format!(
                        "task {target} unreachable: route {from}→{to} \
                         partitioned{until} (injected, t={now:.6})"
                    )));
                }
            }
            for node in [self.node, peer.node] {
                if let Some(until) = plan.link_fault_until(node, now) {
                    return Err(CoreError::Unavailable(format!(
                        "link to node {node} faulted until t={until:.6} (injected, t={now:.6})"
                    )));
                }
            }
            let extra = plan.extra_delay(self.node, now) + plan.extra_delay(peer.node, now);
            if extra > 0.0 {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(extra);
                }
            }
        }
        Ok(peer)
    }

    /// The cluster's retry policy (cheap clone); retries are disabled
    /// when the cluster is already torn down.
    fn retry(&self) -> RetryConfig {
        self.cluster
            .upgrade()
            .map(|c| c.retry_config())
            .unwrap_or_else(RetryConfig::disabled)
    }

    /// The retried remote-op shell every primitive runs in: per-
    /// destination breaker admission (Open fails fast with the
    /// non-transient `ResourceExhausted`, which the retry loop
    /// propagates immediately), a retry-budget token per re-attempt,
    /// then peer resolution + the op body, with the attempt's outcome
    /// fed back to the breaker (only *transient* failures count — a
    /// fencing `Aborted` says this caller is dead, not the peer).
    fn remote_op<T>(
        &self,
        what: &str,
        target: &TaskKey,
        mut f: impl FnMut(&Arc<Server>) -> Result<T>,
    ) -> Result<T> {
        let breakers = self.cluster.upgrade().and_then(|c| c.breakers());
        let mut attempt = 0usize;
        self.retry().run(what, Some(&self.resources), || {
            if let Some(b) = &breakers {
                b.admit(target, self.now_s())?;
                if attempt > 0 {
                    b.charge_retry(target, what)?;
                }
            }
            attempt += 1;
            let r = self.peer_checked(target).and_then(|peer| f(&peer));
            if let Some(b) = &breakers {
                match &r {
                    Ok(_) => b.on_success(target),
                    Err(e) if e.is_transient() => b.on_failure(target, self.now_s()),
                    Err(_) => {}
                }
            }
            r
        })
    }

    /// How long a remote queue op waits for the owner to register the
    /// queue before reporting `NotFound` — rides out the startup race
    /// where a gang task's first request lands while the peer is still
    /// in its setup code.
    const QUEUE_RESOLVE_TIMEOUT_S: f64 = 5.0;

    /// Open a session on this server over `graph`.
    pub fn session(&self, graph: Arc<Graph>) -> Session {
        Session::new(graph, Arc::clone(&self.resources), self.devices.clone())
    }

    /// [`Server::session`] with explicit threading options
    /// (`inter_op_threads` / `intra_op_threads`).
    pub fn session_with_options(&self, graph: Arc<Graph>, options: SessionOptions) -> Session {
        Session::with_options(
            graph,
            Arc::clone(&self.resources),
            self.devices.clone(),
            options,
        )
    }

    /// Physical location of a tensor on this task (`gpu` is the
    /// *visible* GPU index).
    pub fn loc(&self, gpu: Option<usize>) -> Loc {
        let slot = match (&self.devices.sim, gpu) {
            (Some(sim), Some(g)) => sim.gpu_map.get(g).copied(),
            _ => None,
        };
        Loc {
            node: self.node,
            gpu: slot,
        }
    }

    /// The transport on the link from this task to `peer` (staged-copy
    /// when the cluster is already gone — shutdown paths only).
    pub fn transport_to(&self, peer: &Server) -> Transport {
        self.try_cluster()
            .map(|c| c.transport_for(&self.key.job, &peer.key.job))
            .unwrap_or(Transport::StagedCopy)
    }

    /// Charge the wire+staging cost of moving `bytes` from this task to
    /// `dst` (no-op in real mode) under the link's active transport.
    /// Returns modeled seconds.
    ///
    /// Zero-copy links move at Verbs costs whatever the cluster
    /// protocol; staged-copy links move at the cluster protocol's
    /// costs, and on a Verbs wire additionally pay the RPC staging
    /// copy at both endpoints (`2·bytes / serialize_gbs`) — the
    /// "RPC on RDMA" configuration whose loss to one-sided transfer
    /// `bench_transport` measures.
    pub fn charge_transfer_to(
        &self,
        dst: &Server,
        src_gpu: Option<usize>,
        dst_gpu: Option<usize>,
        bytes: u64,
    ) -> f64 {
        let Ok(cluster) = self.try_cluster() else {
            return 0.0;
        };
        let Some(sim) = &cluster.sim else { return 0.0 };
        let transport = cluster.transport_for(&self.key.job, &dst.key.job);
        let wire_proto = transport.wire_protocol(cluster.protocol);
        let labels = [("protocol", wire_proto.name())];
        let reg = tfhpc_obs::global();
        reg.counter_with("tfhpc_link_bytes_total", &labels)
            .add(bytes);
        reg.counter_with("tfhpc_link_messages_total", &labels).inc();
        reg.counter_with(
            "tfhpc_transport_bytes_total",
            &[("transport", transport.name())],
        )
        .add(bytes);
        let path = sim.path(self.loc(src_gpu), dst.loc(dst_gpu), wire_proto);
        let mut t = path.transfer(bytes);
        if transport == Transport::StagedCopy && cluster.protocol == Protocol::Rdma {
            let staging = 2.0 * bytes as f64 / (sim.platform.net.serialize_gbs * 1e9);
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(staging);
            }
            t += staging;
        }
        // An active straggler window on either endpoint stretches the
        // effective wire time: the extra stall is charged to the
        // caller's clock, exactly like a delay spike but multiplicative.
        if let Some(plan) = cluster.faults() {
            let now = self.now_s();
            let factor = plan
                .straggler_factor(self.node, now)
                .max(plan.straggler_factor(dst.node, now));
            if factor > 1.0 {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(t * (factor - 1.0));
                }
                return t * factor;
            }
        }
        t
    }

    /// Next wire message id from this sender toward `queue`: FNV-1a
    /// over the sender's identity (task key + incarnation birth time)
    /// and a per-incarnation sequence — unique per logical message,
    /// identical across the duplicate deliveries of one message.
    fn next_msg_id(&self, queue: &str) -> u64 {
        let seq = self.send_seq.fetch_add(1, Ordering::SeqCst);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .key
            .to_string()
            .bytes()
            .chain(queue.bytes())
            .chain(self.born_at.to_bits().to_le_bytes())
            .chain(seq.to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// First sighting of wire message `id` on this receiver? False for
    /// a duplicate delivery, which the caller must drop unapplied.
    fn note_delivery(&self, id: u64) -> bool {
        self.seen_msgs.lock().insert(id)
    }

    /// Push a tuple into a queue owned by `target`, paying the transfer
    /// from this task (optionally from GPU-resident memory). Transient
    /// (`Unavailable`) failures are retried per the cluster's policy.
    ///
    /// Inside an injected duplication/reordering window the transport
    /// behaves at-least-once: the same message arrives twice, and the
    /// receiver dedups by wire message id so the enqueue applies
    /// exactly once (the redundant copy is counted and its wire cost
    /// charged, but it never lands).
    pub fn remote_enqueue(
        &self,
        target: &TaskKey,
        queue: &str,
        tuple: Vec<Tensor>,
        src_gpu: Option<usize>,
    ) -> Result<()> {
        self.remote_op("remote_enqueue", target, |peer| {
            let bytes: u64 = tuple.iter().map(|t| t.byte_size() as u64).sum();
            self.charge_transfer_to(peer, src_gpu, None, bytes);
            // Frame + verify before the tuple lands: a corrupted
            // transfer is detected here and the retry retransmits
            // without ever double-enqueueing.
            let verified = crate::wire::transfer(
                self,
                "remote_enqueue",
                &[self.node, peer.node],
                &tuple,
                self.transport_to(peer),
            )?;
            let q = peer
                .resources
                .queue_wait(queue, Self::QUEUE_RESOLVE_TIMEOUT_S)?;
            let dup_window = self
                .try_cluster()?
                .faults()
                .map(|plan| {
                    let now = self.now_s();
                    plan.dup_reorder_at(self.node, now) || plan.dup_reorder_at(peer.node, now)
                })
                .unwrap_or(false);
            if !dup_window {
                return q.enqueue(verified);
            }
            let msg_id = self.next_msg_id(queue);
            let mut outcome = Ok(());
            for _delivery in 0..2 {
                if peer.note_delivery(msg_id) {
                    outcome = q.enqueue(verified.clone());
                } else {
                    // The duplicate still crossed the wire; only the
                    // apply is suppressed.
                    self.charge_transfer_to(peer, src_gpu, None, bytes);
                    tfhpc_obs::global().counter("tfhpc_dup_dropped_total").inc();
                }
            }
            outcome
        })
    }

    /// Pop a tuple from a queue owned by `target`, paying the return
    /// transfer to this task. Transient failures are retried per the
    /// cluster's policy.
    pub fn remote_dequeue(
        &self,
        target: &TaskKey,
        queue: &str,
        dst_gpu: Option<usize>,
    ) -> Result<Vec<Tensor>> {
        let (tuple, peer_node, transport) = self.remote_op("remote_dequeue", target, |peer| {
            let tuple = peer
                .resources
                .queue_wait(queue, Self::QUEUE_RESOLVE_TIMEOUT_S)?
                .dequeue()?;
            let bytes: u64 = tuple.iter().map(|t| t.byte_size() as u64).sum();
            peer.charge_transfer_to(self, None, dst_gpu, bytes);
            Ok((tuple, peer.node, peer.transport_to(self)))
        })?;
        // Verify outside the dequeue retry: the tuple is already ours,
        // so a corrupted delivery retransmits from the held copy
        // instead of popping the queue a second time.
        self.retry()
            .run("remote_dequeue/verify", Some(&self.resources), || {
                crate::wire::transfer(
                    self,
                    "remote_dequeue",
                    &[peer_node, self.node],
                    &tuple,
                    transport,
                )
            })
    }

    /// [`Server::remote_dequeue`] with a deadline: waits at most
    /// `timeout_s` (virtual seconds under the DES, wall seconds
    /// otherwise) and returns `DeadlineExceeded` on expiry instead of
    /// blocking forever. Deadline expiry is not retried.
    pub fn remote_dequeue_deadline(
        &self,
        target: &TaskKey,
        queue: &str,
        dst_gpu: Option<usize>,
        timeout_s: f64,
    ) -> Result<Vec<Tensor>> {
        let peer = self.peer_checked(target)?;
        let tuple = peer
            .resources
            .queue_wait(queue, timeout_s.min(Self::QUEUE_RESOLVE_TIMEOUT_S))?
            .dequeue_timeout(timeout_s)?;
        let bytes: u64 = tuple.iter().map(|t| t.byte_size() as u64).sum();
        peer.charge_transfer_to(self, None, dst_gpu, bytes);
        self.retry().run(
            "remote_dequeue_deadline/verify",
            Some(&self.resources),
            || {
                crate::wire::transfer(
                    self,
                    "remote_dequeue_deadline",
                    &[peer.node, self.node],
                    &tuple,
                    peer.transport_to(self),
                )
            },
        )
    }

    /// `target_var += value` on the parameter server `target` — the
    /// paper's STREAM operation. `dst_gpu` says where the variable
    /// lives on the target. Transient failures are retried per the
    /// cluster's policy.
    pub fn remote_assign_add(
        &self,
        target: &TaskKey,
        var: &str,
        value: &Tensor,
        src_gpu: Option<usize>,
        dst_gpu: Option<usize>,
    ) -> Result<()> {
        self.remote_op("remote_assign_add", target, |peer| {
            self.charge_transfer_to(peer, src_gpu, dst_gpu, value.byte_size() as u64);
            // Verify before applying: the add happens at most once,
            // on checksum-verified bytes.
            let verified = crate::wire::transfer(
                self,
                "remote_assign_add",
                &[self.node, peer.node],
                std::slice::from_ref(value),
                self.transport_to(peer),
            )?;
            peer.resources.variable(var)?.assign_add(&verified[0])?;
            // The add itself executes on the target's device.
            let placement = match dst_gpu {
                Some(g) => tfhpc_core::Placement::Gpu(g),
                None => tfhpc_core::Placement::Cpu,
            };
            // The accumulate streams through the target's memory as
            // data lands (pipelined with the receive), so charge one
            // pass.
            let cost = Cost {
                flops: value.num_elements() as f64,
                bytes: value.byte_size() as f64,
                class: KernelClass::Blas1,
            };
            let dp = !matches!(value.dtype(), tfhpc_tensor::DType::F32);
            peer.devices.charge_kernel(placement, &cost, dp);
            Ok(())
        })
    }

    /// Overwrite `target_var` with `value` — used to reinstate a
    /// checkpointed accumulator on a restarted parameter server.
    /// Transient failures are retried per the cluster's policy.
    pub fn remote_assign(
        &self,
        target: &TaskKey,
        var: &str,
        value: &Tensor,
        src_gpu: Option<usize>,
        dst_gpu: Option<usize>,
    ) -> Result<()> {
        self.remote_op("remote_assign", target, |peer| {
            self.charge_transfer_to(peer, src_gpu, dst_gpu, value.byte_size() as u64);
            // Verify before applying, like remote_assign_add: the
            // overwrite lands at most once, on verified bytes.
            let mut verified = crate::wire::transfer(
                self,
                "remote_assign",
                &[self.node, peer.node],
                std::slice::from_ref(value),
                self.transport_to(peer),
            )?;
            let value = verified.pop().ok_or_else(|| {
                CoreError::Invalid("remote_assign: wire transfer returned no tensors".into())
            })?;
            let stored_bytes = value.byte_size() as f64;
            peer.resources.variable(var)?.assign(value)?;
            let placement = match dst_gpu {
                Some(g) => tfhpc_core::Placement::Gpu(g),
                None => tfhpc_core::Placement::Cpu,
            };
            // A plain store: one pass through the target's memory.
            let cost = Cost {
                flops: 0.0,
                bytes: stored_bytes,
                class: KernelClass::Elementwise,
            };
            peer.devices.charge_kernel(placement, &cost, true);
            Ok(())
        })
    }

    /// Read a variable from `target`, paying the transfer back.
    /// Transient failures are retried per the cluster's policy.
    pub fn remote_var_read(
        &self,
        target: &TaskKey,
        var: &str,
        dst_gpu: Option<usize>,
    ) -> Result<Tensor> {
        self.remote_op("remote_var_read", target, |peer| {
            let value = peer.resources.variable(var)?.read();
            peer.charge_transfer_to(self, None, dst_gpu, value.byte_size() as u64);
            // Reads are idempotent: a corrupted return transfer
            // retries the whole read, recharging the wire like a
            // real retransmission.
            let mut verified = crate::wire::transfer(
                self,
                "remote_var_read",
                &[peer.node, self.node],
                std::slice::from_ref(&value),
                peer.transport_to(self),
            )?;
            verified.pop().ok_or_else(|| {
                CoreError::Invalid("remote_var_read: wire transfer returned no tensors".into())
            })
        })
    }

    /// A graph kernel that enqueues its inputs into `target`'s queue.
    pub fn enqueue_kernel(
        self: &Arc<Self>,
        target: TaskKey,
        queue: &str,
        src_gpu: Option<usize>,
    ) -> Arc<dyn OpKernel> {
        Arc::new(RemoteEnqueueKernel {
            server: Arc::clone(self),
            target,
            queue: queue.to_string(),
            src_gpu,
        })
    }

    /// A graph kernel that dequeues an `arity`-tuple from `target`'s
    /// queue.
    pub fn dequeue_kernel(
        self: &Arc<Self>,
        target: TaskKey,
        queue: &str,
        arity: usize,
        dst_gpu: Option<usize>,
    ) -> Arc<dyn OpKernel> {
        Arc::new(RemoteDequeueKernel {
            server: Arc::clone(self),
            target,
            queue: queue.to_string(),
            arity,
            dst_gpu,
        })
    }
}

struct RemoteEnqueueKernel {
    server: Arc<Server>,
    target: TaskKey,
    queue: String,
    src_gpu: Option<usize>,
}

impl OpKernel for RemoteEnqueueKernel {
    fn name(&self) -> &str {
        "RemoteEnqueue"
    }

    fn compute(&self, _resources: &Resources, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.server
            .remote_enqueue(&self.target, &self.queue, inputs.to_vec(), self.src_gpu)?;
        Ok(vec![])
    }
}

struct RemoteDequeueKernel {
    server: Arc<Server>,
    target: TaskKey,
    queue: String,
    arity: usize,
    dst_gpu: Option<usize>,
}

impl OpKernel for RemoteDequeueKernel {
    fn name(&self) -> &str {
        "RemoteDequeue"
    }

    fn compute(&self, _resources: &Resources, _inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let tuple = self
            .server
            .remote_dequeue(&self.target, &self.queue, self.dst_gpu)?;
        if tuple.len() != self.arity {
            return Err(CoreError::Graph(format!(
                "remote queue `{}` yielded {} tensors, expected {}",
                self.queue,
                tuple.len(),
                self.arity
            )));
        }
        Ok(tuple)
    }
}

/// Queues created on a server must be registered under the server's
/// resources so remote ops can find them by name.
pub fn create_task_queue(server: &Server, name: &str, capacity: usize) -> Arc<FifoQueue> {
    server.resources.create_queue(name, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_task_cluster() -> (Arc<TfCluster>, Arc<Server>, Arc<Server>) {
        let spec = ClusterSpec::new([
            ("ps".to_string(), vec!["a:8888".to_string()]),
            ("worker".to_string(), vec!["b:8888".to_string()]),
        ]);
        let cluster = TfCluster::new(spec, Protocol::Rdma, None);
        let ps = cluster.start_server(TaskKey::new("ps", 0), 0, vec![]);
        let worker = cluster.start_server(TaskKey::new("worker", 0), 1, vec![0]);
        (cluster, ps, worker)
    }

    #[test]
    fn servers_register_and_resolve() {
        let (cluster, _ps, _w) = two_task_cluster();
        assert!(cluster.server(&TaskKey::new("ps", 0)).is_ok());
        assert!(cluster.server(&TaskKey::new("worker", 5)).is_err());
    }

    #[test]
    fn remote_assign_add_updates_ps_variable() {
        let (_c, ps, worker) = two_task_cluster();
        ps.resources
            .create_variable("acc", Tensor::from_f64([2], vec![1.0, 1.0]).unwrap());
        worker
            .remote_assign_add(
                &TaskKey::new("ps", 0),
                "acc",
                &Tensor::from_f64([2], vec![2.0, 3.0]).unwrap(),
                None,
                None,
            )
            .unwrap();
        assert_eq!(
            ps.resources
                .variable("acc")
                .unwrap()
                .read()
                .as_f64()
                .unwrap(),
            &[3.0, 4.0]
        );
    }

    #[test]
    fn remote_queue_roundtrip() {
        let (_c, ps, worker) = two_task_cluster();
        create_task_queue(&ps, "results", 4);
        worker
            .remote_enqueue(
                &TaskKey::new("ps", 0),
                "results",
                vec![Tensor::scalar_f64(9.0)],
                None,
            )
            .unwrap();
        let got = worker
            .remote_dequeue(&TaskKey::new("ps", 0), "results", None)
            .unwrap();
        assert_eq!(got[0].scalar_value_f64().unwrap(), 9.0);
    }

    #[test]
    fn remote_kernels_work_in_graphs() {
        let (_c, ps, worker) = two_task_cluster();
        create_task_queue(&ps, "q", 4);
        let mut g = Graph::new();
        let v = g.constant(Tensor::scalar_f64(7.0));
        let k = worker.enqueue_kernel(TaskKey::new("ps", 0), "q", None);
        let enq = g.custom(k, &[v], &[]);
        let dk = worker.dequeue_kernel(TaskKey::new("ps", 0), "q", 1, None);
        let deq = g.custom(dk, &[], &[enq]);
        let sess = worker.session(Arc::new(g));
        let out = sess.run(&[deq], &[]).unwrap();
        assert_eq!(out[0].scalar_value_f64().unwrap(), 7.0);
    }

    #[test]
    fn shared_store_is_cluster_wide() {
        let (c, ps, worker) = two_task_cluster();
        let store = c.shared_store("tiles");
        ps.resources.register_store(Arc::clone(&store));
        worker.resources.register_store(Arc::clone(&store));
        ps.resources
            .store("tiles")
            .unwrap()
            .put(vec![0], Tensor::scalar_f64(1.0));
        assert!(worker.resources.store("tiles").unwrap().get(&[0]).is_ok());
        // Idempotent.
        assert!(Arc::ptr_eq(&c.shared_store("tiles"), &store));
    }

    #[test]
    fn remote_var_read_returns_value() {
        let (_c, ps, worker) = two_task_cluster();
        ps.resources.create_variable("w", Tensor::scalar_f64(3.5));
        let v = worker
            .remote_var_read(&TaskKey::new("ps", 0), "w", None)
            .unwrap();
        assert_eq!(v.scalar_value_f64().unwrap(), 3.5);
    }

    #[test]
    fn dead_peer_fails_fast_with_unavailable() {
        let (c, ps, worker) = two_task_cluster();
        ps.resources.create_variable("w", Tensor::scalar_f64(3.5));
        c.mark_dead(&TaskKey::new("ps", 0), "supervisor observed exit");
        let err = worker
            .remote_var_read(&TaskKey::new("ps", 0), "w", None)
            .unwrap_err();
        assert!(matches!(err, CoreError::Unavailable(_)), "{err}");
        assert!(err.is_transient());
        assert!(c.is_dead(&TaskKey::new("ps", 0)));
        // Restarting the server clears the mark.
        c.start_server(TaskKey::new("ps", 0), 0, vec![]);
        assert!(!c.is_dead(&TaskKey::new("ps", 0)));
    }

    #[test]
    fn marking_dead_unblocks_parked_dequeue() {
        let (c, ps, worker) = two_task_cluster();
        create_task_queue(&ps, "results", 4);
        let w2 = Arc::clone(&worker);
        let c2 = Arc::clone(&c);
        let h =
            std::thread::spawn(move || w2.remote_dequeue(&TaskKey::new("ps", 0), "results", None));
        std::thread::sleep(std::time::Duration::from_millis(30));
        c2.mark_dead(&TaskKey::new("ps", 0), "crashed");
        let err = h.join().unwrap().unwrap_err();
        assert!(matches!(err, CoreError::Unavailable(_)), "{err}");
    }

    #[test]
    fn stale_generation_is_fenced_with_aborted() {
        let (c, _ps, worker) = two_task_cluster();
        c.advance_epoch();
        let err = worker
            .remote_var_read(&TaskKey::new("ps", 0), "w", None)
            .unwrap_err();
        assert!(matches!(err, CoreError::Aborted(_)), "{err}");
        assert!(!err.is_transient());
        // A server started after the bump belongs to the new generation.
        let w2 = c.start_server(TaskKey::new("worker", 0), 1, vec![0]);
        assert_eq!(w2.epoch(), c.epoch());
        assert!(w2.check_alive().is_ok());
    }

    #[test]
    fn partial_restart_supersedes_old_incarnation() {
        let (c, _ps, worker) = two_task_cluster();
        // Same epoch, but a replacement incarnation registered for the
        // key: the old server is fenced per-task, not per-generation.
        let w2 = c.start_server(TaskKey::new("worker", 0), 1, vec![0]);
        assert!(c.is_current(&w2));
        assert!(!c.is_current(&worker));
        let err = worker.check_alive().unwrap_err();
        assert!(matches!(err, CoreError::Aborted(_)), "{err}");
        assert!(!err.is_transient());
        assert!(w2.check_alive().is_ok());
        assert_eq!(w2.epoch(), worker.epoch());
    }

    #[test]
    fn hang_without_gate_degrades_to_abort() {
        let sim = tfhpc_sim::des::Sim::new();
        let (c, _ps, worker) = two_task_cluster();
        c.set_faults(Some(Arc::new(FaultPlan::new().hang(1, 0.5))));
        let got = Arc::new(parking_lot::Mutex::new(None));
        let got2 = Arc::clone(&got);
        sim.spawn("w", move || {
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(1.0);
            }
            *got2.lock() = Some(worker.check_alive());
        });
        sim.run();
        // No hang gate installed: the freeze degrades to Aborted
        // instead of deadlocking the simulation.
        let err = got.lock().take().unwrap().unwrap_err();
        assert!(matches!(err, CoreError::Aborted(_)), "{err}");
    }

    #[test]
    fn retry_policy_counts_attempts_on_dead_peer() {
        let (c, _ps, worker) = two_task_cluster();
        c.set_retry(tfhpc_core::RetryConfig {
            max_attempts: 3,
            base_backoff_s: 0.0,
            max_backoff_s: 0.0,
            jitter: 0.0,
        });
        c.mark_dead(&TaskKey::new("ps", 0), "down for good");
        let err = worker
            .remote_var_read(&TaskKey::new("ps", 0), "w", None)
            .unwrap_err();
        assert!(matches!(err, CoreError::Unavailable(_)), "{err}");
        assert_eq!(worker.resources.retries_total(), 2);
    }

    #[test]
    fn wire_transfer_roundtrips_bit_exactly_without_faults() {
        let (_c, _ps, worker) = two_task_cluster();
        let dense = Tensor::from_f64([3], vec![1.0 / 3.0, f64::MIN_POSITIVE, -0.0]).unwrap();
        let synth = Tensor::synthetic(tfhpc_tensor::DType::F32, [1 << 20], 0xABCD);
        let out = crate::wire::transfer(
            &worker,
            "test",
            &[0, 1],
            &[dense.clone(), synth],
            Transport::StagedCopy,
        )
        .unwrap();
        assert_eq!(out[0].as_f64().unwrap(), dense.as_f64().unwrap());
        assert!(out[1].is_synthetic());
        assert_eq!(out[1].synthetic_seed(), Some(0xABCD));
        assert_eq!(worker.resources.corruption_detected_total(), 0);
    }

    #[test]
    fn corruption_window_is_detected_and_counted_as_retransmittable() {
        let (c, ps, worker) = two_task_cluster();
        ps.resources.create_variable("w", Tensor::scalar_f64(2.5));
        // Real mode pins virtual time at 0: a window starting at 0
        // is active for every attempt, and with retries disabled the
        // transient DataLoss reaches the caller.
        c.set_faults(Some(Arc::new(FaultPlan::new().link_corrupt(0, 0.0, 1.0))));
        let err = worker
            .remote_var_read(&TaskKey::new("ps", 0), "w", None)
            .unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::DataLoss {
                    transient: true,
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.is_transient());
        assert_eq!(worker.resources.corruption_detected_total(), 1);
        assert_eq!(worker.resources.retransmits_total(), 1);
        // Clearing the plan restores clean reads, bit-exactly.
        c.set_faults(None);
        let v = worker
            .remote_var_read(&TaskKey::new("ps", 0), "w", None)
            .unwrap();
        assert_eq!(v.scalar_value_f64().unwrap(), 2.5);
    }

    #[test]
    fn corruption_detection_counts_each_retry_attempt() {
        let (c, ps, worker) = two_task_cluster();
        ps.resources.create_variable("w", Tensor::scalar_f64(1.0));
        c.set_faults(Some(Arc::new(FaultPlan::new().link_corrupt(1, 0.0, 1.0))));
        c.set_retry(tfhpc_core::RetryConfig {
            max_attempts: 4,
            base_backoff_s: 0.0,
            max_backoff_s: 0.0,
            jitter: 0.0,
        });
        let err = worker
            .remote_var_read(&TaskKey::new("ps", 0), "w", None)
            .unwrap_err();
        assert!(matches!(err, CoreError::DataLoss { .. }), "{err}");
        // Every attempt hit the (never-closing, in real mode) window.
        assert_eq!(worker.resources.corruption_detected_total(), 4);
        assert_eq!(worker.resources.retransmits_total(), 4);
        assert_eq!(worker.resources.retries_total(), 3);
    }

    #[test]
    fn remote_dequeue_deadline_expires_in_real_mode() {
        let (_c, ps, worker) = two_task_cluster();
        create_task_queue(&ps, "empty", 4);
        let err = worker
            .remote_dequeue_deadline(&TaskKey::new("ps", 0), "empty", None, 0.02)
            .unwrap_err();
        assert!(matches!(err, CoreError::DeadlineExceeded(_)), "{err}");
    }
}
