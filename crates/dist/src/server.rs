//! TensorFlow servers and the in-process runtime cluster.
//!
//! A [`Server`] is one TensorFlow task: it owns a resource manager
//! (variables, queues, iterators) and a device context, and can reach
//! peer servers through the [`TfCluster`] registry — the in-process
//! analogue of the gRPC connections a `tf.train.Server` establishes
//! from a cluster spec. Remote primitives (`remote_enqueue`,
//! `remote_assign_add`, ...) move tensors between tasks, charging the
//! simulated transport (gRPC/MPI/RDMA) with the correct source and
//! destination device residency.

use crate::cluster_spec::{ClusterSpec, TaskKey};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, Weak};
use tfhpc_core::{
    CoreError, DeviceCtx, FifoQueue, Graph, OpKernel, Resources, Result, Session, SessionOptions,
    TileStore,
};
use tfhpc_sim::device::{Cost, KernelClass};
use tfhpc_sim::net::Protocol;
use tfhpc_sim::topology::{ClusterSim, Loc};
use tfhpc_tensor::Tensor;

/// The runtime cluster: a registry of in-process servers plus the
/// transport configuration and (optionally) the simulated hardware.
pub struct TfCluster {
    /// The logical cluster specification.
    pub spec: ClusterSpec,
    /// Transport used for inter-task tensor movement.
    pub protocol: Protocol,
    /// Simulated hardware, when running on the virtual platform.
    pub sim: Option<Arc<ClusterSim>>,
    servers: RwLock<HashMap<TaskKey, Arc<Server>>>,
    stores: RwLock<HashMap<String, Arc<TileStore>>>,
}

impl TfCluster {
    /// Create a runtime cluster.
    pub fn new(spec: ClusterSpec, protocol: Protocol, sim: Option<Arc<ClusterSim>>) -> Arc<Self> {
        Arc::new(TfCluster {
            spec,
            protocol,
            sim,
            servers: RwLock::new(HashMap::new()),
            stores: RwLock::new(HashMap::new()),
        })
    }

    /// Create and register the server for `key`, bound to `node` with
    /// the given visible-GPU mapping.
    pub fn start_server(
        self: &Arc<Self>,
        key: TaskKey,
        node: usize,
        gpu_map: Vec<usize>,
    ) -> Arc<Server> {
        let devices = match &self.sim {
            Some(sim) => DeviceCtx::simulated(Arc::clone(sim), node, gpu_map),
            None => DeviceCtx::real(gpu_map.len()),
        };
        let server = Arc::new(Server {
            key: key.clone(),
            node,
            resources: Resources::new(),
            devices,
            cluster: Arc::downgrade(self),
        });
        self.servers.write().insert(key, Arc::clone(&server));
        server
    }

    /// Look up a running server.
    pub fn server(&self, key: &TaskKey) -> Result<Arc<Server>> {
        self.servers
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| CoreError::NotFound(format!("server {key}")))
    }

    /// Mount an existing tile store into this cluster's shared
    /// namespace (persistent Lustre data surviving across job
    /// allocations — e.g. checkpoints picked up by a restarted job).
    pub fn register_shared_store(&self, name: &str, store: Arc<TileStore>) {
        self.stores.write().insert(name.to_string(), store);
    }

    /// A cluster-wide shared tile store (the Lustre namespace both
    /// systems mount; every task sees the same files).
    pub fn shared_store(&self, name: &str) -> Arc<TileStore> {
        let mut stores = self.stores.write();
        if let Some(s) = stores.get(name) {
            return Arc::clone(s);
        }
        // Build through a scratch resource manager to reuse its ctor.
        let tmp = Resources::new();
        let store = tmp.create_store(name);
        stores.insert(name.to_string(), Arc::clone(&store));
        store
    }
}

/// One TensorFlow task's server.
pub struct Server {
    /// This task's identity.
    pub key: TaskKey,
    /// Node index on the (possibly simulated) cluster.
    pub node: usize,
    /// The task's resource manager.
    pub resources: Arc<Resources>,
    /// The task's device context.
    pub devices: DeviceCtx,
    cluster: Weak<TfCluster>,
}

impl Server {
    /// The owning runtime cluster.
    pub fn cluster(&self) -> Arc<TfCluster> {
        self.cluster.upgrade().expect("cluster dropped")
    }

    /// Open a session on this server over `graph`.
    pub fn session(&self, graph: Arc<Graph>) -> Session {
        Session::new(graph, Arc::clone(&self.resources), self.devices.clone())
    }

    /// [`Server::session`] with explicit threading options
    /// (`inter_op_threads` / `intra_op_threads`).
    pub fn session_with_options(&self, graph: Arc<Graph>, options: SessionOptions) -> Session {
        Session::with_options(
            graph,
            Arc::clone(&self.resources),
            self.devices.clone(),
            options,
        )
    }

    /// Physical location of a tensor on this task (`gpu` is the
    /// *visible* GPU index).
    pub fn loc(&self, gpu: Option<usize>) -> Loc {
        let slot = match (&self.devices.sim, gpu) {
            (Some(sim), Some(g)) => sim.gpu_map.get(g).copied(),
            _ => None,
        };
        Loc {
            node: self.node,
            gpu: slot,
        }
    }

    /// Charge the wire+staging cost of moving `bytes` from this task to
    /// `dst` (no-op in real mode). Returns modeled seconds.
    pub fn charge_transfer_to(
        &self,
        dst: &Server,
        src_gpu: Option<usize>,
        dst_gpu: Option<usize>,
        bytes: u64,
    ) -> f64 {
        let cluster = self.cluster();
        let Some(sim) = &cluster.sim else { return 0.0 };
        let path = sim.path(self.loc(src_gpu), dst.loc(dst_gpu), cluster.protocol);
        path.transfer(bytes)
    }

    fn peer(&self, target: &TaskKey) -> Result<Arc<Server>> {
        self.cluster().server(target)
    }

    /// Push a tuple into a queue owned by `target`, paying the transfer
    /// from this task (optionally from GPU-resident memory).
    pub fn remote_enqueue(
        &self,
        target: &TaskKey,
        queue: &str,
        tuple: Vec<Tensor>,
        src_gpu: Option<usize>,
    ) -> Result<()> {
        let peer = self.peer(target)?;
        let bytes: u64 = tuple.iter().map(|t| t.byte_size() as u64).sum();
        self.charge_transfer_to(&peer, src_gpu, None, bytes);
        peer.resources.queue(queue)?.enqueue(tuple)
    }

    /// Pop a tuple from a queue owned by `target`, paying the return
    /// transfer to this task.
    pub fn remote_dequeue(
        &self,
        target: &TaskKey,
        queue: &str,
        dst_gpu: Option<usize>,
    ) -> Result<Vec<Tensor>> {
        let peer = self.peer(target)?;
        let tuple = peer.resources.queue(queue)?.dequeue()?;
        let bytes: u64 = tuple.iter().map(|t| t.byte_size() as u64).sum();
        peer.charge_transfer_to(self, None, dst_gpu, bytes);
        Ok(tuple)
    }

    /// `target_var += value` on the parameter server `target` — the
    /// paper's STREAM operation. `dst_gpu` says where the variable
    /// lives on the target.
    pub fn remote_assign_add(
        &self,
        target: &TaskKey,
        var: &str,
        value: &Tensor,
        src_gpu: Option<usize>,
        dst_gpu: Option<usize>,
    ) -> Result<()> {
        let peer = self.peer(target)?;
        self.charge_transfer_to(&peer, src_gpu, dst_gpu, value.byte_size() as u64);
        peer.resources.variable(var)?.assign_add(value)?;
        // The add itself executes on the target's device.
        let placement = match dst_gpu {
            Some(g) => tfhpc_core::Placement::Gpu(g),
            None => tfhpc_core::Placement::Cpu,
        };
        // The accumulate streams through the target's memory as data
        // lands (pipelined with the receive), so charge one pass.
        let cost = Cost {
            flops: value.num_elements() as f64,
            bytes: value.byte_size() as f64,
            class: KernelClass::Blas1,
        };
        let dp = !matches!(value.dtype(), tfhpc_tensor::DType::F32);
        peer.devices.charge_kernel(placement, &cost, dp);
        Ok(())
    }

    /// Read a variable from `target`, paying the transfer back.
    pub fn remote_var_read(
        &self,
        target: &TaskKey,
        var: &str,
        dst_gpu: Option<usize>,
    ) -> Result<Tensor> {
        let peer = self.peer(target)?;
        let value = peer.resources.variable(var)?.read();
        peer.charge_transfer_to(self, None, dst_gpu, value.byte_size() as u64);
        Ok(value)
    }

    /// A graph kernel that enqueues its inputs into `target`'s queue.
    pub fn enqueue_kernel(
        self: &Arc<Self>,
        target: TaskKey,
        queue: &str,
        src_gpu: Option<usize>,
    ) -> Arc<dyn OpKernel> {
        Arc::new(RemoteEnqueueKernel {
            server: Arc::clone(self),
            target,
            queue: queue.to_string(),
            src_gpu,
        })
    }

    /// A graph kernel that dequeues an `arity`-tuple from `target`'s
    /// queue.
    pub fn dequeue_kernel(
        self: &Arc<Self>,
        target: TaskKey,
        queue: &str,
        arity: usize,
        dst_gpu: Option<usize>,
    ) -> Arc<dyn OpKernel> {
        Arc::new(RemoteDequeueKernel {
            server: Arc::clone(self),
            target,
            queue: queue.to_string(),
            arity,
            dst_gpu,
        })
    }
}

struct RemoteEnqueueKernel {
    server: Arc<Server>,
    target: TaskKey,
    queue: String,
    src_gpu: Option<usize>,
}

impl OpKernel for RemoteEnqueueKernel {
    fn name(&self) -> &str {
        "RemoteEnqueue"
    }

    fn compute(&self, _resources: &Resources, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.server
            .remote_enqueue(&self.target, &self.queue, inputs.to_vec(), self.src_gpu)?;
        Ok(vec![])
    }
}

struct RemoteDequeueKernel {
    server: Arc<Server>,
    target: TaskKey,
    queue: String,
    arity: usize,
    dst_gpu: Option<usize>,
}

impl OpKernel for RemoteDequeueKernel {
    fn name(&self) -> &str {
        "RemoteDequeue"
    }

    fn compute(&self, _resources: &Resources, _inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let tuple = self
            .server
            .remote_dequeue(&self.target, &self.queue, self.dst_gpu)?;
        if tuple.len() != self.arity {
            return Err(CoreError::Graph(format!(
                "remote queue `{}` yielded {} tensors, expected {}",
                self.queue,
                tuple.len(),
                self.arity
            )));
        }
        Ok(tuple)
    }
}

/// Queues created on a server must be registered under the server's
/// resources so remote ops can find them by name.
pub fn create_task_queue(server: &Server, name: &str, capacity: usize) -> Arc<FifoQueue> {
    server.resources.create_queue(name, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_task_cluster() -> (Arc<TfCluster>, Arc<Server>, Arc<Server>) {
        let spec = ClusterSpec::new([
            ("ps".to_string(), vec!["a:8888".to_string()]),
            ("worker".to_string(), vec!["b:8888".to_string()]),
        ]);
        let cluster = TfCluster::new(spec, Protocol::Rdma, None);
        let ps = cluster.start_server(TaskKey::new("ps", 0), 0, vec![]);
        let worker = cluster.start_server(TaskKey::new("worker", 0), 1, vec![0]);
        (cluster, ps, worker)
    }

    #[test]
    fn servers_register_and_resolve() {
        let (cluster, _ps, _w) = two_task_cluster();
        assert!(cluster.server(&TaskKey::new("ps", 0)).is_ok());
        assert!(cluster.server(&TaskKey::new("worker", 5)).is_err());
    }

    #[test]
    fn remote_assign_add_updates_ps_variable() {
        let (_c, ps, worker) = two_task_cluster();
        ps.resources
            .create_variable("acc", Tensor::from_f64([2], vec![1.0, 1.0]).unwrap());
        worker
            .remote_assign_add(
                &TaskKey::new("ps", 0),
                "acc",
                &Tensor::from_f64([2], vec![2.0, 3.0]).unwrap(),
                None,
                None,
            )
            .unwrap();
        assert_eq!(
            ps.resources
                .variable("acc")
                .unwrap()
                .read()
                .as_f64()
                .unwrap(),
            &[3.0, 4.0]
        );
    }

    #[test]
    fn remote_queue_roundtrip() {
        let (_c, ps, worker) = two_task_cluster();
        create_task_queue(&ps, "results", 4);
        worker
            .remote_enqueue(
                &TaskKey::new("ps", 0),
                "results",
                vec![Tensor::scalar_f64(9.0)],
                None,
            )
            .unwrap();
        let got = worker
            .remote_dequeue(&TaskKey::new("ps", 0), "results", None)
            .unwrap();
        assert_eq!(got[0].scalar_value_f64().unwrap(), 9.0);
    }

    #[test]
    fn remote_kernels_work_in_graphs() {
        let (_c, ps, worker) = two_task_cluster();
        create_task_queue(&ps, "q", 4);
        let mut g = Graph::new();
        let v = g.constant(Tensor::scalar_f64(7.0));
        let k = worker.enqueue_kernel(TaskKey::new("ps", 0), "q", None);
        let enq = g.custom(k, &[v], &[]);
        let dk = worker.dequeue_kernel(TaskKey::new("ps", 0), "q", 1, None);
        let deq = g.custom(dk, &[], &[enq]);
        let sess = worker.session(Arc::new(g));
        let out = sess.run(&[deq], &[]).unwrap();
        assert_eq!(out[0].scalar_value_f64().unwrap(), 7.0);
    }

    #[test]
    fn shared_store_is_cluster_wide() {
        let (c, ps, worker) = two_task_cluster();
        let store = c.shared_store("tiles");
        ps.resources.register_store(Arc::clone(&store));
        worker.resources.register_store(Arc::clone(&store));
        ps.resources
            .store("tiles")
            .unwrap()
            .put(vec![0], Tensor::scalar_f64(1.0));
        assert!(worker.resources.store("tiles").unwrap().get(&[0]).is_ok());
        // Idempotent.
        assert!(Arc::ptr_eq(&c.shared_store("tiles"), &store));
    }

    #[test]
    fn remote_var_read_returns_value() {
        let (_c, ps, worker) = two_task_cluster();
        ps.resources.create_variable("w", Tensor::scalar_f64(3.5));
        let v = worker
            .remote_var_read(&TaskKey::new("ps", 0), "w", None)
            .unwrap();
        assert_eq!(v.scalar_value_f64().unwrap(), 3.5);
    }
}
