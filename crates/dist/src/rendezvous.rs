//! Send/Recv rendezvous — the primitive TensorFlow's distributed
//! runtime inserts at cross-task graph edges (§II-B's C++ runtime
//! "handling communication across the network").
//!
//! A rendezvous channel matches [`send`]`(key, tensor)` against [`recv`]`(key)`
//! across tasks: the value is transferred over the cluster's modeled
//! transport and handed to the receiver, whichever side arrives first.
//! Keys follow TensorFlow's convention of naming producer, consumer and
//! edge, so the same graph edge used twice (two steps) gets two
//! distinct keys via the step counter.

use crate::cluster_spec::TaskKey;
use crate::server::Server;
use std::sync::Arc;
use tfhpc_core::{CoreError, OpKernel, Resources, Result};
use tfhpc_tensor::Tensor;

/// A rendezvous key: one logical tensor handoff.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RendezvousKey {
    /// Producing task.
    pub src: TaskKey,
    /// Consuming task.
    pub dst: TaskKey,
    /// Edge name (tensor name in the producing graph).
    pub edge: String,
    /// Step counter distinguishing successive executions.
    pub step: u64,
}

impl RendezvousKey {
    /// Build a key.
    pub fn new(src: TaskKey, dst: TaskKey, edge: &str, step: u64) -> RendezvousKey {
        RendezvousKey {
            src,
            dst,
            edge: edge.to_string(),
            step,
        }
    }

    /// The queue name backing this key on the consumer.
    fn channel(&self) -> String {
        format!(
            "rendezvous:{}->{};{};{}",
            self.src, self.dst, self.edge, self.step
        )
    }
}

/// One graph edge's rendezvous identity with the channel-name prefix
/// (`rendezvous:src->dst;edge;`) formatted once at construction.
/// Per-step channel names append only the step counter, so kernels
/// firing every step skip the repeated `TaskKey` Display formatting
/// that [`RendezvousKey::channel`] pays.
#[derive(Debug, Clone)]
pub struct RendezvousEdge {
    /// Producing task.
    pub src: TaskKey,
    /// Consuming task.
    pub dst: TaskKey,
    /// Edge name (tensor name in the producing graph).
    pub edge: String,
    /// Precomputed channel prefix — everything but the step counter.
    prefix: String,
}

impl RendezvousEdge {
    /// Build an edge, formatting the channel prefix once.
    pub fn new(src: TaskKey, dst: TaskKey, edge: &str) -> RendezvousEdge {
        let prefix = format!("rendezvous:{src}->{dst};{edge};");
        RendezvousEdge {
            src,
            dst,
            edge: edge.to_string(),
            prefix,
        }
    }

    /// The channel name for one step (prefix + step digits).
    fn channel(&self, step: u64) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(self.prefix.len() + 20);
        s.push_str(&self.prefix);
        let _ = write!(s, "{step}");
        s
    }

    /// [`send`] for this edge at `step`.
    pub fn send(
        &self,
        worker: &Arc<Server>,
        step: u64,
        value: Tensor,
        gpu: Option<usize>,
    ) -> Result<()> {
        send_channel(
            worker,
            &self.src,
            &self.dst,
            &self.channel(step),
            value,
            gpu,
        )
    }

    /// [`recv`] for this edge at `step`.
    pub fn recv(&self, worker: &Arc<Server>, step: u64, gpu: Option<usize>) -> Result<Tensor> {
        let channel = self.channel(step);
        let q = recv_queue_channel(worker, &self.dst, &channel)?;
        let tuple = q.dequeue()?;
        let tuple = verify_recv(worker, &channel, tuple)?;
        note_recv_channel(&channel);
        finish_recv(worker, tuple, gpu)
    }
}

/// Send `value` to the consumer named in `key`. Charges the transfer
/// (src residency `gpu`) and never blocks beyond transport time: the
/// rendezvous buffers one value per key.
pub fn send(
    worker: &Arc<Server>,
    key: &RendezvousKey,
    value: Tensor,
    gpu: Option<usize>,
) -> Result<()> {
    send_channel(worker, &key.src, &key.dst, &key.channel(), value, gpu)
}

/// [`send`] body over a pre-formatted channel name. The value is
/// framed with a CRC32C trailer before it lands in the consumer's
/// buffer; a corruption window active at send time fails verification
/// and the cluster's retry policy retransmits from the pristine copy.
fn send_channel(
    worker: &Arc<Server>,
    src: &TaskKey,
    dst: &TaskKey,
    channel: &str,
    value: Tensor,
    gpu: Option<usize>,
) -> Result<()> {
    if worker.key != *src {
        return Err(CoreError::Invalid(format!(
            "send of {channel} from wrong task {}",
            worker.key
        )));
    }
    let retry = worker.cluster().retry_config();
    retry.run("rendezvous_send", Some(&worker.resources), || {
        let cluster = worker.cluster();
        if let Some(reason) = cluster.death_reason(dst) {
            return Err(CoreError::Unavailable(format!(
                "consumer {dst} is down: {reason}"
            )));
        }
        let peer = cluster.server(dst)?;
        worker.charge_transfer_to(&peer, gpu, None, value.byte_size() as u64);
        let verified = crate::wire::transfer(
            worker,
            channel,
            &[worker.node, peer.node],
            std::slice::from_ref(&value),
            worker.transport_to(&peer),
        )?;
        let q = peer.resources.get_or_create_queue(channel, 1);
        q.enqueue(verified)?;
        tfhpc_obs::global()
            .counter("tfhpc_rendezvous_sends_total")
            .inc();
        let tr = tfhpc_obs::trace::global();
        if tr.is_enabled() {
            tr.flow_start(channel, tfhpc_obs::flow_id(channel));
        }
        Ok(())
    })
}

/// Receive the tensor for `key`, blocking until the producer sent it.
pub fn recv(worker: &Arc<Server>, key: &RendezvousKey, gpu: Option<usize>) -> Result<Tensor> {
    let channel = key.channel();
    let q = recv_queue_channel(worker, &key.dst, &channel)?;
    let tuple = q.dequeue()?;
    let tuple = verify_recv(worker, &channel, tuple)?;
    note_recv_channel(&channel);
    finish_recv(worker, tuple, gpu)
}

/// [`recv`] with a deadline: waits at most `timeout_s` (virtual
/// seconds under the DES, wall seconds otherwise). On expiry, returns
/// `Unavailable` when the producer is marked dead in the cluster (the
/// value will never arrive — callers may retry against a restarted
/// producer), else `DeadlineExceeded` (the producer may just be slow).
pub fn recv_deadline(
    worker: &Arc<Server>,
    key: &RendezvousKey,
    gpu: Option<usize>,
    timeout_s: f64,
) -> Result<Tensor> {
    let channel = key.channel();
    let q = recv_queue_channel(worker, &key.dst, &channel)?;
    match q.dequeue_timeout(timeout_s) {
        Ok(tuple) => {
            let tuple = verify_recv(worker, &channel, tuple)?;
            note_recv_channel(&channel);
            finish_recv(worker, tuple, gpu)
        }
        Err(CoreError::DeadlineExceeded(msg)) if worker.cluster().is_dead(&key.src) => Err(
            CoreError::Unavailable(format!("producer {} is down; {msg}", key.src)),
        ),
        Err(e) => Err(e),
    }
}

/// The consumer-side queue for a channel (validates the caller is the
/// consumer; the receiver always parks on its *own* queue).
fn recv_queue_channel(
    worker: &Arc<Server>,
    dst: &TaskKey,
    channel: &str,
) -> Result<Arc<tfhpc_core::FifoQueue>> {
    if worker.key != *dst {
        return Err(CoreError::Invalid(format!(
            "recv of {channel} on wrong task {}",
            worker.key
        )));
    }
    Ok(worker.resources.get_or_create_queue(channel, 1))
}

/// Verify a dequeued rendezvous tuple on the consumer side: the frame
/// check runs under the cluster's retry policy, so a corruption window
/// active at delivery time is ridden out by retransmitting from the
/// buffered pristine tuple instead of popping the queue again.
fn verify_recv(worker: &Arc<Server>, channel: &str, tuple: Vec<Tensor>) -> Result<Vec<Tensor>> {
    worker
        .cluster()
        .retry_config()
        .run("rendezvous_recv", Some(&worker.resources), || {
            // Consumer-side landing check on the consumer's own link
            // (the producer job is not recoverable from the channel
            // string; rendezvous links are intra-job in practice).
            crate::wire::transfer(
                worker,
                channel,
                &[worker.node],
                &tuple,
                worker.transport_to(worker),
            )
        })
}

/// Count a completed receive and close its trace flow (the arrow from
/// the producer's send to this dequeue in the trace viewer).
fn note_recv_channel(channel: &str) {
    tfhpc_obs::global()
        .counter("tfhpc_rendezvous_recvs_total")
        .inc();
    let tr = tfhpc_obs::trace::global();
    if tr.is_enabled() {
        tr.flow_end(channel, tfhpc_obs::flow_id(channel));
    }
}

/// Unwrap a rendezvous tuple and land it on the consumer's GPU.
fn finish_recv(worker: &Arc<Server>, tuple: Vec<Tensor>, gpu: Option<usize>) -> Result<Tensor> {
    let value = tuple
        .into_iter()
        .next()
        .ok_or_else(|| CoreError::Invalid("empty rendezvous message".into()))?;
    if let Some(g) = gpu {
        // Land the tensor on the consumer's GPU.
        worker.devices.charge_transfer(
            tfhpc_core::Placement::Cpu,
            tfhpc_core::Placement::Gpu(g),
            value.byte_size() as u64,
        );
    }
    Ok(value)
}

/// Graph kernel sending its single input through the rendezvous (the
/// `_Send` node TensorFlow splits cross-device edges into). The edge's
/// channel prefix is formatted once at construction; each step only
/// appends the counter — key construction stays off the hot loop.
pub struct SendKernel {
    /// Local server.
    pub server: Arc<Server>,
    /// The rendezvous edge (this task → consumer).
    pub edge: RendezvousEdge,
    /// Source GPU residency.
    pub gpu: Option<usize>,
    /// Per-execution step counter.
    step: std::sync::atomic::AtomicU64,
}

impl SendKernel {
    /// Build a `_Send` kernel.
    pub fn new(server: Arc<Server>, dst: TaskKey, edge: &str, gpu: Option<usize>) -> SendKernel {
        let edge = RendezvousEdge::new(server.key.clone(), dst, edge);
        SendKernel {
            server,
            edge,
            gpu,
            step: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl OpKernel for SendKernel {
    fn name(&self) -> &str {
        "_Send"
    }

    fn compute(&self, _res: &Resources, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let step = self.step.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.edge
            .send(&self.server, step, inputs[0].clone(), self.gpu)?;
        Ok(vec![])
    }
}

/// Graph kernel receiving one tensor from the rendezvous (`_Recv`),
/// with the channel prefix precomputed like [`SendKernel`]'s.
pub struct RecvKernel {
    /// Local server.
    pub server: Arc<Server>,
    /// The rendezvous edge (producer → this task).
    pub edge: RendezvousEdge,
    /// Destination GPU residency.
    pub gpu: Option<usize>,
    step: std::sync::atomic::AtomicU64,
}

impl RecvKernel {
    /// Build a `_Recv` kernel.
    pub fn new(server: Arc<Server>, src: TaskKey, edge: &str, gpu: Option<usize>) -> RecvKernel {
        let edge = RendezvousEdge::new(src, server.key.clone(), edge);
        RecvKernel {
            server,
            edge,
            gpu,
            step: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl OpKernel for RecvKernel {
    fn name(&self) -> &str {
        "_Recv"
    }

    fn compute(&self, _res: &Resources, _inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let step = self.step.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Ok(vec![self.edge.recv(&self.server, step, self.gpu)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_spec::ClusterSpec;
    use crate::server::TfCluster;
    use tfhpc_core::Graph;
    use tfhpc_sim::net::Protocol;

    fn pair() -> (Arc<TfCluster>, Arc<Server>, Arc<Server>) {
        let spec = ClusterSpec::new([
            ("a".to_string(), vec!["a:1".to_string()]),
            ("b".to_string(), vec!["b:1".to_string()]),
        ]);
        let c = TfCluster::new(spec, Protocol::Rdma, None);
        let a = c.start_server(TaskKey::new("a", 0), 0, vec![]);
        let b = c.start_server(TaskKey::new("b", 0), 1, vec![]);
        (c, a, b)
    }

    #[test]
    fn send_then_recv() {
        let (_c, a, b) = pair();
        let key = RendezvousKey::new(a.key.clone(), b.key.clone(), "x", 0);
        send(&a, &key, Tensor::scalar_f64(5.0), None).unwrap();
        let got = recv(&b, &key, None).unwrap();
        assert_eq!(got.scalar_value_f64().unwrap(), 5.0);
    }

    #[test]
    fn recv_blocks_until_send() {
        let (_c, a, b) = pair();
        let key = RendezvousKey::new(a.key.clone(), b.key.clone(), "y", 3);
        let k2 = key.clone();
        let h = std::thread::spawn(move || recv(&b, &k2, None).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        send(&a, &key, Tensor::scalar_f64(9.0), None).unwrap();
        assert_eq!(h.join().unwrap().scalar_value_f64().unwrap(), 9.0);
    }

    #[test]
    fn steps_keep_values_separate() {
        let (_c, a, b) = pair();
        for step in 0..3u64 {
            let key = RendezvousKey::new(a.key.clone(), b.key.clone(), "z", step);
            send(&a, &key, Tensor::scalar_i64(step as i64), None).unwrap();
        }
        // Receive out of order: each step's value is its own.
        for step in [2u64, 0, 1] {
            let key = RendezvousKey::new(a.key.clone(), b.key.clone(), "z", step);
            let got = recv(&b, &key, None).unwrap();
            assert_eq!(got.scalar_value_i64().unwrap(), step as i64);
        }
    }

    #[test]
    fn recv_deadline_times_out_then_succeeds() {
        let (_c, a, b) = pair();
        let key = RendezvousKey::new(a.key.clone(), b.key.clone(), "slow", 0);
        let err = recv_deadline(&b, &key, None, 0.02).unwrap_err();
        assert!(matches!(err, CoreError::DeadlineExceeded(_)), "{err}");
        send(&a, &key, Tensor::scalar_f64(4.0), None).unwrap();
        let got = recv_deadline(&b, &key, None, 0.02).unwrap();
        assert_eq!(got.scalar_value_f64().unwrap(), 4.0);
    }

    #[test]
    fn recv_deadline_reports_dead_producer_as_unavailable() {
        let (c, a, b) = pair();
        let key = RendezvousKey::new(a.key.clone(), b.key.clone(), "gone", 0);
        c.mark_dead(&a.key, "crashed");
        let err = recv_deadline(&b, &key, None, 0.02).unwrap_err();
        assert!(matches!(err, CoreError::Unavailable(_)), "{err}");
        // And sending *to* a dead consumer fails fast.
        c.mark_dead(&b.key, "crashed too");
        let err = send(&a, &key, Tensor::scalar_f64(0.0), None).unwrap_err();
        assert!(matches!(err, CoreError::Unavailable(_)), "{err}");
    }

    #[test]
    fn wrong_task_rejected() {
        let (_c, a, b) = pair();
        let key = RendezvousKey::new(a.key.clone(), b.key.clone(), "w", 0);
        assert!(send(&b, &key, Tensor::scalar_f64(0.0), None).is_err());
        assert!(recv(&a, &key, None).is_err());
    }

    #[test]
    fn send_recv_kernels_split_a_graph_edge() {
        let (_c, a, b) = pair();
        // Producer graph on task a: c = 21, send(c).
        let mut ga = Graph::new();
        let c = ga.constant(Tensor::scalar_f64(21.0));
        let send_k: Arc<dyn OpKernel> = Arc::new(SendKernel::new(
            Arc::clone(&a),
            b.key.clone(),
            "edge0",
            None,
        ));
        let send_node = ga.custom(send_k, &[c], &[]);
        // Consumer graph on task b: recv -> double.
        let mut gb = Graph::new();
        let recv_k: Arc<dyn OpKernel> = Arc::new(RecvKernel::new(
            Arc::clone(&b),
            a.key.clone(),
            "edge0",
            None,
        ));
        let r = gb.custom(recv_k, &[], &[]);
        let doubled = gb.scale(r, 2.0);

        let sa = a.session(Arc::new(ga));
        let sb = b.session(Arc::new(gb));
        // Run both steps twice: the step counter separates executions.
        for _ in 0..2 {
            sa.run_no_fetch(&[send_node], &[]).unwrap();
            let out = sb.run(&[doubled], &[]).unwrap();
            assert_eq!(out[0].scalar_value_f64().unwrap(), 42.0);
        }
    }
}
