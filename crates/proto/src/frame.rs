//! Checksummed framing for wire transfers and checkpoint files.
//!
//! A frame wraps an opaque payload with a magic marker, a length and a
//! CRC32C (Castagnoli) trailer computed over header *and* payload, so a
//! receiver can tell a pristine message from one that was bit-flipped
//! or truncated in flight (the silent-corruption failure mode of RDMA
//! verbs and torn PFS writes). The checksum is implemented in-tree
//! because the build environment is offline: the SSE4.2 `crc32`
//! instruction when the CPU has it (detected at runtime), falling back
//! to slicing-by-8 over compile-time tables.
//!
//! Layout: `magic (4) | uvarint payload_len | payload | crc32c (4, LE)`
//! with the CRC covering everything before it.

use crate::{wire, ProtoError};
use bytes::{BufMut, BytesMut};

/// Frame marker: any payload not starting with it is rejected outright.
pub const FRAME_MAGIC: [u8; 4] = *b"TFHF";

/// CRC32C (Castagnoli) polynomial, reflected form.
const POLY: u32 = 0x82F6_3B78;

/// Slicing-by-8 lookup tables, generated at compile time.
static CRC_TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// CRC32C of `data` (full init/finalize; standard Castagnoli check
/// value: `crc32c(b"123456789") == 0xE306_9283`).
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Continue a CRC32C over `data`, starting from a previous result.
#[inline]
pub fn crc32c_append(seed: u32, data: &[u8]) -> u32 {
    !crc_update(!seed, data)
}

/// Advance the raw (pre-finalize) CRC state over `data`, using the
/// SSE4.2 `crc32` instruction when the CPU has it and the slicing-by-8
/// tables otherwise. Both paths compute the identical function (the
/// instruction implements the same Castagnoli polynomial), which the
/// agreement test pins.
#[inline]
fn crc_update(crc: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if hw_crc_available() {
        // SAFETY: gated on runtime SSE4.2 detection.
        return unsafe { crc_update_hw(crc, data) };
    }
    crc_update_sw(crc, data)
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn hw_crc_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| std::arch::is_x86_feature_detected!("sse4.2"))
}

/// Bytes per lane of the 3-way interleaved hardware path. The `crc32`
/// instruction has a 3-cycle latency but 1-cycle throughput, so three
/// independent chains run ~3x faster than one; lane results are merged
/// with a precomputed shift-by-`LANE`-zero-bytes table.
#[cfg(target_arch = "x86_64")]
const LANE: usize = 80;

#[cfg(target_arch = "x86_64")]
static SHIFT_LANE: [[u32; 256]; 4] = build_shift_tables(LANE);

/// Tables applying the linear operator "advance the CRC state over
/// `len` zero bytes", one per state byte, built at compile time. CRC
/// updates are linear over GF(2), so
/// `update(s, A || B) = shift(update(s, A)) ^ update(0, B)`.
#[cfg(target_arch = "x86_64")]
const fn build_shift_tables(len: usize) -> [[u32; 256]; 4] {
    let mut tables = [[0u32; 256]; 4];
    let mut byte = 0;
    while byte < 4 {
        let mut v = 0;
        while v < 256 {
            let mut state = (v as u32) << (8 * byte);
            let mut k = 0;
            while k < len {
                state = (state >> 8) ^ CRC_TABLES[0][(state & 0xFF) as usize];
                k += 1;
            }
            tables[byte][v] = state;
            v += 1;
        }
        byte += 1;
    }
    tables
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn shift_lane(s: u32) -> u32 {
    SHIFT_LANE[0][(s & 0xFF) as usize]
        ^ SHIFT_LANE[1][((s >> 8) & 0xFF) as usize]
        ^ SHIFT_LANE[2][((s >> 16) & 0xFF) as usize]
        ^ SHIFT_LANE[3][(s >> 24) as usize]
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc_update_hw(crc: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut state = crc as u64;
    let mut rest = data;
    while rest.len() >= 3 * LANE {
        let (head, tail) = rest.split_at(3 * LANE);
        let (mut sb, mut sc) = (0u64, 0u64);
        // SAFETY: `head` is exactly 3*LANE bytes, so lane `i` reads
        // stay within `[i*LANE, (i+1)*LANE)`; unaligned reads are fine
        // on x86_64 and skip the per-word bounds checks the slice
        // indexing forms would carry into this hot loop.
        let p = head.as_ptr();
        let mut k = 0;
        while k < LANE {
            let a = (p.add(k) as *const u64).read_unaligned();
            let b = (p.add(LANE + k) as *const u64).read_unaligned();
            let c = (p.add(2 * LANE + k) as *const u64).read_unaligned();
            state = _mm_crc32_u64(state, u64::from_le(a));
            sb = _mm_crc32_u64(sb, u64::from_le(b));
            sc = _mm_crc32_u64(sc, u64::from_le(c));
            k += 8;
        }
        state = (shift_lane(shift_lane(state as u32) ^ sb as u32) ^ sc as u32) as u64;
        rest = tail;
    }
    let mut chunks = rest.chunks_exact(8);
    for c in chunks.by_ref() {
        state = _mm_crc32_u64(state, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let mut crc = state as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

fn crc_update_sw(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Wrap `payload` in a checksummed frame.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(payload.len() + 16);
    buf.put_slice(&FRAME_MAGIC);
    wire::put_uvarint(&mut buf, payload.len() as u64);
    buf.put_slice(payload);
    let crc = crc32c(&buf);
    buf.put_u32_le(crc);
    buf.to_vec()
}

/// Verify a frame and return a view of its payload.
///
/// Any deviation — missing/wrong magic, bad length, trailing garbage,
/// or a checksum mismatch — returns [`ProtoError::ChecksumMismatch`]
/// (truncation that cuts into the header returns
/// [`ProtoError::Truncated`]). Never panics, whatever the input.
pub fn open(frame: &[u8]) -> Result<&[u8], ProtoError> {
    if frame.len() < FRAME_MAGIC.len() + 1 + 4 {
        return Err(ProtoError::Truncated);
    }
    if frame[..FRAME_MAGIC.len()] != FRAME_MAGIC {
        return Err(ProtoError::ChecksumMismatch);
    }
    let (len, rest) = wire::get_uvarint(&frame[FRAME_MAGIC.len()..])?;
    let len = len as usize;
    if rest.len() != len + 4 {
        return Err(ProtoError::ChecksumMismatch);
    }
    let (payload, trailer) = rest.split_at(len);
    let want = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let got = crc32c(&frame[..frame.len() - 4]);
    if got != want {
        return Err(ProtoError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Deterministically corrupt a frame copy: flip one bit chosen by
/// `entropy`, somewhere past the magic (so [`open`] reports a checksum
/// mismatch rather than a missing frame). Used by the fault-injection
/// plane to model link bit-flips reproducibly.
pub fn flip_bit(frame: &mut [u8], entropy: u64) {
    if frame.len() <= FRAME_MAGIC.len() {
        return;
    }
    let span = frame.len() - FRAME_MAGIC.len();
    let byte = FRAME_MAGIC.len() + (entropy as usize % span);
    let bit = (entropy >> 32) % 8;
    frame[byte] ^= 1 << bit;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_check_value() {
        // The standard Castagnoli test vector.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn crc32c_empty_and_incremental() {
        assert_eq!(crc32c(b""), 0);
        // Byte-at-a-time must agree with the sliced bulk path.
        let data: Vec<u8> = (0..=255u8).cycle().take(1027).collect();
        let bulk = crc32c(&data);
        let mut slow = 0xFFFF_FFFFu32;
        for &b in &data {
            slow = (slow >> 8) ^ CRC_TABLES[0][((slow ^ b as u32) & 0xFF) as usize];
        }
        assert_eq!(bulk, !slow);
    }

    #[test]
    fn hw_and_sw_paths_agree() {
        // Both CRC implementations must compute the identical function
        // across every chunk-boundary alignment, so a frame sealed on a
        // CPU with SSE4.2 opens on one without it (and vice versa).
        let data: Vec<u8> = (0..2048u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for start in [0usize, 1, 3, 7, 8] {
            for len in [
                0usize, 1, 7, 8, 9, 63, 64, 65, 239, 240, 241, 480, 512, 1024,
            ] {
                let slice = &data[start..start + len];
                let sw = !crc_update_sw(!0, slice);
                assert_eq!(crc32c(slice), sw, "start {start} len {len}");
                #[cfg(target_arch = "x86_64")]
                if hw_crc_available() {
                    // SAFETY: gated on runtime SSE4.2 detection.
                    let hw = !unsafe { crc_update_hw(!0, slice) };
                    assert_eq!(hw, sw, "hw/sw divergence at start {start} len {len}");
                }
            }
        }
    }

    #[test]
    fn seal_open_roundtrip() {
        for n in [0usize, 1, 7, 8, 9, 255, 4096] {
            let payload: Vec<u8> = (0..n).map(|i| (i * 31) as u8).collect();
            let frame = seal(&payload);
            assert_eq!(open(&frame).unwrap(), payload.as_slice());
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let frame = seal(b"the quick brown fox");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(open(&bad).is_err(), "flip at {byte}:{bit} went undetected");
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let frame = seal(b"payload under test");
        for cut in 0..frame.len() {
            assert!(open(&frame[..cut]).is_err(), "truncation at {cut}");
        }
        // Trailing garbage too.
        let mut long = frame.clone();
        long.push(0);
        assert!(open(&long).is_err());
    }

    #[test]
    fn flip_bit_always_invalidates() {
        let frame = seal(b"abcdef");
        for entropy in [0u64, 1, 0xDEAD_BEEF, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            let mut bad = frame.clone();
            flip_bit(&mut bad, entropy);
            assert_ne!(bad, frame);
            assert_eq!(open(&bad), Err(ProtoError::ChecksumMismatch));
        }
    }
}
