//! # tfhpc-proto
//!
//! A compact, protobuf-style binary wire format. TensorFlow serializes
//! its dataflow graphs, checkpoints and RPC payloads with Protocol
//! Buffers; this crate plays the same role for `tfhpc`:
//!
//! * varint / ZigZag integer encoding ([`wire`])
//! * tagged, length-delimited fields with forward-compatible skipping
//!   ([`Encoder`] / [`Decoder`])
//! * a [`Message`] trait for encode/decode round-trips
//! * the 2 GB message-size ceiling the paper calls out as a real
//!   TensorFlow graph limitation ([`MAX_MESSAGE_BYTES`]).

pub mod frame;
pub mod wire;

use bytes::{BufMut, BytesMut};
use std::fmt;

/// Protocol Buffers (and TensorFlow GraphDef) limit any single message
/// to 2 GiB. The paper discusses hitting this with unrolled loops; we
/// enforce the same ceiling when serializing graphs.
pub const MAX_MESSAGE_BYTES: usize = 2 * 1024 * 1024 * 1024;

/// Errors produced while encoding or decoding messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Input ended in the middle of a value.
    Truncated,
    /// A varint used more than 10 bytes.
    VarintOverflow,
    /// Wire type byte was not one of the known encodings.
    InvalidWireType(u8),
    /// A message exceeded [`MAX_MESSAGE_BYTES`].
    MessageTooLarge(usize),
    /// A required field was absent or held an invalid value.
    InvalidField(&'static str),
    /// A UTF-8 string field held invalid bytes.
    InvalidUtf8,
    /// A checksummed frame failed verification: the payload was
    /// bit-flipped, truncated or otherwise altered after sealing.
    ChecksumMismatch,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "input truncated"),
            ProtoError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            ProtoError::InvalidWireType(w) => write!(f, "invalid wire type {w}"),
            ProtoError::MessageTooLarge(n) => {
                write!(f, "message of {n} bytes exceeds the 2 GB protobuf limit")
            }
            ProtoError::InvalidField(name) => write!(f, "invalid or missing field `{name}`"),
            ProtoError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::ChecksumMismatch => {
                write!(f, "frame checksum mismatch (corrupted or truncated data)")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Wire encodings, mirroring protobuf's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Base-128 varint.
    Varint = 0,
    /// Little-endian 8-byte scalar.
    Fixed64 = 1,
    /// Length-prefixed byte payload (strings, bytes, sub-messages, packed arrays).
    LengthDelimited = 2,
    /// Little-endian 4-byte scalar.
    Fixed32 = 5,
}

impl WireType {
    fn from_u8(v: u8) -> Result<WireType, ProtoError> {
        match v {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::LengthDelimited),
            5 => Ok(WireType::Fixed32),
            other => Err(ProtoError::InvalidWireType(other)),
        }
    }
}

/// Streaming encoder writing tagged fields into a growable buffer.
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Fresh encoder with a small initial capacity.
    pub fn new() -> Self {
        Encoder {
            buf: BytesMut::with_capacity(128),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and return the encoded bytes, enforcing the 2 GB limit.
    pub fn finish(self) -> Result<Vec<u8>, ProtoError> {
        if self.buf.len() > MAX_MESSAGE_BYTES {
            return Err(ProtoError::MessageTooLarge(self.buf.len()));
        }
        Ok(self.buf.to_vec())
    }

    fn tag(&mut self, field: u32, wt: WireType) {
        wire::put_uvarint(&mut self.buf, ((field as u64) << 3) | wt as u64);
    }

    /// Unsigned varint field.
    pub fn put_u64(&mut self, field: u32, v: u64) {
        self.tag(field, WireType::Varint);
        wire::put_uvarint(&mut self.buf, v);
    }

    /// Signed (ZigZag) varint field.
    pub fn put_i64(&mut self, field: u32, v: i64) {
        self.tag(field, WireType::Varint);
        wire::put_uvarint(&mut self.buf, wire::zigzag_encode(v));
    }

    /// Boolean varint field.
    pub fn put_bool(&mut self, field: u32, v: bool) {
        self.put_u64(field, v as u64);
    }

    /// 64-bit float field.
    pub fn put_f64(&mut self, field: u32, v: f64) {
        self.tag(field, WireType::Fixed64);
        self.buf.put_u64_le(v.to_bits());
    }

    /// 32-bit float field.
    pub fn put_f32(&mut self, field: u32, v: f32) {
        self.tag(field, WireType::Fixed32);
        self.buf.put_u32_le(v.to_bits());
    }

    /// Raw bytes field.
    pub fn put_bytes(&mut self, field: u32, v: &[u8]) {
        self.tag(field, WireType::LengthDelimited);
        wire::put_uvarint(&mut self.buf, v.len() as u64);
        self.buf.put_slice(v);
    }

    /// UTF-8 string field.
    pub fn put_str(&mut self, field: u32, v: &str) {
        self.put_bytes(field, v.as_bytes());
    }

    /// Nested message field.
    pub fn put_message<M: Message>(&mut self, field: u32, m: &M) -> Result<(), ProtoError> {
        let mut inner = Encoder::new();
        m.encode(&mut inner)?;
        let bytes = inner.finish()?;
        self.put_bytes(field, &bytes);
        Ok(())
    }

    /// Packed array of f32 (little-endian), as protobuf packed repeated.
    /// On little-endian hosts the element bytes already are wire order,
    /// so the whole payload is appended in one bulk slice copy instead
    /// of a per-element bits round-trip.
    pub fn put_packed_f32(&mut self, field: u32, vs: &[f32]) {
        self.tag(field, WireType::LengthDelimited);
        wire::put_uvarint(&mut self.buf, (vs.len() * 4) as u64);
        #[cfg(target_endian = "little")]
        {
            // SAFETY: f32 has no padding and every bit pattern is a
            // valid byte sequence; u8 has alignment 1.
            let bytes =
                unsafe { std::slice::from_raw_parts(vs.as_ptr() as *const u8, vs.len() * 4) };
            self.buf.put_slice(bytes);
        }
        #[cfg(not(target_endian = "little"))]
        for v in vs {
            self.buf.put_u32_le(v.to_bits());
        }
    }

    /// Packed array of f64 (little-endian); bulk-copied like
    /// [`Encoder::put_packed_f32`].
    pub fn put_packed_f64(&mut self, field: u32, vs: &[f64]) {
        self.tag(field, WireType::LengthDelimited);
        wire::put_uvarint(&mut self.buf, (vs.len() * 8) as u64);
        #[cfg(target_endian = "little")]
        {
            // SAFETY: as in put_packed_f32.
            let bytes =
                unsafe { std::slice::from_raw_parts(vs.as_ptr() as *const u8, vs.len() * 8) };
            self.buf.put_slice(bytes);
        }
        #[cfg(not(target_endian = "little"))]
        for v in vs {
            self.buf.put_u64_le(v.to_bits());
        }
    }

    /// Packed array of u64 varints.
    pub fn put_packed_u64(&mut self, field: u32, vs: &[u64]) {
        let mut tmp = BytesMut::new();
        for v in vs {
            wire::put_uvarint(&mut tmp, *v);
        }
        self.tag(field, WireType::LengthDelimited);
        wire::put_uvarint(&mut self.buf, tmp.len() as u64);
        self.buf.put_slice(&tmp);
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

/// One decoded field: its number and value view.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue<'a> {
    /// Varint payload (unsigned; use [`wire::zigzag_decode`] for signed).
    Varint(u64),
    /// 8-byte little-endian payload.
    Fixed64(u64),
    /// 4-byte little-endian payload.
    Fixed32(u32),
    /// Length-delimited payload.
    Bytes(&'a [u8]),
}

impl<'a> FieldValue<'a> {
    /// Interpret as u64 (varint or fixed).
    pub fn as_u64(&self) -> Result<u64, ProtoError> {
        match self {
            FieldValue::Varint(v) => Ok(*v),
            FieldValue::Fixed64(v) => Ok(*v),
            FieldValue::Fixed32(v) => Ok(*v as u64),
            FieldValue::Bytes(_) => Err(ProtoError::InvalidField("expected scalar")),
        }
    }

    /// Interpret as ZigZag-encoded i64.
    pub fn as_i64(&self) -> Result<i64, ProtoError> {
        Ok(wire::zigzag_decode(self.as_u64()?))
    }

    /// Interpret as bool.
    pub fn as_bool(&self) -> Result<bool, ProtoError> {
        Ok(self.as_u64()? != 0)
    }

    /// Interpret as f64 from fixed64 bits.
    pub fn as_f64(&self) -> Result<f64, ProtoError> {
        match self {
            FieldValue::Fixed64(v) => Ok(f64::from_bits(*v)),
            _ => Err(ProtoError::InvalidField("expected fixed64")),
        }
    }

    /// Interpret as f32 from fixed32 bits.
    pub fn as_f32(&self) -> Result<f32, ProtoError> {
        match self {
            FieldValue::Fixed32(v) => Ok(f32::from_bits(*v)),
            _ => Err(ProtoError::InvalidField("expected fixed32")),
        }
    }

    /// Interpret as raw bytes.
    pub fn as_bytes(&self) -> Result<&'a [u8], ProtoError> {
        match self {
            FieldValue::Bytes(b) => Ok(b),
            _ => Err(ProtoError::InvalidField("expected bytes")),
        }
    }

    /// Interpret as UTF-8 string.
    pub fn as_str(&self) -> Result<&'a str, ProtoError> {
        std::str::from_utf8(self.as_bytes()?).map_err(|_| ProtoError::InvalidUtf8)
    }

    /// Interpret as packed f32 array. On little-endian hosts the wire
    /// payload is byte-copied straight into the result vector (one
    /// `memcpy`, no per-element decode or intermediate buffer).
    pub fn as_packed_f32(&self) -> Result<Vec<f32>, ProtoError> {
        let b = self.as_bytes()?;
        if b.len() % 4 != 0 {
            return Err(ProtoError::Truncated);
        }
        #[cfg(target_endian = "little")]
        {
            let n = b.len() / 4;
            let mut out: Vec<f32> = Vec::with_capacity(n);
            // SAFETY: destination capacity holds exactly `n` f32s; the
            // LE wire bytes are each element's in-memory bit pattern.
            unsafe {
                std::ptr::copy_nonoverlapping(b.as_ptr(), out.as_mut_ptr() as *mut u8, b.len());
                out.set_len(n);
            }
            Ok(out)
        }
        #[cfg(not(target_endian = "little"))]
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    /// Interpret as packed f64 array; bulk-copied like
    /// [`FieldValue::as_packed_f32`].
    pub fn as_packed_f64(&self) -> Result<Vec<f64>, ProtoError> {
        let b = self.as_bytes()?;
        if b.len() % 8 != 0 {
            return Err(ProtoError::Truncated);
        }
        #[cfg(target_endian = "little")]
        {
            let n = b.len() / 8;
            let mut out: Vec<f64> = Vec::with_capacity(n);
            // SAFETY: as in as_packed_f32.
            unsafe {
                std::ptr::copy_nonoverlapping(b.as_ptr(), out.as_mut_ptr() as *mut u8, b.len());
                out.set_len(n);
            }
            Ok(out)
        }
        #[cfg(not(target_endian = "little"))]
        Ok(b.chunks_exact(8)
            .map(|c| {
                f64::from_bits(u64::from_le_bytes([
                    c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                ]))
            })
            .collect())
    }

    /// Interpret as packed u64 varint array.
    pub fn as_packed_u64(&self) -> Result<Vec<u64>, ProtoError> {
        let mut b = self.as_bytes()?;
        let mut out = Vec::new();
        while !b.is_empty() {
            let (v, rest) = wire::get_uvarint(b)?;
            out.push(v);
            b = rest;
        }
        Ok(out)
    }
}

/// Streaming decoder over an encoded byte slice.
pub struct Decoder<'a> {
    rest: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Decode over `bytes`, enforcing the 2 GB limit.
    pub fn new(bytes: &'a [u8]) -> Result<Self, ProtoError> {
        if bytes.len() > MAX_MESSAGE_BYTES {
            return Err(ProtoError::MessageTooLarge(bytes.len()));
        }
        Ok(Decoder { rest: bytes })
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Read the next `(field_number, value)` pair, or `None` at end.
    pub fn next_field(&mut self) -> Result<Option<(u32, FieldValue<'a>)>, ProtoError> {
        if self.rest.is_empty() {
            return Ok(None);
        }
        let (key, rest) = wire::get_uvarint(self.rest)?;
        self.rest = rest;
        let field = (key >> 3) as u32;
        let wt = WireType::from_u8((key & 7) as u8)?;
        let value = match wt {
            WireType::Varint => {
                let (v, rest) = wire::get_uvarint(self.rest)?;
                self.rest = rest;
                FieldValue::Varint(v)
            }
            WireType::Fixed64 => {
                if self.rest.len() < 8 {
                    return Err(ProtoError::Truncated);
                }
                let (head, rest) = self.rest.split_at(8);
                self.rest = rest;
                FieldValue::Fixed64(u64::from_le_bytes(head.try_into().unwrap()))
            }
            WireType::Fixed32 => {
                if self.rest.len() < 4 {
                    return Err(ProtoError::Truncated);
                }
                let (head, rest) = self.rest.split_at(4);
                self.rest = rest;
                FieldValue::Fixed32(u32::from_le_bytes(head.try_into().unwrap()))
            }
            WireType::LengthDelimited => {
                let (len, rest) = wire::get_uvarint(self.rest)?;
                let len = len as usize;
                if rest.len() < len {
                    return Err(ProtoError::Truncated);
                }
                let (head, rest) = rest.split_at(len);
                self.rest = rest;
                FieldValue::Bytes(head)
            }
        };
        Ok(Some((field, value)))
    }
}

/// Types serializable in the tagged wire format.
pub trait Message: Sized {
    /// Write all fields into `enc`.
    fn encode(&self, enc: &mut Encoder) -> Result<(), ProtoError>;
    /// Rebuild from encoded bytes. Unknown fields must be skipped.
    fn decode(bytes: &[u8]) -> Result<Self, ProtoError>;

    /// Encode to a fresh byte vector.
    fn to_bytes(&self) -> Result<Vec<u8>, ProtoError> {
        let mut enc = Encoder::new();
        self.encode(&mut enc)?;
        enc.finish()
    }

    /// Encode into a CRC32C-checksummed frame ([`frame::seal`]).
    fn to_framed_bytes(&self) -> Result<Vec<u8>, ProtoError> {
        Ok(frame::seal(&self.to_bytes()?))
    }

    /// Verify a checksummed frame and decode the payload within.
    fn decode_framed(bytes: &[u8]) -> Result<Self, ProtoError> {
        Self::decode(frame::open(bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Default)]
    struct Sample {
        id: u64,
        delta: i64,
        name: String,
        weights: Vec<f32>,
        flag: bool,
        nested: Option<Box<Sample>>,
    }

    impl Message for Sample {
        fn encode(&self, enc: &mut Encoder) -> Result<(), ProtoError> {
            enc.put_u64(1, self.id);
            enc.put_i64(2, self.delta);
            enc.put_str(3, &self.name);
            enc.put_packed_f32(4, &self.weights);
            enc.put_bool(5, self.flag);
            if let Some(n) = &self.nested {
                enc.put_message(6, n.as_ref())?;
            }
            Ok(())
        }

        fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
            let mut d = Decoder::new(bytes)?;
            let mut out = Sample::default();
            while let Some((field, value)) = d.next_field()? {
                match field {
                    1 => out.id = value.as_u64()?,
                    2 => out.delta = value.as_i64()?,
                    3 => out.name = value.as_str()?.to_string(),
                    4 => out.weights = value.as_packed_f32()?,
                    5 => out.flag = value.as_bool()?,
                    6 => out.nested = Some(Box::new(Sample::decode(value.as_bytes()?)?)),
                    _ => {} // forward compatibility: skip unknown
                }
            }
            Ok(out)
        }
    }

    #[test]
    fn roundtrip_message() {
        let msg = Sample {
            id: 42,
            delta: -7,
            name: "tile_1_2.npy".into(),
            weights: vec![1.5, -2.25, 0.0, f32::MAX],
            flag: true,
            nested: Some(Box::new(Sample {
                id: 7,
                delta: i64::MIN,
                name: "ps".into(),
                weights: vec![],
                flag: false,
                nested: None,
            })),
        };
        let bytes = msg.to_bytes().unwrap();
        let back = Sample::decode(&bytes).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn unknown_fields_are_skipped() {
        let mut enc = Encoder::new();
        enc.put_u64(1, 9);
        enc.put_str(99, "future field");
        enc.put_f64(98, 3.25);
        let bytes = enc.finish().unwrap();
        let back = Sample::decode(&bytes).unwrap();
        assert_eq!(back.id, 9);
    }

    #[test]
    fn truncated_input_errors() {
        let msg = Sample {
            id: 1,
            name: "x".into(),
            ..Default::default()
        };
        let bytes = msg.to_bytes().unwrap();
        for cut in 1..bytes.len() {
            // Every strict prefix must either decode to *something* (if it
            // ends on a field boundary) or produce Truncated — never panic.
            let _ = Sample::decode(&bytes[..cut]);
        }
        assert_eq!(
            Sample::decode(&bytes[..bytes.len() - 1]),
            Err(ProtoError::Truncated)
        );
    }

    #[test]
    fn packed_arrays_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_packed_f64(1, &[1.0, -2.5, f64::EPSILON]);
        enc.put_packed_u64(2, &[0, 1, 127, 128, u64::MAX]);
        let bytes = enc.finish().unwrap();
        let mut d = Decoder::new(&bytes).unwrap();
        let (f, v) = d.next_field().unwrap().unwrap();
        assert_eq!(f, 1);
        assert_eq!(v.as_packed_f64().unwrap(), vec![1.0, -2.5, f64::EPSILON]);
        let (f, v) = d.next_field().unwrap().unwrap();
        assert_eq!(f, 2);
        assert_eq!(v.as_packed_u64().unwrap(), vec![0, 1, 127, 128, u64::MAX]);
        assert!(d.next_field().unwrap().is_none());
    }

    #[test]
    fn invalid_wire_type_rejected() {
        // key = field 1, wire type 3 (deprecated group start)
        let bytes = [(1 << 3) | 3u8];
        let mut d = Decoder::new(&bytes).unwrap();
        assert_eq!(d.next_field(), Err(ProtoError::InvalidWireType(3)));
    }

    #[test]
    fn f32_f64_bit_exact() {
        let mut enc = Encoder::new();
        enc.put_f32(1, f32::NAN);
        enc.put_f64(2, -0.0);
        let bytes = enc.finish().unwrap();
        let mut d = Decoder::new(&bytes).unwrap();
        let (_, v) = d.next_field().unwrap().unwrap();
        assert!(v.as_f32().unwrap().is_nan());
        let (_, v) = d.next_field().unwrap().unwrap();
        assert!(v.as_f64().unwrap().is_sign_negative());
    }
}
