//! Low-level varint and ZigZag primitives.

use crate::ProtoError;
use bytes::{BufMut, BytesMut};

/// Append `v` as a base-128 varint (1–10 bytes).
pub fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a varint from the front of `bytes`; returns `(value, rest)`.
pub fn get_uvarint(bytes: &[u8]) -> Result<(u64, &[u8]), ProtoError> {
    let mut value: u64 = 0;
    for (i, byte) in bytes.iter().enumerate() {
        if i >= 10 {
            return Err(ProtoError::VarintOverflow);
        }
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only contribute one bit.
        if i == 9 && payload > 1 {
            return Err(ProtoError::VarintOverflow);
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Ok((value, &bytes[i + 1..]));
        }
    }
    Err(ProtoError::Truncated)
}

/// Map a signed integer onto unsigned so small magnitudes stay short.
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Number of bytes `v` occupies as a varint.
pub fn uvarint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, v);
        assert_eq!(buf.len(), uvarint_len(v));
        let (back, rest) = get_uvarint(&buf).unwrap();
        assert_eq!(back, v);
        assert!(rest.is_empty());
    }

    #[test]
    fn varint_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip(v);
        }
    }

    #[test]
    fn varint_dense_small_range() {
        for v in 0..=4096u64 {
            roundtrip(v);
        }
    }

    #[test]
    fn varint_truncated() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, u64::MAX);
        assert_eq!(
            get_uvarint(&buf[..buf.len() - 1]),
            Err(ProtoError::Truncated)
        );
        assert_eq!(get_uvarint(&[]), Err(ProtoError::Truncated));
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes.
        let bytes = [0x80u8; 11];
        assert_eq!(get_uvarint(&bytes), Err(ProtoError::VarintOverflow));
        // 10 bytes but 10th contributes >1 bit.
        let mut bytes = [0x80u8; 10];
        bytes[9] = 0x02;
        assert_eq!(get_uvarint(&bytes), Err(ProtoError::VarintOverflow));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [
            0i64,
            -1,
            1,
            -2,
            2,
            i64::MAX,
            i64::MIN,
            i32::MAX as i64,
            i32::MIN as i64,
        ] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes encode small.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }
}
