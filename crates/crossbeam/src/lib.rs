//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! The build environment has no network or registry cache, so the real
//! crate cannot be fetched; this shim provides the unbounded MPMC
//! channel surface (`channel::unbounded`, clonable `Sender`/`Receiver`,
//! disconnect-on-last-drop) that `tfhpc-parallel` feeds its thread pool
//! through, implemented over a mutex-protected deque and a condvar.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, Inner<T>> {
            match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    /// Sending half; clonable. The channel disconnects for receivers
    /// once every sender is dropped.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; clonable. Receivers drain remaining messages
    /// after disconnect, then see [`RecvError`].
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Send failed: every receiver is gone. Carries the message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Receive failed: channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; never blocks. Errors when all receivers
        /// are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.lock();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.lock();
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = match self.0.not_empty.wait(inner) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Non-blocking pop; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.0.lock().queue.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_disconnects_after_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(1u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn multi_consumer_work_sharing() {
        let (tx, rx) = unbounded();
        let n = 1000;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0usize;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }
}
