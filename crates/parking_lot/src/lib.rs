//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! The build environment has no network or registry cache, so the real
//! crate cannot be fetched; this shim maps the API subset the workspace
//! uses (`Mutex`, `RwLock`, `Condvar` with guard-based `wait`) onto
//! `std::sync`. Poisoning is swallowed — like parking_lot, a panic in a
//! critical section does not poison the lock for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion over `std::sync::Mutex`, without lock poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard(Some(guard))
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` lets [`Condvar::wait`]
/// move the std guard out and back while the caller holds `&mut`.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during wait");
        let inner = match self.0.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.0 = Some(inner);
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`. Returns a
    /// result whose `timed_out()` reports whether the deadline passed
    /// (parking_lot's `wait_for` signature).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during wait");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Reader-writer lock over `std::sync::RwLock`, without poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poisoned) => RwLockReadGuard(poisoned.into_inner()),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poisoned) => RwLockWriteGuard(poisoned.into_inner()),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
