//! # tfhpc — TensorFlow-style dataflow for HPC, with a simulated
//! heterogeneous supercomputer substrate
//!
//! A from-scratch Rust reproduction of *"TensorFlow Doing HPC: An
//! Evaluation of TensorFlow Performance in HPC Applications"* (Chien et
//! al., 2019). This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense n-d tensors, host math kernels (GEMM, FFT,
//!   BLAS-1), synthetic payloads for simulation-scale runs.
//! * [`parallel`] — the scoped thread pool behind every CPU kernel.
//! * [`proto`] — the protobuf-style wire format (GraphDefs,
//!   checkpoints, 2 GB limit).
//! * [`core`] — the dataflow framework: graphs, sessions, placement,
//!   variables, FIFO queues, datasets, checkpoints, timelines.
//! * [`sim`] — the discrete-event simulation of the paper's two
//!   supercomputers (Tegner, Kebnekaise): device/network/PFS models.
//! * [`slurm`] — the simulated workload manager.
//! * [`dist`] — the distributed runtime: cluster specs, the Slurm
//!   Cluster Resolver, servers, remote tensor ops, queue-pair reducers.
//! * [`apps`] — the paper's four applications: STREAM, tiled matmul,
//!   CG, FFT.
//!
//! ## Example
//!
//! The paper's Listing 1 — random matrices on the CPU, multiplied on
//! the GPU, executed through a session:
//!
//! ```
//! use std::sync::Arc;
//! use tfhpc::core::{DeviceCtx, Graph, Placement, Resources, Session};
//! use tfhpc::tensor::DType;
//!
//! let mut g = Graph::new();
//! let (a, b) = g.with_device(Placement::Cpu, |g| {
//!     (
//!         g.random_uniform(DType::F32, [3, 3], 1),
//!         g.random_uniform(DType::F32, [3, 3], 2),
//!     )
//! });
//! let c = g.with_device(Placement::Gpu(0), |g| g.matmul(a, b));
//!
//! let sess = Session::new(Arc::new(g), Resources::new(), DeviceCtx::real(1));
//! let ret_c = sess.run(&[c], &[]).unwrap();
//! assert_eq!(ret_c[0].shape().dims(), &[3, 3]);
//! ```
//!
//! ## Running a paper experiment
//!
//! ```
//! use tfhpc::apps::{run_stream, StreamConfig};
//! use tfhpc::sim::net::Protocol;
//!
//! // Fig. 7, one point: 16 MB over RDMA between two simulated Tegner
//! // nodes with GPU-resident tensors.
//! let report = run_stream(
//!     &tfhpc::sim::platform::tegner_k420(),
//!     &StreamConfig {
//!         size_bytes: 16 << 20,
//!         invocations: 10,
//!         on_gpu: true,
//!         protocol: Protocol::Rdma,
//!         simulated: true,
//!     },
//! )
//! .unwrap();
//! // The paper records saturation near 1300 MB/s on this path.
//! assert!(report.mbs > 800.0 && report.mbs < 1500.0);
//! ```

pub use tfhpc_apps as apps;
pub use tfhpc_core as core;
pub use tfhpc_dist as dist;
pub use tfhpc_obs as obs;
pub use tfhpc_parallel as parallel;
pub use tfhpc_proto as proto;
pub use tfhpc_sim as sim;
pub use tfhpc_slurm as slurm;
pub use tfhpc_tensor as tensor;
