//! `tfhpc` — command-line driver for the simulated experiments.
//!
//! ```text
//! tfhpc platforms
//! tfhpc stream  [--platform <p>] [--proto grpc|mpi|rdma] [--mb N] [--cpu]
//! tfhpc matmul  [--platform <p>] [--n N] [--tile T] [--gpus G] [--proto ..]
//! tfhpc cg      [--platform <p>] [--n N] [--gpus G] [--iters I] [--ring]
//! tfhpc fft     [--platform <p>] [--log2n L] [--tiles T] [--gpus G]
//! ```
//!
//! Platforms: `tegner-k420`, `tegner-k80`, `kebnekaise-k80`,
//! `kebnekaise-v100`. Everything runs in virtual time on the modeled
//! clusters; no GPUs required.

use std::collections::HashMap;
use tfhpc::apps::{
    run_cg, run_fft, run_matmul, run_stream, CgConfig, CgReduction, FftConfig, MatmulConfig,
    StreamConfig,
};
use tfhpc::sim::net::Protocol;
use tfhpc::sim::platform::{self, Platform};

fn usage() -> ! {
    eprintln!(
        "usage: tfhpc <platforms|stream|matmul|cg|fft> [options]\n\
         common options: --platform <tegner-k420|tegner-k80|kebnekaise-k80|kebnekaise-v100>\n\
         \x20               --proto <grpc|mpi|rdma>\n\
         stream: --mb <size MB> --cpu (host-resident tensors)\n\
         matmul: --n <dim> --tile <dim> --gpus <workers>\n\
         cg:     --n <dim> --gpus <workers> --iters <k> --ring (allreduce)\n\
         fft:    --log2n <L> --tiles <T> --gpus <workers>"
    );
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut bare = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            // Boolean flags take no value; valued flags consume the next arg.
            let boolean = matches!(name, "cpu" | "ring");
            if boolean {
                flags.insert(name.to_string(), "true".to_string());
            } else {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("flag --{name} needs a value");
                    usage();
                };
                flags.insert(name.to_string(), v.clone());
            }
        } else {
            bare.push(a.clone());
        }
        i += 1;
    }
    (flags, bare)
}

fn platform_by_name(name: &str) -> Option<Platform> {
    match name {
        "tegner-k420" => Some(platform::tegner_k420()),
        "tegner-k80" => Some(platform::tegner_k80()),
        "kebnekaise-k80" => Some(platform::kebnekaise_k80()),
        "kebnekaise-v100" => Some(platform::kebnekaise_v100()),
        _ => None,
    }
}

fn proto_by_name(name: &str) -> Option<Protocol> {
    match name {
        "grpc" => Some(Protocol::Grpc),
        "mpi" => Some(Protocol::Mpi),
        "rdma" => Some(Protocol::Rdma),
        _ => None,
    }
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage()
    };
    let (flags, _bare) = parse_flags(&args[1..]);

    if cmd == "platforms" {
        println!(
            "{:<18} {:<8} {:>10} {:>16}",
            "name", "gpu", "gpus/node", "tf-instances"
        );
        for (name, p) in [
            ("tegner-k420", platform::tegner_k420()),
            ("tegner-k80", platform::tegner_k80()),
            ("kebnekaise-k80", platform::kebnekaise_k80()),
            ("kebnekaise-v100", platform::kebnekaise_v100()),
        ] {
            println!(
                "{:<18} {:<8} {:>10} {:>16}",
                name, p.node.gpu.name, p.node.gpus_per_node, p.node.tf_instances_per_node
            );
        }
        return;
    }

    let platform = match platform_by_name(
        flags
            .get("platform")
            .map(String::as_str)
            .unwrap_or("tegner-k80"),
    ) {
        Some(p) => p,
        None => {
            eprintln!("unknown platform");
            usage()
        }
    };
    let proto = match proto_by_name(flags.get("proto").map(String::as_str).unwrap_or("rdma")) {
        Some(p) => p,
        None => {
            eprintln!("unknown protocol");
            usage()
        }
    };

    match cmd.as_str() {
        "stream" => {
            let mb: u64 = get(&flags, "mb", 16);
            let cfg = StreamConfig {
                size_bytes: mb << 20,
                invocations: 100,
                on_gpu: !flags.contains_key("cpu"),
                protocol: proto,
                simulated: true,
            };
            let r = match run_stream(&platform, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            println!(
                "{} / {} / {} MB / {}: {:.0} MB/s ({:.4} s for 100 invocations)",
                platform.label,
                proto.name(),
                mb,
                if cfg.on_gpu { "GPU" } else { "CPU" },
                r.mbs,
                r.elapsed_s
            );
        }
        "matmul" => {
            let cfg = MatmulConfig {
                n: get(&flags, "n", 32768),
                tile: get(&flags, "tile", 8192),
                workers: get(&flags, "gpus", 4),
                reducers: 2,
                protocol: proto,
                simulated: true,
                prefetch: 3,
            };
            let r = match run_matmul(&platform, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            println!(
                "{} / {}x{} / tiles {} / {} GPUs: {:.0} Gflop/s in {:.1} virtual s",
                platform.label, cfg.n, cfg.n, cfg.tile, cfg.workers, r.gflops, r.elapsed_s
            );
        }
        "cg" => {
            let cfg = CgConfig {
                n: get(&flags, "n", 32768),
                workers: get(&flags, "gpus", 4),
                iterations: get(&flags, "iters", 500),
                protocol: proto,
                simulated: true,
                checkpoint_every: None,
                resume: false,
                reduction: if flags.contains_key("ring") {
                    CgReduction::Ring
                } else {
                    CgReduction::QueuePair
                },
            };
            let r = match run_cg(&platform, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            println!(
                "{} / N={} / {} GPUs / {} iters / {:?}: {:.1} Gflop/s in {:.1} virtual s",
                platform.label,
                cfg.n,
                cfg.workers,
                cfg.iterations,
                cfg.reduction,
                r.gflops,
                r.elapsed_s
            );
        }
        "fft" => {
            let cfg = FftConfig {
                log2_n: get(&flags, "log2n", 31),
                tiles: get(&flags, "tiles", 128),
                workers: get(&flags, "gpus", 4),
                protocol: proto,
                simulated: true,
                merge_cost_factor: 1.0,
            };
            let r = match run_fft(&platform, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            println!(
                "{} / 2^{} / {} tiles / {} GPUs: {:.1} Gflop/s (collect {:.1} s, total {:.1} s)",
                platform.label,
                cfg.log2_n,
                cfg.tiles,
                cfg.workers,
                r.gflops,
                r.collect_s,
                r.total_s
            );
        }
        _ => usage(),
    }
}
