//! Domain example: checkpoint/restart of a long-running solver — the
//! HPC capability §II-B highlights. A CG run checkpoints its variables
//! (via the framework `Saver`) into the shared store every few
//! iterations; a second, *fresh* job allocation resumes from the
//! checkpoint and finishes the solve. The restarted solution matches an
//! uninterrupted run bit-for-bit.
//!
//! Run with: `cargo run --release --example checkpoint_restart`

use tfhpc_apps::cg::{gather_solution, run_cg_with_store, CgConfig, CgReduction};
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::tegner_k80;
use tfhpc_tensor::ops;

fn main() {
    let base = CgConfig {
        n: 96,
        workers: 2,
        iterations: 24,
        protocol: Protocol::Grpc,
        simulated: false,
        checkpoint_every: None,
        resume: false,
        reduction: CgReduction::QueuePair,
    };
    let platform = tegner_k80();

    // Reference: one uninterrupted 24-iteration run.
    let (full_report, full_store) =
        run_cg_with_store(&platform, &base, None).expect("uninterrupted run");
    let x_full = gather_solution(&full_store, &base).expect("x_full");
    println!(
        "uninterrupted run: 24 iterations, |r|^2 = {:.3e}",
        full_report.rs_final
    );

    // Interrupted: run 12 iterations, checkpointing at 12.
    let first_half = CgConfig {
        iterations: 12,
        checkpoint_every: Some(12),
        ..base.clone()
    };
    let (_r1, store) = run_cg_with_store(&platform, &first_half, None).expect("first half");
    println!("first job: stopped after 12 iterations (checkpoint written to Lustre)");

    // Restart: a NEW job allocation mounts the same store and resumes.
    let second_half = CgConfig {
        iterations: 24,
        resume: true,
        reduction: CgReduction::QueuePair,
        ..base.clone()
    };
    let (r2, store) = run_cg_with_store(&platform, &second_half, Some(store)).expect("resumed run");
    println!(
        "restarted job: resumed at iteration 12, ran to 24, |r|^2 = {:.3e}",
        r2.rs_final
    );

    let x_resumed = gather_solution(&store, &base).expect("x_resumed");
    let diff = ops::sub(&x_resumed, &x_full).unwrap();
    let err = ops::norm2(&diff).unwrap().scalar_value_f64().unwrap();
    println!("|x_restarted - x_uninterrupted| = {err:.3e}");
    assert!(err < 1e-12, "restart diverged from the uninterrupted run");
    println!("ok: checkpoint/restart reproduces the uninterrupted solve exactly.");
}
