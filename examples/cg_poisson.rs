//! Domain example: solve a dense SPD linear system with the
//! distributed CG solver in *real* mode (actual numerics on host
//! threads), then cross-check against the serial baseline — the
//! engineering/physics PDE-solver use case §IV motivates.
//!
//! Run with: `cargo run --release --example cg_poisson`

use tfhpc_apps::cg::{gather_solution, run_cg_with_store, serial_cg, CgConfig, CgReduction};
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::tegner_k80;
use tfhpc_tensor::{matmul::matvec, ops};

fn main() {
    let cfg = CgConfig {
        n: 128,
        workers: 4,
        iterations: 40,
        protocol: Protocol::Grpc,
        simulated: false,
        checkpoint_every: Some(10),
        resume: false,
        reduction: CgReduction::QueuePair,
    };
    println!(
        "solving a {0}x{0} SPD system with {1} workers, {2} iterations ...",
        cfg.n, cfg.workers, cfg.iterations
    );

    let (report, store) = run_cg_with_store(&tegner_k80(), &cfg, None).expect("distributed CG");
    println!(
        "distributed: {:.3} s wall, final |r|^2 = {:.3e}",
        report.elapsed_s, report.rs_final
    );

    // Assemble the distributed solution and compare to the serial CG.
    let x = gather_solution(&store, &cfg).expect("gather x");
    // Rebuild the same system for the reference run.
    let a = tfhpc_tensor::rng::random_spd(cfg.n, 0xC6, cfg.n as f64);
    let ones = tfhpc_tensor::Tensor::full_f64([cfg.n], 1.0);
    let b = matvec(&a, &ones).unwrap();
    let (x_ref, rs_ref) = serial_cg(&a, &b, cfg.iterations).expect("serial CG");
    println!("serial baseline: final |r|^2 = {rs_ref:.3e}");

    let diff = ops::sub(&x, &x_ref).unwrap();
    let err = ops::norm2(&diff).unwrap().scalar_value_f64().unwrap();
    let norm = ops::norm2(&x_ref).unwrap().scalar_value_f64().unwrap();
    println!("|x_dist - x_serial| / |x_serial| = {:.3e}", err / norm);
    assert!(err / norm < 1e-8, "distributed and serial CG disagree");

    // The known solution is ~ones (b = A*ones): sanity-check a few entries.
    let xv = x.as_f64().unwrap();
    println!(
        "x[0..4] = [{:.6}, {:.6}, {:.6}, {:.6}]  (expect ~1.0)",
        xv[0], xv[1], xv[2], xv[3]
    );
    println!("ok: distributed CG matches the serial baseline.");
}
