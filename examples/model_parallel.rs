//! Model parallelism (§II-A): "the computational graph is split across
//! different devices such as in Fig. 1" — as opposed to the data
//! parallelism the four applications use. This example pipelines one
//! graph across two GPUs of a simulated Kebnekaise V100 node and shows,
//! via the Timeline, that each stage executed on its own device with a
//! PCIe transfer in between.
//!
//! Run with: `cargo run --release --example model_parallel`

use std::sync::Arc;
use tfhpc::core::{Graph, Placement, Timeline};
use tfhpc::dist::{launch, JobSpec, LaunchConfig};
use tfhpc::sim::net::Protocol;
use tfhpc::sim::platform::kebnekaise_v100;
use tfhpc::tensor::{DType, Tensor};

fn main() {
    let cfg = LaunchConfig::simulated(
        kebnekaise_v100(),
        // One task that sees BOTH GPUs of the node (model parallelism
        // happens inside one worker).
        vec![JobSpec::new("worker", 1, 2)],
        Protocol::Rdma,
    );
    let timeline = Arc::new(Timeline::new());
    let tl = Arc::clone(&timeline);
    let out = launch(&cfg, move |ctx| {
        let n = 4096;
        let mut g = Graph::new();
        // Stage 1 on /gpu:0: C1 = A·B
        let (a, b) = g.with_device(Placement::Cpu, |g| {
            (
                g.constant(Tensor::synthetic(DType::F32, [n, n], 1)),
                g.constant(Tensor::synthetic(DType::F32, [n, n], 2)),
            )
        });
        let c1 = g.with_device(Placement::Gpu(0), |g| g.matmul(a, b));
        // Stage 2 on /gpu:1: C2 = C1·B (the edge crosses devices).
        let c2 = g.with_device(Placement::Gpu(1), |g| g.matmul(c1, b));

        let mut sess = ctx.server.session(Arc::new(g));
        sess.set_timeline(Arc::clone(&tl));
        let t0 = ctx.now();
        sess.run(&[c2], &[])?;
        println!(
            "pipelined two matmul stages across both GPUs in {:.4} virtual s",
            ctx.now() - t0
        );
        Ok(())
    })
    .expect("launch");
    drop(out);

    println!("\nop placements (from the Timeline):");
    let mut devices = Vec::new();
    for ev in timeline.events() {
        if ev.name.starts_with("MatMul") {
            println!(
                "  {:<12} on {:<14} ({:.2} ms)",
                ev.name,
                ev.device,
                ev.dur_s * 1e3
            );
            devices.push(ev.device.clone());
        }
    }
    assert_eq!(devices.len(), 2, "two pipeline stages expected");
    assert_ne!(devices[0], devices[1], "stages must run on distinct GPUs");
    println!("\nok: the graph was split across two devices (paper Fig. 1's model");
    println!("parallelism), with the cross-device edge paying a PCIe transfer.");
}
