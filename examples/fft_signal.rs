//! Domain example: spectral analysis of a synthetic signal with the
//! distributed FFT in *real* mode — tiles are transformed by workers,
//! collected and merged by the merger, and the dominant frequencies are
//! read off the assembled spectrum (signal processing, §IV's FFT
//! motivation).
//!
//! Run with: `cargo run --release --example fft_signal`

use tfhpc_apps::fft::{run_fft_with_store, FftConfig};
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::tegner_k80;

fn main() {
    let cfg = FftConfig {
        log2_n: 13, // 8192-point signal
        tiles: 8,
        workers: 4,
        protocol: Protocol::Grpc,
        simulated: false,
        merge_cost_factor: 0.0,
    };
    println!(
        "distributed FFT of a 2^{} signal across {} workers ({} interleaved tiles)...",
        cfg.log2_n, cfg.workers, cfg.tiles
    );
    let (report, store) = run_fft_with_store(&tegner_k80(), &cfg).expect("fft run");
    println!(
        "collection {:.4} s, total (incl. merge) {:.4} s",
        report.collect_s, report.total_s
    );

    let spectrum = store.get(&[-1]).expect("merged spectrum");
    let sv = spectrum.as_c128().expect("dense spectrum");
    let n = sv.len();

    // Top-3 spectral peaks (positive frequencies).
    let mut peaks: Vec<(usize, f64)> = (1..n / 2).map(|k| (k, sv[k].abs())).collect();
    peaks.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ndominant frequency bins (positive half):");
    for (k, mag) in peaks.iter().take(3) {
        println!(
            "  bin {k:>5}  |X| = {mag:.1}  (f = {:.4} cycles/sample)",
            *k as f64 / n as f64
        );
    }
    // The generator mixes sin(0.37 t) and 0.5 cos(1.7 t) (plus an
    // imaginary cos(0.11 t)): the bins nearest those frequencies must
    // stand far above the spectrum's average level (leakage spreads
    // each tone over a few neighbouring bins, so exact top-3 membership
    // is not required).
    let avg: f64 = sv.iter().map(|v| v.abs()).sum::<f64>() / n as f64;
    for omega in [0.37f64, 1.7, 0.11] {
        let f = omega / (2.0 * std::f64::consts::PI);
        let bin = (f * n as f64).round() as usize;
        let local = (bin.saturating_sub(1)..=bin + 1)
            .map(|k| sv[k].abs())
            .fold(0.0, f64::max);
        println!("  tone omega={omega:.2} -> bin {bin}: |X| = {local:.1} (avg level {avg:.1})");
        assert!(
            local > 20.0 * avg,
            "tone at omega={omega} not prominent: {local} vs avg {avg}"
        );
    }
    println!("ok: spectrum shows the injected tones.");
}
