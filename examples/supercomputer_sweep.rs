//! Domain example: a *simulated-supercomputer* campaign — sweep the
//! tiled matmul across both modeled systems and protocols from a single
//! laptop process, the core workflow this reproduction enables.
//! Everything here runs in virtual time against the calibrated Tegner /
//! Kebnekaise models (no GPUs required).
//!
//! Run with: `cargo run --release --example supercomputer_sweep`

use tfhpc_apps::matmul::{run_matmul, MatmulConfig};
use tfhpc_apps::stream::{run_stream, StreamConfig};
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::{all_platforms, kebnekaise_k80, tegner_k80};

fn main() {
    println!("platforms available:");
    for p in all_platforms() {
        println!(
            "  {:<18} {} x {} per node, {} TF instance(s)/node",
            p.label, p.node.gpus_per_node, p.node.gpu.name, p.node.tf_instances_per_node
        );
    }

    println!("\n1) link check: 16 MB STREAM over each protocol (GPU-resident):");
    for platform in [tegner_k80(), kebnekaise_k80()] {
        for proto in Protocol::ALL {
            let r = run_stream(
                &platform,
                &StreamConfig {
                    size_bytes: 16 << 20,
                    invocations: 50,
                    on_gpu: true,
                    protocol: proto,
                    simulated: true,
                },
            )
            .expect("stream");
            println!(
                "  {:<16} {:<5} {:>8.0} MB/s",
                platform.label,
                proto.name(),
                r.mbs
            );
        }
    }

    println!("\n2) matmul strong scaling, 32768^2 / 8192^2 tiles, RDMA:");
    for platform in [tegner_k80(), kebnekaise_k80()] {
        let mut prev: Option<f64> = None;
        for workers in [2usize, 4, 8] {
            let r = run_matmul(
                &platform,
                &MatmulConfig {
                    n: 32768,
                    tile: 8192,
                    workers,
                    reducers: 2,
                    protocol: Protocol::Rdma,
                    simulated: true,
                    prefetch: 3,
                },
            )
            .expect("matmul");
            let speedup = prev.map(|p| r.gflops / p);
            println!(
                "  {:<16} {workers:>2} GPUs: {:>7.0} Gflop/s in {:>6.1} virtual s{}",
                platform.label,
                r.gflops,
                r.elapsed_s,
                speedup.map(|s| format!("  ({s:.2}x)")).unwrap_or_default()
            );
            prev = Some(r.gflops);
        }
    }
    println!("\n(the Kebnekaise rows scale worse — 4 TF instances share each node's");
    println!(" Lustre client, NIC and PCIe slots, the paper's Fig. 9 contention)");
}
