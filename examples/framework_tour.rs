//! Tour of the framework tooling beyond the four applications: the
//! graph optimizer (§II's "optimize execution" claim), the tfdbg-style
//! debugger (§II-B), eager execution (§II's projected default mode) and
//! a QueueRunner-driven input pipeline (§II-A).
//!
//! Run with: `cargo run --release --example framework_tour`

use std::sync::Arc;
use tfhpc::core::{
    optimize_for, Coordinator, Dataset, Debugger, DeviceCtx, EagerContext, Graph, QueueRunner,
    Resources, Session,
};
use tfhpc::tensor::{DType, Tensor};

fn main() {
    // ---- 1. Graph optimizer -------------------------------------------------
    let mut g = Graph::new();
    let x = g.placeholder(DType::F64, None);
    let two = g.constant(Tensor::scalar_f64(2.0));
    let three = g.constant(Tensor::scalar_f64(3.0));
    let six = g.mul(two, three); // foldable
    let nx = g.neg(x);
    let nnx = g.neg(nx); // simplifies to x
    let y1 = g.mul(six, nnx);
    let y2 = g.mul(six, nnx); // CSE duplicate
    let out = g.add(y1, y2);
    let opt = optimize_for(&g, &[out]).expect("optimize");
    println!(
        "optimizer: {} nodes -> {} (folded {}, CSE {}, simplified {})",
        opt.stats.nodes_before,
        opt.stats.nodes_after,
        opt.stats.folded,
        opt.stats.deduplicated,
        opt.stats.simplified
    );
    let fetch = opt.remap(out);
    let fed = opt.remap(x);
    let sess = Session::new(Arc::new(opt.graph), Resources::new(), DeviceCtx::real(0));
    let v = sess
        .run(&[fetch], &[(fed, Tensor::scalar_f64(5.0))])
        .unwrap();
    println!(
        "optimized graph: 6*x + 6*x at x=5 -> {}",
        v[0].scalar_value_f64().unwrap()
    );
    assert_eq!(v[0].scalar_value_f64().unwrap(), 60.0);

    // ---- 2. tfdbg-style debugger -------------------------------------------
    let mut g = Graph::new();
    let a = g.constant(Tensor::from_f64([3], vec![1.0, 0.0, 4.0]).unwrap());
    let b = g.constant(Tensor::from_f64([3], vec![0.5, 0.0, 2.0]).unwrap());
    let q = g.div(a, b); // 0/0 -> NaN at index 1
    let mut sess = Session::new(Arc::new(g), Resources::new(), DeviceCtx::real(0));
    let dbg = Arc::new(Debugger::new());
    sess.set_debugger(Arc::clone(&dbg));
    sess.run(&[q], &[]).unwrap();
    let bad = dbg.first_nonfinite().expect("has_inf_or_nan should fire");
    println!(
        "debugger: node `{}` produced {} non-finite element(s) (min {:?}, max {:?})",
        bad.node, bad.nonfinite, bad.min, bad.max
    );

    // ---- 3. Eager execution -------------------------------------------------
    let ctx = EagerContext::cpu();
    ctx.variable("w", Tensor::scalar_f64(1.0));
    for _ in 0..3 {
        let w = ctx.read("w").unwrap();
        let dw = ctx.mul(&w, &Tensor::scalar_f64(0.5)).unwrap();
        ctx.assign_add("w", &dw).unwrap();
    }
    println!(
        "eager: w after three 1.5x steps = {} (1.5^3 = 3.375)",
        ctx.read("w").unwrap().scalar_value_f64().unwrap()
    );

    // ---- 4. QueueRunner input pipeline --------------------------------------
    let mut g = Graph::new();
    let next = g.dataset_next("src", 1);
    let doubled = g.scale(next[0], 2.0);
    let enq = g.queue_enqueue("work", &[doubled]);
    let resources = Resources::new();
    resources.create_iterator(
        "src",
        &Dataset::from_elements(
            (1..=5)
                .map(|i| vec![Tensor::scalar_f64(i as f64)])
                .collect(),
        ),
    );
    let work = resources.create_queue("work", 2);
    let sess = Arc::new(Session::new(Arc::new(g), resources, DeviceCtx::real(0)));
    let coord = Coordinator::new();
    Arc::new(QueueRunner::new(enq, Some("work"))).spawn(sess, coord);
    let mut drained = Vec::new();
    while let Ok(t) = work.dequeue() {
        drained.push(t[0].scalar_value_f64().unwrap());
    }
    println!("queue runner: background pipeline produced {drained:?}");
    assert_eq!(drained, vec![2.0, 4.0, 6.0, 8.0, 10.0]);
    println!("ok: optimizer, debugger, eager mode and queue runners all work.");
}
