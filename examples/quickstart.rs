//! Quickstart: the paper's Listing 1 in `tfhpc`.
//!
//! Builds a dataflow graph where two random matrices are generated on
//! the CPU and multiplied on the (first) GPU, then executes it through
//! a session and prints the result — deferred execution, device
//! scoping, simple placement, exactly as §II describes.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use tfhpc_core::{DeviceCtx, Graph, Placement, Resources, Session, Timeline};
use tfhpc_tensor::DType;

fn main() {
    // with g.as_default(): ...
    let mut g = Graph::new();

    // with tf.device('/cpu:0'):
    //     a = tf.random_uniform(shape=[3, 3]); b = tf.random_uniform(...)
    let (a, b) = g.with_device(Placement::Cpu, |g| {
        (
            g.random_uniform(DType::F32, [3, 3], 1),
            g.random_uniform(DType::F32, [3, 3], 2),
        )
    });

    // with tf.device('/gpu:0'):
    //     c = tf.matmul(a, b)
    let c = g.with_device(Placement::Gpu(0), |g| g.matmul(a, b));

    // with tf.Session(graph=g) as sess: ret_c = sess.run(c)
    let mut sess = Session::new(Arc::new(g), Resources::new(), DeviceCtx::real(1));
    let timeline = Arc::new(Timeline::new());
    sess.set_timeline(Arc::clone(&timeline));

    let ret_c = sess.run(&[c], &[]).expect("session run");
    let m = &ret_c[0];
    println!("c = A . B  (A, B random on /cpu:0, matmul on /gpu:0)\n");
    let v = m.as_f32().expect("dense f32 result");
    for row in 0..3 {
        println!(
            "  [{:8.4} {:8.4} {:8.4}]",
            v[row * 3],
            v[row * 3 + 1],
            v[row * 3 + 2]
        );
    }

    // The TensorFlow-Timeline analogue (paper Fig. 3): a Chrome trace.
    println!("\nop timeline ({} events):", timeline.len());
    for ev in timeline.events() {
        println!(
            "  {:<20} on {:<8} ({:.1} us)",
            ev.name,
            ev.device,
            ev.dur_s * 1e6
        );
    }
    let trace_path = std::env::temp_dir().join("tfhpc_quickstart_trace.json");
    std::fs::write(&trace_path, timeline.to_chrome_trace()).expect("write trace");
    println!("\nChrome trace written to {}", trace_path.display());
}
