//! Chaos-matrix recovery suite: each supervised app (STREAM, matmul,
//! CG, FFT) runs under a seeded corruption schedule merged with a
//! mid-run node crash, and must reproduce its fault-free output bit
//! for bit while surfacing the detections in the metrics exposition.
//!
//! Knobs (the CI chaos matrix sweeps the seed):
//!   `TFHPC_FAULT_SEED`    — corruption-schedule seed (default 42).
//!   `TFHPC_FAULT_CORRUPT` — `0` drops the seeded corruption windows
//!                           (crash-only baseline); any other value or
//!                           unset keeps them (default on).
//!
//! Every plan also carries one deterministic link-corruption window on
//! the crashed node so `corruption_detected > 0` holds for every seed,
//! including `TFHPC_FAULT_CORRUPT=0`.
//!
//! The same seed drives the *liveness* leg
//! (`cg_recovers_bit_identically_under_liveness_chaos`): a seeded
//! hang/straggler schedule under heartbeat detection, where failures
//! never report an error and only silence gives them away.

use tfhpc_apps::{
    matmul::c_key, run_cg_supervised, run_cg_supervised_with_stats, run_cg_with_store,
    run_fft_supervised, run_matmul_supervised, run_stream_supervised, CgConfig, CgReduction,
    FaultSetup, FftConfig, MatmulConfig, StreamConfig,
};
use tfhpc_core::{RetryConfig, TensorProto};
use tfhpc_proto::Message;
use tfhpc_sim::fault::FaultPlan;
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::{tegner_k420, tegner_k80};

fn fault_seed() -> u64 {
    std::env::var("TFHPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn corruption_enabled() -> bool {
    std::env::var("TFHPC_FAULT_CORRUPT").map_or(true, |v| v != "0")
}

/// Crash `crash_node` halfway through the clean run, corrupt its link
/// for a window wide enough to overlap a transfer burst, and (unless
/// `TFHPC_FAULT_CORRUPT=0`) merge in the seeded corruption schedule
/// over all `n_nodes`.
fn chaos_plan(n_nodes: usize, crash_node: usize, horizon_s: f64) -> FaultPlan {
    let plan = FaultPlan::new()
        .crash(crash_node, horizon_s * 0.5)
        .link_corrupt(crash_node, horizon_s * 0.6, horizon_s * 1.0);
    if corruption_enabled() {
        plan.merged(FaultPlan::seeded_corruption(
            fault_seed(),
            n_nodes,
            horizon_s,
        ))
    } else {
        plan
    }
}

fn retry_for(horizon_s: f64) -> RetryConfig {
    // Cumulative exponential backoff (base × 63 over 7 attempts) far
    // exceeds the widest seeded corruption window (~20% of horizon), so
    // retransmits always escape a window instead of exhausting in it.
    RetryConfig::new(7, horizon_s * 0.05)
}

fn assert_corruption_exported(before: u64) {
    let reg = tfhpc_obs::global();
    let total = reg.counter("tfhpc_corruption_detected_total").get();
    assert!(
        total > before,
        "no corruption detections reached the metrics registry"
    );
    assert!(reg
        .to_prometheus()
        .contains("tfhpc_corruption_detected_total"));
}

fn proto_bytes(t: &tfhpc_tensor::Tensor) -> Vec<u8> {
    TensorProto(t.clone()).to_bytes().unwrap()
}

#[test]
fn stream_recovers_bit_identically_under_chaos() {
    let p = tegner_k420(); // 1 task/node: ps on node 0, worker on node 1
    let cfg = StreamConfig {
        size_bytes: 1 << 16,
        invocations: 12,
        ..StreamConfig::default()
    };
    let (clean_report, clean_stats, clean_acc) =
        run_stream_supervised(&p, &cfg, 3, &FaultSetup::default()).unwrap();
    assert_eq!(clean_stats.restarts, 0);

    let before = tfhpc_obs::global()
        .counter("tfhpc_corruption_detected_total")
        .get();
    let t = clean_report.elapsed_s;
    let faults = FaultSetup::new(chaos_plan(2, 1, t), 3).with_retry(retry_for(t));
    let (_, stats, acc) = run_stream_supervised(&p, &cfg, 3, &faults).unwrap();
    assert!(stats.restarts >= 1, "seed {}: no restart", fault_seed());
    assert!(stats.corruption_detected > 0, "seed {}", fault_seed());
    assert_corruption_exported(before);
    assert_eq!(
        proto_bytes(&acc),
        proto_bytes(&clean_acc),
        "seed {}: STREAM accumulator diverged",
        fault_seed()
    );
}

#[test]
fn matmul_recovers_bit_identically_under_chaos() {
    let p = tegner_k80(); // 2 tasks/node: reducers on node 0, workers on node 1
    let cfg = MatmulConfig {
        n: 16384,
        tile: 4096,
        workers: 2,
        reducers: 2,
        protocol: Protocol::Rdma,
        simulated: true,
        prefetch: 3,
    };
    let (clean_report, clean_stats, clean_store) =
        run_matmul_supervised(&p, &cfg, 2, &FaultSetup::default()).unwrap();
    assert_eq!(clean_stats.restarts, 0);

    let before = tfhpc_obs::global()
        .counter("tfhpc_corruption_detected_total")
        .get();
    let t = clean_report.elapsed_s;
    let faults = FaultSetup::new(chaos_plan(2, 1, t), 3).with_retry(retry_for(t));
    let (_, stats, store) = run_matmul_supervised(&p, &cfg, 2, &faults).unwrap();
    assert!(stats.restarts >= 1, "seed {}: no restart", fault_seed());
    assert!(stats.corruption_detected > 0, "seed {}", fault_seed());
    assert_corruption_exported(before);
    for i in 0..cfg.nt() {
        for j in 0..cfg.nt() {
            assert_eq!(
                proto_bytes(&store.get(&c_key(i, j)).unwrap()),
                proto_bytes(&clean_store.get(&c_key(i, j)).unwrap()),
                "seed {}: C[{i},{j}] diverged",
                fault_seed()
            );
        }
    }
}

#[test]
fn cg_recovers_bit_identically_under_chaos() {
    let p = tegner_k420(); // 1 task/node: reducer 0, workers on nodes 1-2
    let cfg = CgConfig {
        n: 256,
        workers: 2,
        iterations: 12,
        protocol: Protocol::Rdma,
        simulated: true,
        checkpoint_every: Some(4),
        resume: false,
        reduction: CgReduction::QueuePair,
    };
    let (clean, _) = run_cg_with_store(&p, &cfg, None).unwrap();

    let before = tfhpc_obs::global()
        .counter("tfhpc_corruption_detected_total")
        .get();
    let t = clean.elapsed_s;
    let faults = FaultSetup::new(chaos_plan(3, 2, t), 3).with_retry(retry_for(t));
    let (report, _) = run_cg_supervised(&p, &cfg, &faults).unwrap();
    assert!(report.restarts >= 1, "seed {}: no restart", fault_seed());
    assert_corruption_exported(before);
    assert_eq!(
        report.rs_final.to_bits(),
        clean.rs_final.to_bits(),
        "seed {}: CG residual diverged",
        fault_seed()
    );
}

#[test]
fn cg_recovers_bit_identically_under_liveness_chaos() {
    // The liveness leg of the chaos matrix: a seeded schedule of hangs
    // and straggler windows (no crashes, no corruption) over all three
    // CG nodes, with heartbeat detection on. A hang never reports an
    // error — only the deadline detector can see it — and a straggler
    // whose stretched heartbeat overshoots the death timeout is
    // ejected the same way. Whatever the seed draws, the supervised
    // run must finish and reproduce the fault-free residual bit for
    // bit; when the schedule contains a hang, a silence-driven death
    // verdict and at least one restart are mandatory.
    let p = tegner_k420(); // 1 task/node: reducer 0, workers on nodes 1-2
    let cfg = CgConfig {
        n: 256,
        workers: 2,
        iterations: 12,
        protocol: Protocol::Rdma,
        simulated: true,
        checkpoint_every: Some(4),
        resume: false,
        reduction: CgReduction::QueuePair,
    };
    let (clean, _) = run_cg_with_store(&p, &cfg, None).unwrap();

    let t = clean.elapsed_s;
    let plan = FaultPlan::seeded_liveness(fault_seed(), 3, t);
    let has_hang = (0..3).any(|node| plan.hung(node, -1.0, f64::MAX));
    // Budget: each straggler window can kill at most once (the verdict
    // lands after the window closes, so replacements run clean) and a
    // hang kills exactly once — 6 covers the worst draw with margin.
    let faults = FaultSetup::new(plan, 6).with_heartbeats(t * 0.05, t * 0.2);
    let (report, _, stats) = run_cg_supervised_with_stats(&p, &cfg, &faults).unwrap();
    if has_hang {
        assert!(report.restarts >= 1, "seed {}: no restart", fault_seed());
        assert!(
            !stats.deaths.is_empty(),
            "seed {}: hang produced no death verdict",
            fault_seed()
        );
        assert!(
            !stats.recoveries.is_empty(),
            "seed {}: death without revival",
            fault_seed()
        );
    }
    assert_eq!(
        report.rs_final.to_bits(),
        clean.rs_final.to_bits(),
        "seed {}: CG residual diverged under liveness chaos",
        fault_seed()
    );
}

#[test]
fn fft_recovers_bit_identically_under_chaos() {
    let p = tegner_k80(); // 2 tasks/node: merger on node 0, workers on node 1
    let cfg = FftConfig {
        log2_n: 26,
        tiles: 16,
        workers: 2,
        protocol: Protocol::Rdma,
        simulated: true,
        merge_cost_factor: 1.0,
    };
    let (clean_report, clean_stats, clean_store) =
        run_fft_supervised(&p, &cfg, 2, &FaultSetup::default()).unwrap();
    assert_eq!(clean_stats.restarts, 0);

    let before = tfhpc_obs::global()
        .counter("tfhpc_corruption_detected_total")
        .get();
    let t = clean_report.collect_s;
    let faults = FaultSetup::new(chaos_plan(2, 1, t), 3).with_retry(retry_for(t));
    let (_, stats, store) = run_fft_supervised(&p, &cfg, 2, &faults).unwrap();
    assert!(stats.restarts >= 1, "seed {}: no restart", fault_seed());
    assert!(stats.corruption_detected > 0, "seed {}", fault_seed());
    assert_corruption_exported(before);
    assert_eq!(
        proto_bytes(&store.get(&[-1]).unwrap()),
        proto_bytes(&clean_store.get(&[-1]).unwrap()),
        "seed {}: merged spectrum diverged",
        fault_seed()
    );
}
