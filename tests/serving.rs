//! Serving-plane integration tests: admission quotas under concurrent
//! multi-tenant load, quota release on both completion and supervised
//! death, batched-vs-unbatched bit-identity, shared plan cache
//! behaviour, strict env parsing and load-report determinism.

use std::collections::BTreeMap;
use std::sync::Arc;
use tfhpc_apps::{run_cg_supervised, CgConfig, CgReduction, FaultSetup, RequestKind, RequestSpec};
use tfhpc_core::CoreError;
use tfhpc_serve::{
    run_load, Arrival, JobPayload, ServeConfig, SessionServer, TenantQuota, TenantSpec,
};
use tfhpc_sim::fault::FaultPlan;
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::tegner_k420;

/// A gate custom jobs can block on, so tests can pin a tenant's
/// in-flight count at an exact value.
#[derive(Default)]
struct Gate {
    open: parking_lot::Mutex<bool>,
    cv: parking_lot::Condvar,
}

impl Gate {
    fn hold(&self) {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }

    fn release(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

fn blocking_job(gate: &Arc<Gate>) -> JobPayload {
    let g = Arc::clone(gate);
    JobPayload::Custom {
        label: "blocker".into(),
        nodes: 1,
        run: Box::new(move || {
            g.hold();
            Ok(1)
        }),
    }
}

#[test]
fn concurrent_over_quota_submissions_get_resource_exhausted() {
    // Two tenants, each allowed 2 in-flight jobs. Fill both quotas
    // with jobs that block on a gate, then over-submit concurrently
    // from separate threads: every overflow submission must fail with
    // ResourceExhausted, deterministically, and neither tenant's
    // overflow may eat into the other's quota.
    let server = SessionServer::start_real(ServeConfig {
        workers: 2,
        batch_window_s: 0.0,
        max_batch: 1,
        ..ServeConfig::default()
    });
    let quota = TenantQuota {
        max_in_flight: 2,
        max_queue_depth: 2,
        node_budget: 2,
        priority: 0,
    };
    server.set_quota("alice", quota);
    server.set_quota("bob", quota);
    let gate = Arc::new(Gate::default());
    for tenant in ["alice", "bob"] {
        for _ in 0..2 {
            server.submit(tenant, blocking_job(&gate)).unwrap();
        }
    }
    let handles: Vec<_> = ["alice", "bob"]
        .into_iter()
        .map(|tenant| {
            let srv = Arc::clone(&server);
            let g = Arc::clone(&gate);
            std::thread::spawn(move || {
                let mut rejections = 0;
                for _ in 0..8 {
                    match srv.submit(tenant, blocking_job(&g)) {
                        Err(CoreError::ResourceExhausted(msg)) => {
                            assert!(msg.contains(tenant), "reason names the tenant: {msg}");
                            rejections += 1;
                        }
                        Err(other) => panic!("unexpected error kind: {other}"),
                        Ok(_) => panic!("over-quota submission admitted"),
                    }
                }
                rejections
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 8);
    }
    // Quota released on completion: the gate opens, everything drains,
    // and both tenants can submit again.
    gate.release();
    server.quiesce();
    for tenant in ["alice", "bob"] {
        let u = server.usage(tenant);
        assert_eq!((u.queued, u.running, u.nodes_in_use), (0, 0, 0), "{tenant}");
        assert_eq!(u.admitted, 2, "only the two blockers were admitted");
        assert_eq!(u.rejected, 8, "every overflow attempt was rejected");
        let probe = Arc::new(Gate::default());
        probe.release();
        server.submit(tenant, blocking_job(&probe)).unwrap();
    }
    server.quiesce();
    server.shutdown();
    let results = server.take_results();
    assert_eq!(results.len(), 6);
    assert!(results.iter().all(|r| r.error.is_none()));
}

#[test]
fn quota_released_when_supervised_gang_dies() {
    // A custom job wraps a whole supervised CG run whose gang is
    // killed with no restart budget: the job body returns Err. The
    // admission controller must still release the tenant's node
    // reservation — a Dead membership verdict must not leak quota.
    let server = SessionServer::start_real(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    server.set_quota(
        "hpc",
        TenantQuota {
            max_in_flight: 1,
            max_queue_depth: 1,
            node_budget: 3,
            priority: 0,
        },
    );
    let id = server
        .submit(
            "hpc",
            JobPayload::Custom {
                label: "cg-doomed".into(),
                nodes: 3,
                run: Box::new(|| {
                    let cfg = CgConfig {
                        n: 256,
                        workers: 2,
                        iterations: 16,
                        protocol: Protocol::Rdma,
                        simulated: true,
                        checkpoint_every: Some(4),
                        resume: false,
                        reduction: CgReduction::QueuePair,
                    };
                    // Crash worker 1's node early, zero restarts: fatal.
                    let faults = FaultSetup::new(FaultPlan::new().crash(2, 0.001), 0);
                    match run_cg_supervised(&tegner_k420(), &cfg, &faults) {
                        Ok(_) => Err("doomed run unexpectedly survived".into()),
                        Err(e) => Err(e.to_string()),
                    }
                }),
            },
        )
        .unwrap();
    let result = server.wait(id);
    assert!(result.error.is_some(), "gang death surfaces as a job error");
    let u = server.usage("hpc");
    assert_eq!(
        (u.queued, u.running, u.nodes_in_use),
        (0, 0, 0),
        "death released the full reservation"
    );
    // The freed budget is immediately usable.
    let ok = Arc::new(Gate::default());
    ok.release();
    let id2 = server
        .submit(
            "hpc",
            JobPayload::Custom {
                label: "follow-up".into(),
                nodes: 3,
                run: Box::new(|| Ok(2)),
            },
        )
        .unwrap();
    assert!(server.wait(id2).error.is_none());
    server.shutdown();
}

/// Run the same 24-job schedule through a real-mode server and map
/// each job's feed seed to its result digest.
fn digests_with(cfg: ServeConfig) -> (BTreeMap<u64, u64>, usize) {
    let server = SessionServer::start_real(cfg);
    let specs = [
        RequestSpec::new(RequestKind::Matmul, 16),
        RequestSpec::new(RequestKind::Fft, 16),
        RequestSpec::new(RequestKind::Stream, 32),
        RequestSpec::new(RequestKind::Cg, 12),
    ];
    let mut seed_of = BTreeMap::new();
    for i in 0..24u64 {
        let spec = specs[(i % 4) as usize];
        let seed = 1000 + i;
        let id = server.submit("t", JobPayload::Step { spec, seed }).unwrap();
        seed_of.insert(id, seed);
    }
    server.quiesce();
    server.shutdown();
    let results = server.take_results();
    assert_eq!(results.len(), 24);
    let max_batch = results.iter().map(|r| r.batch_size).max().unwrap();
    (
        results
            .into_iter()
            .map(|r| {
                assert!(r.error.is_none(), "{:?}", r.error);
                (seed_of[&r.id], r.digest)
            })
            .collect(),
        max_batch,
    )
}

#[test]
fn batched_results_are_bit_identical_to_unbatched() {
    // Batching amortizes dispatch; it must never change numerics. The
    // digests fold exact result bits, so equality here is bit-identity.
    let (unbatched, max1) = digests_with(ServeConfig {
        workers: 2,
        batch_window_s: 0.0,
        max_batch: 1,
        ..ServeConfig::default()
    });
    let (batched, maxn) = digests_with(ServeConfig {
        workers: 2,
        batch_window_s: 0.05,
        max_batch: 8,
        ..ServeConfig::default()
    });
    assert_eq!(max1, 1, "max_batch=1 config must not coalesce");
    assert!(maxn > 1, "window config must coalesce");
    assert_eq!(unbatched, batched);
}

#[test]
fn shared_plan_cache_is_shared_and_bounds_with_lru() {
    use tfhpc_core::{DeviceCtx, Resources, Session, SessionOptions, SharedPlanCache};
    let cache = Arc::new(SharedPlanCache::new(2));
    let mk_session = |spec: RequestSpec| {
        let built = spec.build();
        let mut s = Session::with_options(
            built.graph,
            Resources::new(),
            DeviceCtx::real(0),
            SessionOptions {
                step_replay: true,
                ..SessionOptions::sequential()
            },
        );
        s.set_plan_cache(Arc::clone(&cache));
        (s, built.placeholders, built.fetches)
    };
    let spec = RequestSpec::new(RequestKind::Stream, 16);
    let run = |(s, phs, fetches): &(Session, Vec<tfhpc_core::NodeId>, Vec<tfhpc_core::NodeId>),
               seed: u64| {
        let feeds: Vec<_> = phs.iter().copied().zip(spec.feeds(seed, false)).collect();
        s.run(fetches, &feeds).unwrap();
    };
    // Two sessions over identically-built graphs share one plan.
    let a = mk_session(spec);
    let b = mk_session(spec);
    run(&a, 1);
    let after_a = cache.stats();
    assert_eq!((after_a.hits, after_a.misses, after_a.entries), (0, 1, 1));
    run(&b, 2);
    let after_b = cache.stats();
    assert_eq!(
        (after_b.hits, after_b.misses),
        (1, 1),
        "second session hits the first session's plan"
    );
    // Three distinct shapes through a 2-entry cache: LRU evicts.
    let c = mk_session(RequestSpec::new(RequestKind::Matmul, 8));
    let d = mk_session(RequestSpec::new(RequestKind::Fft, 16));
    let run2 = |(s, phs, fetches): &(Session, Vec<tfhpc_core::NodeId>, Vec<tfhpc_core::NodeId>),
                sp: RequestSpec| {
        let feeds: Vec<_> = phs.iter().copied().zip(sp.feeds(3, false)).collect();
        s.run(fetches, &feeds).unwrap();
    };
    run2(&c, RequestSpec::new(RequestKind::Matmul, 8));
    run2(&d, RequestSpec::new(RequestKind::Fft, 16));
    let st = cache.stats();
    assert_eq!(st.entries, 2, "capacity bound holds");
    assert_eq!(st.evictions, 1, "oldest entry evicted");
    // The stream plan (least recently used) was the victim: running it
    // again misses and re-inserts.
    run(&a, 4);
    let st2 = cache.stats();
    assert_eq!(st2.misses, st.misses + 1, "evicted plan rebuilt");
}

#[test]
fn malformed_env_values_fail_loudly() {
    // Strict parsing: a typo'd knob must be an InvalidArgument error,
    // not a silently applied default. Each check uses its own variable
    // and restores the environment afterwards.
    std::env::set_var("TFHPC_SERVE_MAX_BATCH", "many");
    let err = ServeConfig::from_env().unwrap_err();
    assert!(matches!(err, CoreError::InvalidArgument(_)), "{err}");
    assert!(err.to_string().contains("TFHPC_SERVE_MAX_BATCH"), "{err}");
    std::env::set_var("TFHPC_SERVE_MAX_BATCH", "0");
    let err = ServeConfig::from_env().unwrap_err();
    assert!(matches!(err, CoreError::InvalidArgument(_)), "{err}");
    std::env::remove_var("TFHPC_SERVE_MAX_BATCH");

    std::env::set_var("TFHPC_SERVE_BATCH_WINDOW_S", "-0.5");
    let err = ServeConfig::from_env().unwrap_err();
    assert!(matches!(err, CoreError::InvalidArgument(_)), "{err}");
    std::env::remove_var("TFHPC_SERVE_BATCH_WINDOW_S");

    std::env::set_var("TFHPC_STEP_REPLAY", "maybe");
    let err = tfhpc_core::SessionOptions::from_env().unwrap_err();
    assert!(matches!(err, CoreError::InvalidArgument(_)), "{err}");
    std::env::remove_var("TFHPC_STEP_REPLAY");

    assert!(ServeConfig::from_env().is_ok());
    assert!(tfhpc_core::SessionOptions::from_env().is_ok());
}

fn tiny_load() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "open".into(),
            arrival: Arrival::Open { rate_hz: 1500.0 },
            jobs: 40,
            mix: vec![
                RequestSpec::new(RequestKind::Matmul, 16),
                RequestSpec::new(RequestKind::Fft, 32),
            ],
            quota: None,
        },
        TenantSpec {
            name: "closed".into(),
            arrival: Arrival::Closed {
                clients: 3,
                think_s: 0.002,
            },
            jobs: 15,
            mix: vec![RequestSpec::new(RequestKind::Stream, 64)],
            quota: Some(TenantQuota {
                max_in_flight: 8,
                max_queue_depth: 8,
                node_budget: 8,
                priority: 0,
            }),
        },
    ]
}

#[test]
fn same_seed_load_runs_are_byte_identical() {
    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let a = run_load(&cfg, &tiny_load(), 1337).unwrap().to_json();
    let b = run_load(&cfg, &tiny_load(), 1337).unwrap().to_json();
    assert_eq!(a, b, "same seed must reproduce the report byte-for-byte");
    let c = run_load(&cfg, &tiny_load(), 7).unwrap().to_json();
    assert_ne!(a, c, "different seeds must differ");
}
