//! SIMD/scalar parity suite: every vectorized kernel must reproduce
//! its scalar twin bit for bit — over odd lengths, unaligned slice
//! offsets and NaN/Inf payloads — and all four applications must
//! produce bit-identical end-to-end results with the vector path on
//! and off (the `TFHPC_SIMD=0/1` contract), including chaos-mode runs
//! under a seeded fault schedule (`TFHPC_FAULT_SEED`).
//!
//! Two deliberate scope notes:
//!
//! * **NaN bits are canonicalized** before comparison. Neither IEEE 754
//!   nor Rust/LLVM pins the sign/payload of a *produced* NaN (the
//!   scalar twins are themselves auto-vectorized, and LLVM may commute
//!   `fadd`/`fmul` operands, which flips which operand's NaN payload
//!   survives). The contract is therefore: identical bits for every
//!   non-NaN result — including ±0.0 and ±Inf — and NaN-for-NaN.
//!
//! * **App-level tests pick deterministic topologies.** CG's queue-pair
//!   reducer accumulates partials in *arrival* order, which races real
//!   threads; the ring all-reduce combines in fixed ring order and is
//!   run-to-run reproducible, so cross-path equality is meaningful.
//!   Chaos runs (mid-run crash + seeded corruption) exist only under
//!   the virtual-time simulator — real mode pins virtual time at 0 so
//!   scheduled windows never fire — and simulated payloads are
//!   synthetic (metadata-only). The chaos tests therefore guard the
//!   *control plane*: recovery decisions, checkpoint bytes and the
//!   final report must not change with the SIMD mode.
//!
//! Dispatch is flipped in-process with `simd::set_forced`, the same
//! switch the `TFHPC_SIMD` env var drives; a process-wide lock keeps
//! concurrently running tests from interleaving mode flips (the
//! results would still agree — that is the contract under test — but
//! each branch should genuinely execute the path it names).

use std::sync::Mutex;
use tfhpc_apps::cg::{gather_solution, run_cg_supervised, run_cg_with_store};
use tfhpc_apps::fft::run_fft_with_store;
use tfhpc_apps::matmul::c_key;
use tfhpc_apps::stream::run_stream_supervised;
use tfhpc_apps::{CgConfig, CgReduction, FaultSetup, FftConfig, MatmulConfig, StreamConfig};
use tfhpc_core::{RetryConfig, TensorProto};
use tfhpc_proto::Message;
use tfhpc_sim::fault::FaultPlan;
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::{tegner_k420, tegner_k80};
use tfhpc_tensor::{matmul, simd, Complex64, DType, Tensor};

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` once on the forced-scalar path and once on the forced-SIMD
/// path (a no-op downgrade on hosts without AVX2), restoring automatic
/// dispatch afterwards.
fn both_paths<R>(mut f: impl FnMut() -> R) -> (R, R) {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    simd::set_forced(Some(false));
    let scalar = f();
    simd::set_forced(Some(true));
    let vector = f();
    simd::set_forced(None);
    (scalar, vector)
}

/// Deterministic mixed payload: ordinary values with NaN, ±Inf and
/// ±0.0 sprinkled in, so parity covers the non-finite propagation
/// rules too.
fn f64_data(n: usize, seed: u64) -> Vec<f64> {
    (0..n as u64)
        .map(|i| {
            let k = i
                .wrapping_add(seed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(31);
            match k % 19 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                4 => 0.0,
                _ => ((k >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0,
            }
        })
        .collect()
}

fn f32_data(n: usize, seed: u64) -> Vec<f32> {
    f64_data(n, seed).into_iter().map(|x| x as f32).collect()
}

/// `to_bits` with every NaN mapped to one canonical pattern (see the
/// module docs: produced-NaN sign/payload is not a stable contract).
fn bits64(x: &[f64]) -> Vec<u64> {
    x.iter()
        .map(|v| {
            if v.is_nan() {
                f64::NAN.to_bits()
            } else {
                v.to_bits()
            }
        })
        .collect()
}

fn bits32(x: &[f32]) -> Vec<u32> {
    x.iter()
        .map(|v| {
            if v.is_nan() {
                f32::NAN.to_bits()
            } else {
                v.to_bits()
            }
        })
        .collect()
}

fn bit64(v: f64) -> u64 {
    if v.is_nan() {
        f64::NAN.to_bits()
    } else {
        v.to_bits()
    }
}

/// Odd lengths around and below the vector widths, plus bigger blocks
/// that exercise the unrolled main loops and their tails.
const LENS: [usize; 8] = [0, 1, 3, 7, 15, 33, 100, 1023];
/// Slice offsets that shift the data off 32-byte alignment.
const OFFS: [usize; 3] = [0, 1, 3];

#[test]
fn elementwise_f64_matches_scalar_twin_bitwise() {
    macro_rules! check {
        ($oop:path, $lhs:path, $rhs:path) => {
            for n in LENS {
                for off in OFFS {
                    let x = f64_data(n + off, 5);
                    let y = f64_data(n + off, 11);
                    let (x, y) = (&x[off..], &y[off..]);
                    let (a, b) = both_paths(|| {
                        let mut out = vec![0.0f64; n];
                        $oop(x, y, &mut out);
                        let mut xl = x.to_vec();
                        $lhs(&mut xl, y);
                        let mut yr = y.to_vec();
                        $rhs(x, &mut yr);
                        (bits64(&out), bits64(&xl), bits64(&yr))
                    });
                    assert_eq!(a, b, "{} n={n} off={off}", stringify!($oop));
                }
            }
        };
    }
    check!(simd::add_f64, simd::add_lhs_f64, simd::add_rhs_f64);
    check!(simd::sub_f64, simd::sub_lhs_f64, simd::sub_rhs_f64);
    check!(simd::mul_f64, simd::mul_lhs_f64, simd::mul_rhs_f64);
    check!(simd::div_f64, simd::div_lhs_f64, simd::div_rhs_f64);
}

#[test]
fn elementwise_f32_matches_scalar_twin_bitwise() {
    macro_rules! check {
        ($oop:path, $lhs:path, $rhs:path) => {
            for n in LENS {
                for off in OFFS {
                    let x = f32_data(n + off, 7);
                    let y = f32_data(n + off, 13);
                    let (x, y) = (&x[off..], &y[off..]);
                    let (a, b) = both_paths(|| {
                        let mut out = vec![0.0f32; n];
                        $oop(x, y, &mut out);
                        let mut xl = x.to_vec();
                        $lhs(&mut xl, y);
                        let mut yr = y.to_vec();
                        $rhs(x, &mut yr);
                        (bits32(&out), bits32(&xl), bits32(&yr))
                    });
                    assert_eq!(a, b, "{} n={n} off={off}", stringify!($oop));
                }
            }
        };
    }
    check!(simd::add_f32, simd::add_lhs_f32, simd::add_rhs_f32);
    check!(simd::sub_f32, simd::sub_lhs_f32, simd::sub_rhs_f32);
    check!(simd::mul_f32, simd::mul_lhs_f32, simd::mul_rhs_f32);
    check!(simd::div_f32, simd::div_lhs_f32, simd::div_rhs_f32);
}

#[test]
fn scale_and_axpy_match_scalar_twin_bitwise() {
    for n in LENS {
        for off in OFFS {
            let x = f64_data(n + off, 17);
            let y = f64_data(n + off, 23);
            let (x, y) = (&x[off..], &y[off..]);
            let (a, b) = both_paths(|| {
                let mut s1 = vec![0.0f64; n];
                simd::scale_f64(x, 1.5, &mut s1);
                let mut s2 = x.to_vec();
                simd::scale_in_f64(&mut s2, -0.5);
                let mut a1 = vec![0.0f64; n];
                simd::axpy_f64(2.5, x, y, &mut a1);
                let mut a2 = y.to_vec();
                simd::axpy_into_y_f64(-1.25, x, &mut a2);
                let mut a3 = x.to_vec();
                simd::axpy_into_x_f64(3.5, &mut a3, y);
                (
                    bits64(&s1),
                    bits64(&s2),
                    bits64(&a1),
                    bits64(&a2),
                    bits64(&a3),
                )
            });
            assert_eq!(a, b, "scale/axpy f64 n={n} off={off}");

            let xf = f32_data(n + off, 29);
            let yf = f32_data(n + off, 31);
            let (xf, yf) = (&xf[off..], &yf[off..]);
            let (a, b) = both_paths(|| {
                let mut s1 = vec![0.0f32; n];
                simd::scale_f32(xf, 1.5, &mut s1);
                let mut s2 = xf.to_vec();
                simd::scale_in_f32(&mut s2, -0.5);
                let mut a1 = vec![0.0f32; n];
                simd::axpy_f32(2.5, xf, yf, &mut a1);
                let mut a2 = yf.to_vec();
                simd::axpy_into_y_f32(-1.25, xf, &mut a2);
                let mut a3 = xf.to_vec();
                simd::axpy_into_x_f32(3.5, &mut a3, yf);
                (
                    bits32(&s1),
                    bits32(&s2),
                    bits32(&a1),
                    bits32(&a2),
                    bits32(&a3),
                )
            });
            assert_eq!(a, b, "scale/axpy f32 n={n} off={off}");
        }
    }
}

#[test]
fn reductions_match_scalar_twin_bitwise() {
    for n in LENS {
        for off in OFFS {
            let x = f64_data(n + off, 37);
            let y = f64_data(n + off, 41);
            let (x, y) = (&x[off..], &y[off..]);
            let (a, b) = both_paths(|| {
                [
                    bit64(simd::dot_f64(x, y)),
                    bit64(simd::sum_f64(x)),
                    bit64(simd::sumsq_f64(x)),
                ]
            });
            assert_eq!(a, b, "f64 reductions n={n} off={off}");

            let xf = f32_data(n + off, 43);
            let yf = f32_data(n + off, 47);
            let (xf, yf) = (&xf[off..], &yf[off..]);
            let (a, b) = both_paths(|| {
                [
                    bit64(simd::dot_f32(xf, yf)),
                    bit64(simd::sum_f32(xf)),
                    bit64(simd::sumsq_f32(xf)),
                ]
            });
            assert_eq!(a, b, "f32 reductions n={n} off={off}");
        }
    }
}

#[test]
fn fft_butterflies_match_scalar_twin_bitwise() {
    for n in [0usize, 1, 2, 3, 7, 33, 512] {
        let raw = f64_data(6 * n, 53);
        let mk = |lo: usize| -> Vec<Complex64> {
            (0..n)
                .map(|i| Complex64::new(raw[lo + 2 * i], raw[lo + 2 * i + 1]))
                .collect()
        };
        let (a0, b0, tw) = (mk(0), mk(2 * n), mk(4 * n));
        let (s, v) = both_paths(|| {
            let mut a = a0.clone();
            let mut b = b0.clone();
            // SAFETY: a and b are distinct buffers of length n.
            unsafe {
                simd::butterflies(a.as_mut_ptr(), b.as_mut_ptr(), tw.as_ptr(), n);
            }
            (bits64(simd::c128_as_f64(&a)), bits64(simd::c128_as_f64(&b)))
        });
        assert_eq!(s, v, "butterflies n={n}");
    }
}

#[test]
fn matmul_and_matvec_match_scalar_path_bitwise() {
    for (m, k, n) in [
        (1usize, 1usize, 1usize),
        (7, 5, 11),
        (4, 3, 8),
        (33, 17, 9),
        (5, 64, 6),
    ] {
        let a = tfhpc_tensor::rng::random_uniform(DType::F64, [m, k], 61).unwrap();
        let b = tfhpc_tensor::rng::random_uniform(DType::F64, [k, n], 67).unwrap();
        let x = tfhpc_tensor::rng::random_uniform(DType::F64, [k], 71).unwrap();
        let (s, v) = both_paths(|| {
            let c = matmul::matmul(&a, &b).unwrap();
            let y = matmul::matvec(&a.clone(), &x).unwrap();
            let t = matmul::transpose(&a).unwrap();
            (
                bits64(c.as_f64().unwrap()),
                bits64(y.as_f64().unwrap()),
                bits64(t.as_f64().unwrap()),
            )
        });
        assert_eq!(s, v, "matmul ({m},{k},{n})");
    }
}

// ---- application-level parity -------------------------------------------

fn proto_bytes(t: &Tensor) -> Vec<u8> {
    TensorProto(t.clone()).to_bytes().unwrap()
}

#[test]
fn stream_end_to_end_bit_identical_across_paths() {
    let p = tegner_k420();
    let cfg = StreamConfig {
        size_bytes: 1 << 12,
        invocations: 12,
        simulated: false,
        ..StreamConfig::default()
    };
    let (s, v) = both_paths(|| {
        let (_, stats, acc) = run_stream_supervised(&p, &cfg, 3, &FaultSetup::default()).unwrap();
        assert_eq!(stats.restarts, 0);
        proto_bytes(&acc)
    });
    assert_eq!(s, v, "STREAM accumulator diverged between SIMD paths");
}

#[test]
fn matmul_end_to_end_bit_identical_across_paths() {
    let p = tegner_k80();
    let cfg = MatmulConfig {
        n: 96,
        tile: 24,
        workers: 2,
        reducers: 2,
        protocol: Protocol::Rdma,
        simulated: false,
        prefetch: 2,
    };
    let (s, v) = both_paths(|| {
        let (_, _, store) =
            tfhpc_apps::run_matmul_supervised(&p, &cfg, 2, &FaultSetup::default()).unwrap();
        let mut all = Vec::new();
        for i in 0..cfg.nt() {
            for j in 0..cfg.nt() {
                all.extend(proto_bytes(&store.get(&c_key(i, j)).unwrap()));
            }
        }
        all
    });
    assert_eq!(s, v, "matmul C tiles diverged between SIMD paths");
}

#[test]
fn cg_end_to_end_bit_identical_across_paths() {
    let p = tegner_k80();
    // Ring reduction: fixed combine order, so real-mode runs are
    // run-to-run reproducible (queue-pair accumulates in thread
    // arrival order, which is not).
    let cfg = CgConfig {
        n: 96,
        workers: 3,
        iterations: 25,
        protocol: Protocol::Mpi,
        simulated: false,
        checkpoint_every: None,
        resume: false,
        reduction: CgReduction::Ring,
    };
    let (s, v) = both_paths(|| {
        let (report, store) = run_cg_with_store(&p, &cfg, None).unwrap();
        let x = gather_solution(&store, &cfg).unwrap();
        (bit64(report.rs_final), bits64(x.as_f64().unwrap()))
    });
    assert_eq!(s, v, "CG solution diverged between SIMD paths");
}

#[test]
fn fft_end_to_end_bit_identical_across_paths() {
    let p = tegner_k80();
    let cfg = FftConfig {
        log2_n: 11,
        tiles: 4,
        workers: 3,
        protocol: Protocol::Rdma,
        simulated: false,
        merge_cost_factor: 0.0,
    };
    let (s, v) = both_paths(|| {
        let (_, store) = run_fft_with_store(&p, &cfg).unwrap();
        proto_bytes(&store.get(&[-1]).unwrap())
    });
    assert_eq!(s, v, "merged FFT spectrum diverged between SIMD paths");
}

// ---- chaos-mode parity ---------------------------------------------------

fn fault_seed() -> u64 {
    std::env::var("TFHPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn chaos_plan(n_nodes: usize, crash_node: usize, horizon_s: f64) -> FaultPlan {
    FaultPlan::new()
        .crash(crash_node, horizon_s * 0.5)
        .link_corrupt(crash_node, horizon_s * 0.6, horizon_s * 1.0)
        .merged(FaultPlan::seeded_corruption(
            fault_seed(),
            n_nodes,
            horizon_s,
        ))
}

fn retry_for(horizon_s: f64) -> RetryConfig {
    RetryConfig::new(7, horizon_s * 0.05)
}

// Chaos runs live under the virtual-time simulator (real mode pins the
// clock at 0, so scheduled crash/corruption windows never fire). These
// guard the recovery control plane: restart decisions, retransmits and
// the recovered output must be byte-identical across SIMD modes.

#[test]
fn stream_chaos_recovery_bit_identical_across_paths() {
    let p = tegner_k420();
    let cfg = StreamConfig {
        size_bytes: 1 << 16,
        invocations: 12,
        ..StreamConfig::default()
    };
    let (s, v) = both_paths(|| {
        let (clean_report, _, _) =
            run_stream_supervised(&p, &cfg, 3, &FaultSetup::default()).unwrap();
        let t = clean_report.elapsed_s;
        let faults = FaultSetup::new(chaos_plan(2, 1, t), 3).with_retry(retry_for(t));
        let (report, stats, acc) = run_stream_supervised(&p, &cfg, 3, &faults).unwrap();
        assert!(stats.restarts >= 1, "seed {}: no restart", fault_seed());
        (bit64(report.mbs), proto_bytes(&acc))
    });
    assert_eq!(
        s,
        v,
        "seed {}: chaos STREAM outcome diverged between SIMD paths",
        fault_seed()
    );
}

#[test]
fn cg_chaos_recovery_bit_identical_across_paths() {
    let p = tegner_k420();
    let cfg = CgConfig {
        n: 256,
        workers: 2,
        iterations: 12,
        protocol: Protocol::Rdma,
        simulated: true,
        checkpoint_every: Some(4),
        resume: false,
        reduction: CgReduction::QueuePair,
    };
    let (s, v) = both_paths(|| {
        let (clean, _) = run_cg_with_store(&p, &cfg, None).unwrap();
        let t = clean.elapsed_s;
        let faults = FaultSetup::new(chaos_plan(3, 2, t), 3).with_retry(retry_for(t));
        let (report, _) = run_cg_supervised(&p, &cfg, &faults).unwrap();
        assert!(report.restarts >= 1, "seed {}: no restart", fault_seed());
        (bit64(report.rs_final), bit64(clean.rs_final))
    });
    assert_eq!(
        s,
        v,
        "seed {}: chaos CG trajectory diverged between SIMD paths",
        fault_seed()
    );
}
