//! End-to-end integration tests: each of the paper's four applications
//! run through the full stack (Slurm allocation → resolver → servers →
//! dataflow sessions → queues/reducers), in both execution modes.

use tfhpc_apps::cg::{
    gather_solution, run_cg, run_cg_with_store, serial_cg, CgConfig, CgReduction,
};
use tfhpc_apps::fft::{run_fft, run_fft_with_store, FftConfig};
use tfhpc_apps::matmul::{run_matmul, verify_small, MatmulConfig};
use tfhpc_apps::stream::{run_stream, StreamConfig};
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::{all_platforms, kebnekaise_v100, tegner_k80};
use tfhpc_tensor::ops;

#[test]
fn stream_runs_on_every_platform_and_protocol() {
    for platform in all_platforms() {
        for proto in Protocol::ALL {
            let r = run_stream(
                &platform,
                &StreamConfig {
                    size_bytes: 8 << 20,
                    invocations: 10,
                    on_gpu: true,
                    protocol: proto,
                    simulated: true,
                },
            )
            .unwrap_or_else(|e| panic!("{} {}: {e}", platform.label, proto.name()));
            assert!(r.mbs > 0.0 && r.elapsed_s > 0.0);
        }
    }
}

#[test]
fn matmul_distributed_equals_direct_product() {
    // Real mode, dense tiles, 2 workers + 2 reducers.
    let err = verify_small(96, 24, 2).expect("verified run");
    assert!(err < 1e-2, "max abs error {err}");
}

#[test]
fn matmul_single_worker_degenerate_case() {
    let r = run_matmul(
        &tegner_k80(),
        &MatmulConfig {
            n: 16384,
            tile: 8192,
            workers: 1,
            reducers: 1,
            protocol: Protocol::Rdma,
            simulated: true,
            prefetch: 2,
        },
    )
    .expect("1-worker run");
    assert!(r.gflops > 0.0);
}

#[test]
fn cg_distributed_matches_serial_reference() {
    let cfg = CgConfig {
        n: 96,
        workers: 3,
        iterations: 25,
        protocol: Protocol::Mpi,
        simulated: false,
        checkpoint_every: None,
        resume: false,
        reduction: CgReduction::QueuePair,
    };
    let (report, store) = run_cg_with_store(&tegner_k80(), &cfg, None).expect("distributed");
    let x = gather_solution(&store, &cfg).expect("solution");

    let a = tfhpc_tensor::rng::random_spd(cfg.n, 0xC6, cfg.n as f64);
    let ones = tfhpc_tensor::Tensor::full_f64([cfg.n], 1.0);
    let b = tfhpc_tensor::matmul::matvec(&a, &ones).unwrap();
    let (x_ref, rs_ref) = serial_cg(&a, &b, cfg.iterations).expect("serial");

    let diff = ops::sub(&x, &x_ref).unwrap();
    let err = ops::norm2(&diff).unwrap().scalar_value_f64().unwrap();
    assert!(err < 1e-8, "solution divergence {err}");
    assert!(report.rs_final <= rs_ref * 1.01 + 1e-12);
}

#[test]
fn cg_checkpoint_restart_is_bit_exact() {
    let base = CgConfig {
        n: 64,
        workers: 2,
        iterations: 16,
        protocol: Protocol::Grpc,
        simulated: false,
        checkpoint_every: None,
        resume: false,
        reduction: CgReduction::QueuePair,
    };
    let platform = tegner_k80();
    let (_r, full_store) = run_cg_with_store(&platform, &base, None).unwrap();
    let x_full = gather_solution(&full_store, &base).unwrap();

    let first = CgConfig {
        iterations: 8,
        checkpoint_every: Some(8),
        ..base.clone()
    };
    let (_r1, store) = run_cg_with_store(&platform, &first, None).unwrap();
    let second = CgConfig {
        iterations: 16,
        resume: true,
        reduction: CgReduction::QueuePair,
        ..base.clone()
    };
    let (_r2, store) = run_cg_with_store(&platform, &second, Some(store)).unwrap();
    let x_resumed = gather_solution(&store, &base).unwrap();

    assert_eq!(
        x_full.as_f64().unwrap(),
        x_resumed.as_f64().unwrap(),
        "restart must reproduce the uninterrupted trajectory exactly"
    );
}

#[test]
fn cg_resume_without_store_is_rejected() {
    let cfg = CgConfig {
        n: 64,
        workers: 2,
        iterations: 4,
        protocol: Protocol::Grpc,
        simulated: false,
        checkpoint_every: None,
        resume: true,
        reduction: CgReduction::QueuePair,
    };
    assert!(run_cg_with_store(&tegner_k80(), &cfg, None).is_err());
}

#[test]
fn cg_simulated_on_v100() {
    let r = run_cg(
        &kebnekaise_v100(),
        &CgConfig {
            n: 16384,
            workers: 4,
            iterations: 25,
            protocol: Protocol::Rdma,
            simulated: true,
            checkpoint_every: None,
            resume: false,
            reduction: CgReduction::QueuePair,
        },
    )
    .expect("sim run");
    assert!(r.gflops > 0.0);
}

#[test]
fn fft_distributed_equals_whole_transform() {
    let cfg = FftConfig {
        log2_n: 11,
        tiles: 4,
        workers: 3,
        protocol: Protocol::Rdma,
        simulated: false,
        merge_cost_factor: 0.0,
    };
    let (_r, store) = run_fft_with_store(&tegner_k80(), &cfg).expect("fft");
    let got = store.get(&[-1]).unwrap();
    let signal = tfhpc_apps::fft::populate_signal(
        &tfhpc_core::Resources::new().create_store("ref"),
        &cfg,
        0xF0,
    )
    .unwrap();
    let mut want = signal;
    tfhpc_tensor::fft::fft_inplace(&mut want);
    let gv = got.as_c128().unwrap();
    let scale = want.iter().map(|v| v.abs()).fold(1.0, f64::max);
    for (a, b) in gv.iter().zip(&want) {
        assert!((*a - *b).abs() < 1e-6 * scale);
    }
}

#[test]
fn fft_collection_excludes_serial_merge() {
    let r = run_fft(
        &tegner_k80(),
        &FftConfig {
            log2_n: 26,
            tiles: 16,
            workers: 4,
            protocol: Protocol::Rdma,
            simulated: true,
            merge_cost_factor: 1.0,
        },
    )
    .expect("fft");
    assert!(r.total_s > r.collect_s * 1.5, "merge should dominate");
}

#[test]
fn all_apps_run_under_each_protocol_simulated() {
    let platform = tegner_k80();
    for proto in Protocol::ALL {
        run_matmul(
            &platform,
            &MatmulConfig {
                n: 16384,
                tile: 8192,
                workers: 2,
                reducers: 2,
                protocol: proto,
                simulated: true,
                prefetch: 2,
            },
        )
        .unwrap();
        run_cg(
            &platform,
            &CgConfig {
                n: 8192,
                workers: 2,
                iterations: 10,
                protocol: proto,
                simulated: true,
                checkpoint_every: None,
                resume: false,
                reduction: CgReduction::QueuePair,
            },
        )
        .unwrap();
        run_fft(
            &platform,
            &FftConfig {
                log2_n: 24,
                tiles: 8,
                workers: 2,
                protocol: proto,
                simulated: true,
                merge_cost_factor: 1.0,
            },
        )
        .unwrap();
    }
}
