//! Calibration guard: the paper-anchored numbers the figures depend on
//! must not drift when models are refactored. Each assertion cites the
//! paper statement it protects (see `EXPERIMENTS.md`).

use tfhpc_apps::stream::{run_device_stream, run_stream, StreamConfig};
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::{all_platforms, kebnekaise_k80, tegner_k420};
use tfhpc_sim::topology::{ClusterSim, Loc};

fn stream_mbs(platform: &tfhpc_sim::platform::Platform, on_gpu: bool, proto: Protocol) -> f64 {
    run_stream(
        platform,
        &StreamConfig {
            size_bytes: 128 << 20,
            invocations: 20,
            on_gpu,
            protocol: proto,
            simulated: true,
        },
    )
    .unwrap()
    .mbs
}

#[test]
fn fig7_anchor_points_hold() {
    let teg = tegner_k420();
    let keb = kebnekaise_k80();
    // ">6 GB/s ... more than 50% of bandwidth utilization" (§VI-A).
    let host_rdma = stream_mbs(&teg, false, Protocol::Rdma);
    assert!(host_rdma > 6000.0, "Tegner host RDMA {host_rdma}");
    assert!(host_rdma > 0.5 * teg.net.ib_theoretical_gbs * 1000.0);
    // "saturates at approximately 1300 MB/s on Tegner ... on Kebnekaise
    // ... below 2300 MB/s" (GPU-resident tensors).
    let t_gpu = stream_mbs(&teg, true, Protocol::Rdma);
    assert!((1100.0..1500.0).contains(&t_gpu), "Tegner GPU RDMA {t_gpu}");
    let k_gpu = stream_mbs(&keb, true, Protocol::Rdma);
    assert!((2000.0..2500.0).contains(&k_gpu), "Keb GPU RDMA {k_gpu}");
    // "approximately 318 MB/s on Tegner ... 480 MB/s [Kebnekaise]" MPI.
    let t_mpi = stream_mbs(&teg, true, Protocol::Mpi);
    assert!((250.0..500.0).contains(&t_mpi), "Tegner GPU MPI {t_mpi}");
    let k_mpi = stream_mbs(&keb, true, Protocol::Mpi);
    assert!((380.0..650.0).contains(&k_mpi), "Keb GPU MPI {k_mpi}");
    // "gRPC gives the lowest bandwidth on Tegner" (Ethernet fallback).
    let t_grpc = stream_mbs(&teg, true, Protocol::Grpc);
    assert!(t_grpc < t_mpi && t_grpc < 150.0, "Tegner gRPC {t_grpc}");
    // "On Kebnekaise communicating through gRPC gives similar bandwidth
    // to that of MPI" — same order of magnitude.
    let k_grpc = stream_mbs(&keb, true, Protocol::Grpc);
    assert!(k_grpc > 0.4 * k_mpi, "Keb gRPC {k_grpc} vs MPI {k_mpi}");
}

#[test]
fn protocol_ordering_holds_on_every_platform() {
    for platform in all_platforms() {
        let grpc = stream_mbs(&platform, true, Protocol::Grpc);
        let mpi = stream_mbs(&platform, true, Protocol::Mpi);
        let rdma = stream_mbs(&platform, true, Protocol::Rdma);
        assert!(
            grpc < mpi && mpi < rdma,
            "{}: {grpc} / {mpi} / {rdma}",
            platform.label
        );
    }
}

#[test]
fn device_bandwidth_constants_match_models() {
    for platform in all_platforms() {
        let r = run_device_stream(&platform, 1 << 24);
        let spec = platform.node.gpu.mem_bw_gbs;
        assert!(
            r.triad_gbs > spec * 0.9 && r.triad_gbs <= spec * 1.01,
            "{}: triad {} vs spec {spec}",
            platform.label,
            r.triad_gbs
        );
    }
}

#[test]
fn uncontended_path_costs_are_monotone_in_protocol() {
    // Analytic path costs (no DES needed): RDMA <= MPI <= gRPC per byte
    // for GPU-resident cross-node transfers, on every platform.
    for platform in all_platforms() {
        let sim = tfhpc_sim::des::Sim::new();
        let cluster = ClusterSim::new(&sim, platform.clone(), 2);
        let bytes = 64u64 << 20;
        let t = |p| {
            cluster
                .path(Loc::gpu(0, 0), Loc::gpu(1, 0), p)
                .uncontended_seconds(bytes)
        };
        let (rdma, mpi, grpc) = (t(Protocol::Rdma), t(Protocol::Mpi), t(Protocol::Grpc));
        assert!(
            rdma < mpi && mpi < grpc,
            "{}: rdma {rdma} mpi {mpi} grpc {grpc}",
            platform.label
        );
    }
}

#[test]
fn traffic_counters_attribute_bytes_to_protocol() {
    // A simulated STREAM run must account (at least) its payload bytes
    // to the right protocol counter and nothing to the others.
    use tfhpc_dist::{launch, JobSpec, LaunchConfig, TaskKey};
    use tfhpc_tensor::{DType, Tensor};
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("sink", 1, 0), JobSpec::new("src", 1, 0)],
        Protocol::Mpi,
    );
    let launched = launch(&cfg, |ctx| {
        if ctx.job() == "sink" {
            let q = ctx.server.resources.create_queue("d", 2);
            q.dequeue()?;
            Ok(())
        } else {
            let t = Tensor::synthetic(DType::F64, [1 << 17], 1); // 1 MB
            ctx.server
                .remote_enqueue(&TaskKey::new("sink", 0), "d", vec![t], None)?;
            Ok(())
        }
    })
    .unwrap();
    let sim = launched.sim.unwrap();
    assert_eq!(sim.counter("bytes.mpi"), (1u64 << 20) as f64);
    assert_eq!(sim.counter("bytes.rdma"), 0.0);
    assert_eq!(sim.counter("bytes.grpc"), 0.0);
}
