//! Cross-crate framework integration: Slurm → resolver → servers,
//! GraphDef round-trips executed on fresh sessions, distributed queue
//! plumbing, timelines, and the virtual-time accounting of full runs.

use std::sync::Arc;
use tfhpc_core::{
    graph_from_bytes, graph_to_bytes, DeviceCtx, Graph, Resources, Session, Timeline,
};
use tfhpc_dist::{launch, resolve, JobSpec, LaunchConfig, TaskKey};
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::{kebnekaise_k80, tegner_k420};
use tfhpc_slurm::{Distribution, JobRequest, SlurmCluster};
use tfhpc_tensor::{DType, Tensor};

#[test]
fn slurm_to_resolver_pipeline_matches_paper_listing2() {
    // Allocate 3 nodes, lay out 1 ps + 2 workers: the paper's Listing 2.
    let mut slurm = SlurmCluster::for_platform(&tegner_k420(), 3);
    let alloc = slurm
        .submit(&JobRequest {
            nodes: 3,
            ntasks: 3,
            distribution: Distribution::Plane(1),
            gpus_per_task: 0,
        })
        .unwrap();
    let resolved = resolve(
        &alloc,
        &[JobSpec::new("ps", 1, 0), JobSpec::new("worker", 2, 1)],
        1,
    )
    .unwrap();
    assert_eq!(
        resolved.spec.job_tasks("ps").unwrap(),
        &["t01n01:8888".to_string()]
    );
    assert_eq!(
        resolved.spec.job_tasks("worker").unwrap(),
        &["t01n02:8888".to_string(), "t01n03:8888".to_string()]
    );
    // scontrol expansion round-trips the nodelist.
    let nodelist = SlurmCluster::nodelist(&alloc);
    assert_eq!(
        SlurmCluster::scontrol_show_hostnames(&nodelist),
        alloc.hosts
    );
}

#[test]
fn graphdef_roundtrip_executes_on_new_session() {
    let mut g = Graph::new();
    let p = g.placeholder(DType::F64, None);
    let w = g.var_read("w");
    let wx = g.mul(w, p);
    let bump = g.assign_add("w", wx);
    let bytes = graph_to_bytes(&g).unwrap();

    let g2 = graph_from_bytes(&bytes).unwrap();
    let sess = Session::new(Arc::new(g2), Resources::new(), DeviceCtx::real(0));
    sess.resources()
        .create_variable("w", Tensor::from_f64([2], vec![1.0, 2.0]).unwrap());
    let out = sess
        .run(
            &[bump],
            &[(p, Tensor::from_f64([2], vec![3.0, 3.0]).unwrap())],
        )
        .unwrap();
    // w + w*p = [1,2] + [3,6] = [4,8]
    assert_eq!(out[0].as_f64().unwrap(), &[4.0, 8.0]);
}

#[test]
fn remote_queue_pipeline_across_launched_tasks() {
    // A producer job feeds a consumer job through a remote FIFO queue.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("sink", 1, 0), JobSpec::new("source", 3, 1)],
        Protocol::Rdma,
    );
    let total = Arc::new(parking_lot::Mutex::new(0.0f64));
    let total2 = Arc::clone(&total);
    let launched = launch(&cfg, move |ctx| {
        if ctx.job() == "sink" {
            let q = ctx.server.resources.create_queue("data", 4);
            let mut sum = 0.0;
            for _ in 0..6 {
                sum += q.dequeue()?[0].scalar_value_f64()?;
            }
            *total2.lock() = sum;
            Ok(())
        } else {
            for k in 0..2 {
                let v = (ctx.index() * 10 + k) as f64;
                ctx.server.remote_enqueue(
                    &TaskKey::new("sink", 0),
                    "data",
                    vec![Tensor::scalar_f64(v)],
                    Some(0),
                )?;
            }
            Ok(())
        }
    })
    .unwrap();
    // 0+1 + 10+11 + 20+21 = 63
    assert_eq!(*total.lock(), 63.0);
    // Six GPU-resident 8-byte sends still take nonzero virtual time.
    assert!(launched.elapsed_s > 0.0);
}

#[test]
fn virtual_time_orders_runs_by_transfer_size() {
    // Bigger payloads must take longer virtual time under the same path.
    let time_for = |mb: u64| {
        let cfg = LaunchConfig::simulated(
            tegner_k420(),
            vec![JobSpec::new("sink", 1, 0), JobSpec::new("source", 1, 1)],
            Protocol::Rdma,
        );
        launch(&cfg, move |ctx| {
            if ctx.job() == "sink" {
                let q = ctx.server.resources.create_queue("data", 2);
                q.dequeue()?;
                Ok(())
            } else {
                let t = Tensor::synthetic(DType::F64, [(mb << 20) as usize / 8], 1);
                ctx.server
                    .remote_enqueue(&TaskKey::new("sink", 0), "data", vec![t], Some(0))?;
                Ok(())
            }
        })
        .unwrap()
        .elapsed_s
    };
    let small = time_for(2);
    let large = time_for(64);
    assert!(large > small * 4.0, "2MB {small}s vs 64MB {large}s");
}

#[test]
fn timeline_spans_simulated_ops() {
    let cfg = LaunchConfig::simulated(
        kebnekaise_k80(),
        vec![JobSpec::new("worker", 1, 1)],
        Protocol::Rdma,
    );
    let timeline = Arc::new(Timeline::new());
    let tl2 = Arc::clone(&timeline);
    launch(&cfg, move |ctx| {
        let mut g = Graph::new();
        let a = g.random_uniform(DType::F32, [64, 64], 1);
        let b = g.random_uniform(DType::F32, [64, 64], 2);
        let c = g.with_device(tfhpc_core::Placement::Gpu(0), |g| g.matmul(a, b));
        let mut sess = ctx.server.session(Arc::new(g));
        sess.set_timeline(Arc::clone(&tl2));
        sess.run(&[c], &[])?;
        Ok(())
    })
    .unwrap();
    let events = timeline.events();
    assert!(events.iter().any(|e| e.name.starts_with("MatMul")));
    // GPU op events carry the simulated device name.
    let mm = events
        .iter()
        .find(|e| e.name.starts_with("MatMul"))
        .unwrap();
    assert!(mm.device.contains("GK210"), "device = {}", mm.device);
    let json = timeline.to_chrome_trace();
    assert!(json.contains("traceEvents"));
}

#[test]
fn gpu_visibility_masks_are_disjoint_per_node() {
    let cfg = LaunchConfig::simulated(
        kebnekaise_k80(),
        vec![JobSpec::new("worker", 8, 1)],
        Protocol::Rdma,
    );
    let masks = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let masks2 = Arc::clone(&masks);
    let launched = launch(&cfg, move |ctx| {
        masks2.lock().push((ctx.server.node, ctx.gpu_ids.clone()));
        Ok(())
    })
    .unwrap();
    assert_eq!(launched.resolved.tasks.len(), 8);
    let masks = masks.lock();
    for node in 0..2 {
        let mut gpus: Vec<usize> = masks
            .iter()
            .filter(|(n, _)| *n == node)
            .flat_map(|(_, g)| g.clone())
            .collect();
        gpus.sort_unstable();
        assert_eq!(gpus, vec![0, 1, 2, 3], "node {node} GPU masking");
    }
}
