//! Deterministic property tests of the core invariants: tiled matmul
//! equals whole matmul, FFT equals the naive DFT (and split/merge
//! equals the whole transform), CG converges on random SPD systems, the
//! wire format round-trips arbitrary payloads, hostlists round-trip,
//! queues preserve FIFO order, and the DES is deterministic.
//!
//! Each test sweeps a seeded family of cases (splitmix64 parameter
//! generator) rather than using an external property-testing framework:
//! the build environment is offline, and fixed seeds keep failures
//! reproducible by construction.

use std::sync::Arc;
use tfhpc_proto::{wire, Message};
use tfhpc_tensor::{fft, matmul, ops, Complex64, DType, Tensor};

/// Deterministic parameter generator (splitmix64).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    fn i64_any(&mut self) -> i64 {
        self.next_u64() as i64
    }
}

#[test]
fn tiled_matmul_equals_whole() {
    // C computed tile-by-tile (the paper's map-reduce) must equal the
    // direct product.
    let mut g = Gen::new(0xA11CE);
    for _case in 0..32 {
        let nt = g.usize_in(1, 4);
        let tile = g.usize_in(1, 6);
        let seed = g.next_u64() % 1000;
        let n = nt * tile;
        let a = tfhpc_tensor::rng::random_uniform(DType::F64, [n, n], seed).unwrap();
        let b = tfhpc_tensor::rng::random_uniform(DType::F64, [n, n], seed ^ 1).unwrap();
        let direct = matmul::matmul(&a, &b).unwrap();
        let dv = direct.as_f64().unwrap();

        for i in 0..nt {
            for j in 0..nt {
                let mut acc: Option<Tensor> = None;
                for k in 0..nt {
                    let a_ik = slice_tile(&a, i, k, tile, n);
                    let b_kj = slice_tile(&b, k, j, tile, n);
                    let p = matmul::matmul(&a_ik, &b_kj).unwrap();
                    acc = Some(match acc {
                        None => p,
                        Some(c) => ops::add(&c, &p).unwrap(),
                    });
                }
                let tile_c = acc.unwrap();
                let tv = tile_c.as_f64().unwrap();
                for r in 0..tile {
                    for c in 0..tile {
                        let want = dv[(i * tile + r) * n + (j * tile + c)];
                        let got = tv[r * tile + c];
                        assert!((want - got).abs() < 1e-9 * (1.0 + want.abs()));
                    }
                }
            }
        }
    }
}

#[test]
fn fft_equals_dft_and_split_merge() {
    let mut g = Gen::new(0xFF7);
    for _case in 0..32 {
        let log2 = g.usize_in(1, 8) as u32;
        let tiles_log2 = g.usize_in(0, 3) as u32;
        let seed = g.next_u64() % 1000;
        let n = 1usize << log2;
        let tiles = (1usize << tiles_log2).min(n);
        let signal: Vec<Complex64> = (0..n)
            .map(|i| {
                let t = i as f64 + seed as f64 * 0.37;
                Complex64::new((t * 0.9).sin(), (t * 0.31).cos())
            })
            .collect();
        let want = fft::dft_naive(&signal);
        let mut direct = signal.clone();
        fft::fft_inplace(&mut direct);
        for (a, b) in direct.iter().zip(&want) {
            assert!((*a - *b).abs() < 1e-7 * n as f64);
        }
        // Distributed decomposition: interleave-split, per-tile FFT, merge.
        let subs: Vec<Vec<Complex64>> = fft::split_interleaved(&signal, tiles)
            .into_iter()
            .map(|mut t| {
                fft::fft_inplace(&mut t);
                t
            })
            .collect();
        let merged = fft::merge_interleaved(subs);
        for (a, b) in merged.iter().zip(&want) {
            assert!((*a - *b).abs() < 1e-7 * n as f64);
        }
    }
}

#[test]
fn parseval_holds() {
    let mut g = Gen::new(0x9A125);
    for _case in 0..32 {
        let log2 = g.usize_in(1, 10) as u32;
        let seed = g.next_u64() % 500;
        let n = 1usize << log2;
        let signal: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(((i as f64) * (seed as f64 + 0.1)).sin(), 0.3))
            .collect();
        let te: f64 = signal.iter().map(|v| v.norm_sqr()).sum();
        let mut f = signal;
        fft::fft_inplace(&mut f);
        let fe: f64 = f.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((te - fe).abs() < 1e-7 * (1.0 + te));
    }
}

#[test]
fn cg_reduces_residual_on_random_spd() {
    let mut g = Gen::new(0xC6);
    for _case in 0..16 {
        let n = g.usize_in(4, 32);
        let seed = g.next_u64() % 200;
        let a = tfhpc_tensor::rng::random_spd(n, seed, n as f64);
        let b = tfhpc_tensor::rng::random_uniform(DType::F64, [n], seed ^ 7).unwrap();
        let (x, rs) = tfhpc_apps::cg::serial_cg(&a, &b, n.max(10)).unwrap();
        // Residual must be tiny for a well-conditioned SPD system.
        assert!(rs < 1e-12, "rs = {rs}");
        let ax = matmul::matvec(&a, &x).unwrap();
        let r = ops::sub(&b, &ax).unwrap();
        let rn = ops::norm2(&r).unwrap().scalar_value_f64().unwrap();
        assert!(rn < 1e-5, "|b - Ax| = {rn}");
    }
}

#[test]
fn varint_roundtrips() {
    let mut g = Gen::new(0x7A1);
    let mut values = vec![
        0u64,
        1,
        127,
        128,
        16_383,
        16_384,
        u32::MAX as u64,
        u64::MAX - 1,
        u64::MAX,
    ];
    values.extend((0..64).map(|_| g.next_u64()));
    // Cover every varint byte-length.
    values.extend((0..64).map(|i| g.next_u64() >> (i % 64)));
    for v in values {
        let mut buf = bytes::BytesMut::new();
        wire::put_uvarint(&mut buf, v);
        let (back, rest) = wire::get_uvarint(&buf).unwrap();
        assert_eq!(back, v);
        assert!(rest.is_empty());
        assert_eq!(buf.len(), wire::uvarint_len(v));
    }
}

#[test]
fn zigzag_roundtrips() {
    let mut g = Gen::new(0x2162);
    let mut values = vec![0i64, 1, -1, i64::MIN, i64::MAX, i64::MIN + 1];
    values.extend((0..128).map(|_| g.i64_any()));
    for v in values {
        assert_eq!(wire::zigzag_decode(wire::zigzag_encode(v)), v);
    }
}

#[test]
fn tensor_proto_roundtrips_f64() {
    let mut g = Gen::new(0x9070);
    for _case in 0..32 {
        let n = g.usize_in(0, 64);
        let data: Vec<f64> = (0..n).map(|_| g.f64_in(-1e6, 1e6)).collect();
        let t = Tensor::from_f64([n], data).unwrap();
        let bytes = tfhpc_core::TensorProto(t.clone()).to_bytes().unwrap();
        let back = tfhpc_core::TensorProto::decode(&bytes).unwrap().0;
        assert_eq!(back.as_f64().unwrap(), t.as_f64().unwrap());
    }
}

#[test]
fn hostlist_roundtrips() {
    let mut g = Gen::new(0x4057);
    for _case in 0..32 {
        let start = g.next_u64() % 50;
        let count = 1 + g.next_u64() % 19;
        let width = g.usize_in(1, 4);
        let hosts: Vec<String> = (start..start + count)
            .map(|i| format!("node{i:0width$}"))
            .collect();
        // Skip widths too narrow for the numbers (padding undefined).
        if !hosts.iter().all(|h| h.len() == "node".len() + width) {
            continue;
        }
        let compressed = tfhpc_slurm::hostlist::compress(&hosts);
        assert_eq!(tfhpc_slurm::hostlist::expand(&compressed), hosts);
    }
}

#[test]
fn queue_preserves_fifo_order() {
    let mut g = Gen::new(0xF1F0);
    for _case in 0..16 {
        let len = g.usize_in(1, 64);
        let values: Vec<i64> = (0..len).map(|_| g.i64_any()).collect();
        let q = tfhpc_core::FifoQueue::new("prop", values.len());
        for v in &values {
            q.enqueue(vec![Tensor::scalar_i64(*v)]).unwrap();
        }
        for v in &values {
            assert_eq!(q.dequeue().unwrap()[0].scalar_value_i64().unwrap(), *v);
        }
    }
}

#[test]
fn des_is_deterministic() {
    let mut g = Gen::new(0xDE5);
    for _case in 0..8 {
        let n_procs = g.usize_in(2, 5);
        let steps: Vec<u64> = (0..n_procs).map(|_| 1 + g.next_u64() % 49).collect();
        let run = |steps: &[u64]| {
            let sim = tfhpc_sim::des::Sim::new();
            let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
            for (i, &s) in steps.iter().enumerate() {
                let log = Arc::clone(&log);
                sim.spawn(&format!("p{i}"), move || {
                    let me = tfhpc_sim::des::current().unwrap();
                    for k in 0..s {
                        me.advance(0.01 * (i + 1) as f64);
                        log.lock().push((i, k, (me.now() * 1e9).round() as u64));
                    }
                });
            }
            let end = sim.run();
            let events = log.lock().clone();
            (end.to_bits(), events)
        };
        assert_eq!(run(&steps), run(&steps));
    }
}

#[test]
fn optimizer_preserves_semantics() {
    // Build random pure graphs over a few constants, optimize them, and
    // check every node still evaluates to the same value.
    use tfhpc_core::{DeviceCtx, Graph, Resources, Session};
    let mut gen = Gen::new(0x0971);
    for _case in 0..24 {
        let n_ops = gen.usize_in(1, 12);
        let n_consts = gen.usize_in(2, 5);
        let consts: Vec<f64> = (0..n_consts).map(|_| gen.f64_in(-8.0, 8.0)).collect();
        let seed = gen.next_u64() % 100;

        let mut g = Graph::new();
        let mut values: Vec<tfhpc_core::NodeId> = consts
            .iter()
            .map(|c| g.constant(Tensor::scalar_f64(*c)))
            .collect();
        let mut pick = seed;
        let mut next = |n: usize| {
            pick = pick
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (pick >> 33) as usize % n
        };
        for _ in 0..n_ops {
            let op = next(5);
            let a = values[next(values.len())];
            let b = values[next(values.len())];
            let node = match op {
                0 => g.add(a, b),
                1 => g.sub(a, b),
                2 => g.mul(a, b),
                3 => g.neg(a),
                _ => g.scale(a, 0.5),
            };
            values.push(node);
        }
        let fetches: Vec<tfhpc_core::NodeId> = values.clone();
        let sess = Session::new(
            Arc::new(
                tfhpc_core::graph_from_bytes(&tfhpc_core::graph_to_bytes(&g).unwrap()).unwrap(),
            ),
            Resources::new(),
            DeviceCtx::real(0),
        );
        let original = sess.run(&fetches, &[]).unwrap();

        let opt = tfhpc_core::optimize_for(&g, &fetches).unwrap();
        let new_fetches: Vec<tfhpc_core::NodeId> = fetches.iter().map(|f| opt.remap(*f)).collect();
        let sess2 = Session::new(Arc::new(opt.graph), Resources::new(), DeviceCtx::real(0));
        let optimized = sess2.run(&new_fetches, &[]).unwrap();
        for (a, b) in original.iter().zip(&optimized) {
            let x = a.scalar_value_f64().unwrap();
            let y = b.scalar_value_f64().unwrap();
            assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
        }
        assert!(opt.stats.nodes_after <= opt.stats.nodes_before);
    }
}

#[test]
fn ring_all_reduce_sums_arbitrary_vectors() {
    use tfhpc_dist::{ring_all_reduce, ClusterSpec, TaskKey, TfCluster};
    use tfhpc_sim::net::Protocol;
    let mut g = Gen::new(0xA11);
    for _case in 0..8 {
        let p = g.usize_in(1, 6);
        let n = g.usize_in(1, 24);
        let seed = g.next_u64() % 100;
        let spec = ClusterSpec::new([(
            "worker".to_string(),
            (0..p).map(|i| format!("n{i}:8888")).collect::<Vec<_>>(),
        )]);
        let cluster = TfCluster::new(spec, Protocol::Rdma, None);
        let servers: Vec<_> = (0..p)
            .map(|i| cluster.start_server(TaskKey::new("worker", i), i, vec![]))
            .collect();
        let group: Vec<TaskKey> = (0..p).map(|i| TaskKey::new("worker", i)).collect();
        let inputs: Vec<Vec<f64>> = (0..p)
            .map(|i| {
                (0..n)
                    .map(|k| ((seed as usize + i * 31 + k * 7) % 13) as f64 - 6.0)
                    .collect()
            })
            .collect();
        let expected: Vec<f64> = (0..n).map(|k| inputs.iter().map(|v| v[k]).sum()).collect();
        let mut handles = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            let group = group.clone();
            let v = inputs[i].clone();
            handles.push(std::thread::spawn(move || {
                let t = Tensor::from_f64([v.len()], v).unwrap();
                ring_all_reduce(&s, &group, i, t, None).unwrap()
            }));
        }
        for h in handles {
            let r = h.join().unwrap();
            let rv = r.as_f64().unwrap();
            for (a, b) in rv.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn slice_concat_reconstructs_vector() {
    // Splitting a vector at arbitrary cut points and concatenating the
    // pieces must reproduce it.
    let mut g = Gen::new(0x51CE);
    for _case in 0..32 {
        let n = g.usize_in(1, 64);
        let data: Vec<f64> = (0..n).map(|_| g.f64_in(-1e3, 1e3)).collect();
        let n_cuts = g.usize_in(0, 4);
        let t = Tensor::from_f64([n], data.clone()).unwrap();
        let mut points: Vec<usize> = (0..n_cuts).map(|_| g.usize_in(0, 64) % (n + 1)).collect();
        points.push(0);
        points.push(n);
        points.sort_unstable();
        points.dedup();
        let parts: Vec<Tensor> = points
            .windows(2)
            .map(|w| t.slice_range(w[0], w[1]).unwrap())
            .collect();
        let back = Tensor::concat_vecs(&parts).unwrap();
        assert_eq!(back.as_f64().unwrap(), data.as_slice());
    }
}

#[test]
fn transpose_involution_and_product_rule() {
    let mut g = Gen::new(0x7259);
    for _case in 0..24 {
        let m = g.usize_in(1, 12);
        let n = g.usize_in(1, 12);
        let seed = g.next_u64() % 500;
        let a = tfhpc_tensor::rng::random_uniform(DType::F64, [m, n], seed).unwrap();
        let t = matmul::transpose(&a).unwrap();
        let tt = matmul::transpose(&t).unwrap();
        assert_eq!(tt.as_f64().unwrap(), a.as_f64().unwrap());
        // (A·Aᵀ) is symmetric.
        let aat = matmul::matmul(&a, &t).unwrap();
        let aat_t = matmul::transpose(&aat).unwrap();
        for (x, y) in aat.as_f64().unwrap().iter().zip(aat_t.as_f64().unwrap()) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}

#[test]
fn synthetic_ops_preserve_shape_metadata() {
    let mut g = Gen::new(0x5517);
    for _case in 0..24 {
        let rows = g.usize_in(1, 1000);
        let cols = g.usize_in(1, 1000);
        let seed = g.next_u64();
        let a = Tensor::synthetic(DType::F32, [rows, cols], seed);
        let b = Tensor::synthetic(DType::F32, [cols, rows], seed ^ 1);
        let c = matmul::matmul(&a, &b).unwrap();
        assert!(c.is_synthetic());
        assert_eq!(c.shape().dims(), &[rows, rows]);
        let s = ops::add(&a, &a).unwrap();
        assert_eq!(s.shape().dims(), &[rows, cols]);
        // Reductions realize to dense scalars.
        let d = ops::sum(&a).unwrap();
        assert!(!d.is_synthetic());
    }
}

#[test]
fn corrupted_frames_are_detected_and_never_panic() {
    // The integrity plane's core promise: any single bit flip past the
    // frame magic fails `frame::open` with an error (CRC32C catches all
    // 1-bit errors), any truncation errors, and feeding arbitrary
    // mutations through the full decode stack classifies them as
    // `ProtoError` — it never panics and never yields a tensor from a
    // tampered frame.
    use tfhpc_core::TensorProto;
    use tfhpc_proto::frame;
    let mut g = Gen::new(0xFA7A);
    for _case in 0..64 {
        let n = g.usize_in(0, 48);
        let data: Vec<f64> = (0..n).map(|_| g.f64_in(-1e6, 1e6)).collect();
        let t = Tensor::from_f64([n], data).unwrap();
        let framed = TensorProto(t.clone()).to_framed_bytes().unwrap();

        // Pristine frame round-trips.
        let back = TensorProto::decode_framed(&framed).unwrap().0;
        assert_eq!(back.as_f64().unwrap(), t.as_f64().unwrap());

        // Any single bit flip past the magic is detected.
        for _flip in 0..8 {
            let mut bytes = framed.clone();
            frame::flip_bit(&mut bytes, g.next_u64());
            if bytes != framed {
                assert!(TensorProto::decode_framed(&bytes).is_err());
            }
        }

        // Every truncation length errors (a strict prefix can never
        // carry a valid trailing checksum).
        for cut in 0..framed.len() {
            assert!(TensorProto::decode_framed(&framed[..cut]).is_err());
        }

        // Heavier mutations — random splices, byte stomps, appended
        // garbage — must classify, not panic (success is also fine if
        // the CRC happens to be recomputed over unchanged bytes, which
        // these mutations make impossible only for the flip case above).
        for _mutation in 0..8 {
            let mut bytes = framed.clone();
            match g.usize_in(0, 3) {
                0 => {
                    if !bytes.is_empty() {
                        let at = g.usize_in(0, bytes.len());
                        bytes[at] = g.next_u64() as u8;
                    }
                }
                1 => {
                    let extra = g.usize_in(1, 9);
                    bytes.extend((0..extra).map(|_| g.next_u64() as u8));
                }
                _ => {
                    if bytes.len() > 1 {
                        let at = g.usize_in(0, bytes.len() - 1);
                        bytes.remove(at);
                    }
                }
            }
            let _ = TensorProto::decode_framed(&bytes);
        }

        // The raw field decoder survives arbitrary garbage too.
        let junk: Vec<u8> = (0..g.usize_in(0, 64)).map(|_| g.next_u64() as u8).collect();
        if let Ok(mut d) = tfhpc_proto::Decoder::new(&junk) {
            while let Ok(Some(_)) = d.next_field() {}
        }
    }
}

/// Copy tile (i, j) out of an n x n matrix.
fn slice_tile(m: &Tensor, i: usize, j: usize, tile: usize, n: usize) -> Tensor {
    let mv = m.as_f64().unwrap();
    let mut out = Vec::with_capacity(tile * tile);
    for r in 0..tile {
        let row = i * tile + r;
        out.extend_from_slice(&mv[row * n + j * tile..row * n + (j + 1) * tile]);
    }
    Tensor::from_f64([tile, tile], out).unwrap()
}
