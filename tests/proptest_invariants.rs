//! Property-based tests of the core invariants: tiled matmul equals
//! whole matmul, FFT equals the naive DFT (and split/merge equals the
//! whole transform), CG converges on random SPD systems, the wire
//! format round-trips arbitrary payloads, hostlists round-trip, queues
//! preserve FIFO order, and the DES is deterministic.

use proptest::prelude::*;
use std::sync::Arc;
use tfhpc_proto::{wire, Message};
use tfhpc_tensor::{fft, matmul, ops, Complex64, DType, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tiled_matmul_equals_whole(
        nt in 1usize..4,
        tile in 1usize..6,
        seed in 0u64..1000,
    ) {
        // C computed tile-by-tile (the paper's map-reduce) must equal
        // the direct product.
        let n = nt * tile;
        let a = tfhpc_tensor::rng::random_uniform(DType::F64, [n, n], seed).unwrap();
        let b = tfhpc_tensor::rng::random_uniform(DType::F64, [n, n], seed ^ 1).unwrap();
        let direct = matmul::matmul(&a, &b).unwrap();
        let dv = direct.as_f64().unwrap();

        for i in 0..nt {
            for j in 0..nt {
                let mut acc: Option<Tensor> = None;
                for k in 0..nt {
                    let a_ik = slice_tile(&a, i, k, tile, n);
                    let b_kj = slice_tile(&b, k, j, tile, n);
                    let p = matmul::matmul(&a_ik, &b_kj).unwrap();
                    acc = Some(match acc {
                        None => p,
                        Some(c) => ops::add(&c, &p).unwrap(),
                    });
                }
                let tile_c = acc.unwrap();
                let tv = tile_c.as_f64().unwrap();
                for r in 0..tile {
                    for c in 0..tile {
                        let want = dv[(i * tile + r) * n + (j * tile + c)];
                        let got = tv[r * tile + c];
                        prop_assert!((want - got).abs() < 1e-9 * (1.0 + want.abs()));
                    }
                }
            }
        }
    }

    #[test]
    fn fft_equals_dft_and_split_merge(
        log2 in 1u32..8,
        tiles_log2 in 0u32..3,
        seed in 0u64..1000,
    ) {
        let n = 1usize << log2;
        let tiles = (1usize << tiles_log2).min(n);
        let signal: Vec<Complex64> = (0..n)
            .map(|i| {
                let t = i as f64 + seed as f64 * 0.37;
                Complex64::new((t * 0.9).sin(), (t * 0.31).cos())
            })
            .collect();
        let want = fft::dft_naive(&signal);
        let mut direct = signal.clone();
        fft::fft_inplace(&mut direct);
        for (a, b) in direct.iter().zip(&want) {
            prop_assert!((*a - *b).abs() < 1e-7 * n as f64);
        }
        // Distributed decomposition: interleave-split, per-tile FFT, merge.
        let subs: Vec<Vec<Complex64>> = fft::split_interleaved(&signal, tiles)
            .into_iter()
            .map(|mut t| {
                fft::fft_inplace(&mut t);
                t
            })
            .collect();
        let merged = fft::merge_interleaved(subs);
        for (a, b) in merged.iter().zip(&want) {
            prop_assert!((*a - *b).abs() < 1e-7 * n as f64);
        }
    }

    #[test]
    fn parseval_holds(log2 in 1u32..10, seed in 0u64..500) {
        let n = 1usize << log2;
        let signal: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(((i as f64) * (seed as f64 + 0.1)).sin(), 0.3))
            .collect();
        let te: f64 = signal.iter().map(|v| v.norm_sqr()).sum();
        let mut f = signal;
        fft::fft_inplace(&mut f);
        let fe: f64 = f.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() < 1e-7 * (1.0 + te));
    }

    #[test]
    fn cg_reduces_residual_on_random_spd(n in 4usize..32, seed in 0u64..200) {
        let a = tfhpc_tensor::rng::random_spd(n, seed, n as f64);
        let b = tfhpc_tensor::rng::random_uniform(DType::F64, [n], seed ^ 7).unwrap();
        let (x, rs) = tfhpc_apps::cg::serial_cg(&a, &b, n.max(10)).unwrap();
        // Residual must be tiny for a well-conditioned SPD system.
        prop_assert!(rs < 1e-12, "rs = {rs}");
        let ax = matmul::matvec(&a, &x).unwrap();
        let r = ops::sub(&b, &ax).unwrap();
        let rn = ops::norm2(&r).unwrap().scalar_value_f64().unwrap();
        prop_assert!(rn < 1e-5, "|b - Ax| = {rn}");
    }

    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let mut buf = bytes::BytesMut::new();
        wire::put_uvarint(&mut buf, v);
        let (back, rest) = wire::get_uvarint(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert!(rest.is_empty());
        prop_assert_eq!(buf.len(), wire::uvarint_len(v));
    }

    #[test]
    fn zigzag_roundtrips(v in any::<i64>()) {
        prop_assert_eq!(wire::zigzag_decode(wire::zigzag_encode(v)), v);
    }

    #[test]
    fn tensor_proto_roundtrips_f64(data in prop::collection::vec(-1e6f64..1e6, 0..64)) {
        let n = data.len();
        let t = Tensor::from_f64([n], data).unwrap();
        let bytes = tfhpc_core::TensorProto(t.clone()).to_bytes().unwrap();
        let back = tfhpc_core::TensorProto::decode(&bytes).unwrap().0;
        prop_assert_eq!(back.as_f64().unwrap(), t.as_f64().unwrap());
    }

    #[test]
    fn hostlist_roundtrips(start in 0u64..50, count in 1u64..20, width in 1usize..4) {
        let hosts: Vec<String> = (start..start + count)
            .map(|i| format!("node{i:0width$}"))
            .collect();
        // Skip widths too narrow for the numbers (padding undefined).
        prop_assume!(hosts.iter().all(|h| h.len() == "node".len() + width));
        let compressed = tfhpc_slurm::hostlist::compress(&hosts);
        prop_assert_eq!(tfhpc_slurm::hostlist::expand(&compressed), hosts);
    }

    #[test]
    fn queue_preserves_fifo_order(values in prop::collection::vec(any::<i64>(), 1..64)) {
        let q = tfhpc_core::FifoQueue::new("prop", values.len());
        for v in &values {
            q.enqueue(vec![Tensor::scalar_i64(*v)]).unwrap();
        }
        for v in &values {
            prop_assert_eq!(q.dequeue().unwrap()[0].scalar_value_i64().unwrap(), *v);
        }
    }

    #[test]
    fn des_is_deterministic(steps in prop::collection::vec(1u64..50, 2..5)) {
        let run = |steps: &[u64]| {
            let sim = tfhpc_sim::des::Sim::new();
            let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
            for (i, &s) in steps.iter().enumerate() {
                let log = Arc::clone(&log);
                sim.spawn(&format!("p{i}"), move || {
                    let me = tfhpc_sim::des::current().unwrap();
                    for k in 0..s {
                        me.advance(0.01 * (i + 1) as f64);
                        log.lock().push((i, k, (me.now() * 1e9).round() as u64));
                    }
                });
            }
            let end = sim.run();
            let events = log.lock().clone();
            (end.to_bits(), events)
        };
        prop_assert_eq!(run(&steps), run(&steps));
    }

    #[test]
    fn optimizer_preserves_semantics(
        ops_seq in prop::collection::vec(0usize..5, 1..12),
        consts in prop::collection::vec(-8.0f64..8.0, 2..5),
        seed in 0u64..100,
    ) {
        // Build a random pure graph over a few constants, optimize it,
        // and check every node still evaluates to the same value.
        use tfhpc_core::{DeviceCtx, Graph, Resources, Session};
        let mut g = Graph::new();
        let mut values: Vec<tfhpc_core::NodeId> = consts
            .iter()
            .map(|c| g.constant(Tensor::scalar_f64(*c)))
            .collect();
        let mut pick = seed;
        let mut next = |n: usize| {
            pick = pick.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (pick >> 33) as usize % n
        };
        for op in &ops_seq {
            let a = values[next(values.len())];
            let b = values[next(values.len())];
            let node = match op {
                0 => g.add(a, b),
                1 => g.sub(a, b),
                2 => g.mul(a, b),
                3 => g.neg(a),
                _ => g.scale(a, 0.5),
            };
            values.push(node);
        }
        let fetches: Vec<tfhpc_core::NodeId> = values.clone();
        let sess = Session::new(
            Arc::new(tfhpc_core::graph_from_bytes(&tfhpc_core::graph_to_bytes(&g).unwrap()).unwrap()),
            Resources::new(),
            DeviceCtx::real(0),
        );
        let original = sess.run(&fetches, &[]).unwrap();

        let opt = tfhpc_core::optimize_for(&g, &fetches).unwrap();
        let new_fetches: Vec<tfhpc_core::NodeId> =
            fetches.iter().map(|f| opt.remap(*f)).collect();
        let sess2 = Session::new(Arc::new(opt.graph), Resources::new(), DeviceCtx::real(0));
        let optimized = sess2.run(&new_fetches, &[]).unwrap();
        for (a, b) in original.iter().zip(&optimized) {
            let x = a.scalar_value_f64().unwrap();
            let y = b.scalar_value_f64().unwrap();
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
        }
        prop_assert!(opt.stats.nodes_after <= opt.stats.nodes_before);
    }

    #[test]
    fn ring_all_reduce_sums_arbitrary_vectors(
        p in 1usize..6,
        n in 1usize..24,
        seed in 0u64..100,
    ) {
        use tfhpc_dist::{ring_all_reduce, ClusterSpec, TaskKey, TfCluster};
        use tfhpc_sim::net::Protocol;
        let spec = ClusterSpec::new([(
            "worker".to_string(),
            (0..p).map(|i| format!("n{i}:8888")).collect::<Vec<_>>(),
        )]);
        let cluster = TfCluster::new(spec, Protocol::Rdma, None);
        let servers: Vec<_> = (0..p)
            .map(|i| cluster.start_server(TaskKey::new("worker", i), i, vec![]))
            .collect();
        let group: Vec<TaskKey> = (0..p).map(|i| TaskKey::new("worker", i)).collect();
        let inputs: Vec<Vec<f64>> = (0..p)
            .map(|i| {
                (0..n)
                    .map(|k| ((seed as usize + i * 31 + k * 7) % 13) as f64 - 6.0)
                    .collect()
            })
            .collect();
        let expected: Vec<f64> =
            (0..n).map(|k| inputs.iter().map(|v| v[k]).sum()).collect();
        let mut handles = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            let g = group.clone();
            let v = inputs[i].clone();
            handles.push(std::thread::spawn(move || {
                let t = Tensor::from_f64([v.len()], v).unwrap();
                ring_all_reduce(&s, &g, i, t, None).unwrap()
            }));
        }
        for h in handles {
            let r = h.join().unwrap();
            let rv = r.as_f64().unwrap();
            for (a, b) in rv.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn slice_concat_reconstructs_vector(
        data in prop::collection::vec(-1e3f64..1e3, 1..64),
        cuts in prop::collection::vec(0usize..64, 0..4),
    ) {
        // Splitting a vector at arbitrary cut points and concatenating
        // the pieces must reproduce it.
        let n = data.len();
        let t = Tensor::from_f64([n], data.clone()).unwrap();
        let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
        points.push(0);
        points.push(n);
        points.sort_unstable();
        points.dedup();
        let parts: Vec<Tensor> = points
            .windows(2)
            .map(|w| t.slice_range(w[0], w[1]).unwrap())
            .collect();
        let back = Tensor::concat_vecs(&parts).unwrap();
        prop_assert_eq!(back.as_f64().unwrap(), data.as_slice());
    }

    #[test]
    fn transpose_involution_and_product_rule(
        m in 1usize..12,
        n in 1usize..12,
        seed in 0u64..500,
    ) {
        let a = tfhpc_tensor::rng::random_uniform(DType::F64, [m, n], seed).unwrap();
        let t = matmul::transpose(&a).unwrap();
        let tt = matmul::transpose(&t).unwrap();
        prop_assert_eq!(tt.as_f64().unwrap(), a.as_f64().unwrap());
        // (A·Aᵀ) is symmetric.
        let aat = matmul::matmul(&a, &t).unwrap();
        let aat_t = matmul::transpose(&aat).unwrap();
        for (x, y) in aat.as_f64().unwrap().iter().zip(aat_t.as_f64().unwrap()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn synthetic_ops_preserve_shape_metadata(
        rows in 1usize..1000,
        cols in 1usize..1000,
        seed in any::<u64>(),
    ) {
        let a = Tensor::synthetic(DType::F32, [rows, cols], seed);
        let b = Tensor::synthetic(DType::F32, [cols, rows], seed ^ 1);
        let c = matmul::matmul(&a, &b).unwrap();
        prop_assert!(c.is_synthetic());
        prop_assert_eq!(c.shape().dims(), &[rows, rows]);
        let s = ops::add(&a, &a).unwrap();
        prop_assert_eq!(s.shape().dims(), &[rows, cols]);
        // Reductions realize to dense scalars.
        let d = ops::sum(&a).unwrap();
        prop_assert!(!d.is_synthetic());
    }
}

/// Copy tile (i, j) out of an n x n matrix.
fn slice_tile(m: &Tensor, i: usize, j: usize, tile: usize, n: usize) -> Tensor {
    let mv = m.as_f64().unwrap();
    let mut out = Vec::with_capacity(tile * tile);
    for r in 0..tile {
        let row = i * tile + r;
        out.extend_from_slice(&mv[row * n + j * tile..row * n + (j + 1) * tile]);
    }
    Tensor::from_f64([tile, tile], out).unwrap()
}
