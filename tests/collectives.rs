//! Collective parity suite: every decentralized all-reduce (ring,
//! binomial tree, recursive halving-doubling, and the auto selector)
//! must reproduce the central reducer's canonical binomial fold bit
//! for bit — over odd lengths, non-power-of-two groups, unaligned
//! slice offsets, Sum/Min/Max, both transports, and under seeded
//! corruption windows that force retransmissions.
//!
//! The contract under test is the fixed reduction-order rule from
//! `tfhpc_dist::reducer`: whatever route the partials take, they are
//! combined in canonical binomial-block order, so the delivered bits
//! are a pure function of (op, leaves) — never of topology, timing,
//! transport, or fault schedule.
//!
//! Knobs (matching the chaos suite):
//!   `TFHPC_FAULT_SEED` — corruption-schedule seed (default 42).

use std::sync::{Arc, Mutex};
use tfhpc_core::RetryConfig;
use tfhpc_dist::{
    all_reduce, all_reduce_auto, canonical_reduce, launch, worker_all_reduce, AllReduceAlgo,
    JobSpec, LaunchConfig, ReduceOp, Reducer, TaskKey,
};
use tfhpc_sim::fault::FaultPlan;
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::kebnekaise_k80;
use tfhpc_tensor::Tensor;

fn fault_seed() -> u64 {
    std::env::var("TFHPC_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Deterministic, sign-mixed rank-1 f64 leaf: float addition over
/// these is order-sensitive, so bit-equality actually exercises the
/// canonical-order contract rather than passing by accident.
fn leaf(worker: usize, n: usize) -> Tensor {
    let v: Vec<f64> = (0..n)
        .map(|k| {
            let m = ((worker * 37 + k * 11) % 997) as f64;
            if (worker + k).is_multiple_of(3) {
                -1.75 * m
            } else {
                0.375 * m + 0.0625
            }
        })
        .collect();
    Tensor::from_f64([n], v).expect("leaf tensor")
}

fn expected_bits(op: ReduceOp, leaves: Vec<Tensor>) -> Vec<u64> {
    canonical_reduce(op, leaves)
        .expect("canonical fold")
        .as_f64()
        .expect("f64 fold")
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

struct RunOut {
    bits: Vec<u64>,
    retransmits: u64,
    corruption_detected: u64,
}

/// `(worker index, delivered bits)` rows collected across the gang.
type BitRows = Arc<Mutex<Vec<(usize, Vec<u64>)>>>;

/// Launch `p` simulated workers, run one all-reduce (`algo = None` is
/// the auto selector), assert every worker delivered identical bits,
/// and return them with the summed fault counters.
fn run_algo(
    algo: Option<AllReduceAlgo>,
    p: usize,
    op: ReduceOp,
    protocol: Protocol,
    make_leaf: Arc<dyn Fn(usize) -> Tensor + Send + Sync>,
    faults: Option<(FaultPlan, RetryConfig)>,
) -> RunOut {
    let mut cfg = LaunchConfig::simulated(
        kebnekaise_k80(),
        vec![JobSpec::new("worker", p, 1)],
        protocol,
    );
    if let Some((plan, retry)) = faults {
        cfg = cfg.with_faults(plan).with_retry(retry);
    }
    let rows: BitRows = Arc::new(Mutex::new(Vec::new()));
    let counters = Arc::new(Mutex::new((0u64, 0u64)));
    let rows_in = Arc::clone(&rows);
    let counters_in = Arc::clone(&counters);
    launch(&cfg, move |ctx| {
        let w = ctx.index();
        let group: Vec<TaskKey> = (0..p).map(|i| TaskKey::new("worker", i)).collect();
        let r = match algo {
            Some(a) => all_reduce(&ctx.server, &group, w, make_leaf(w), Some(0), op, a)?,
            None => all_reduce_auto(&ctx.server, &group, w, make_leaf(w), Some(0), op)?,
        };
        let bits: Vec<u64> = r.as_f64()?.iter().map(|x| x.to_bits()).collect();
        rows_in.lock().unwrap().push((w, bits));
        let mut c = counters_in.lock().unwrap();
        c.0 += ctx.server.resources.retransmits_total();
        c.1 += ctx.server.resources.corruption_detected_total();
        Ok(())
    })
    .expect("collective launch");
    let mut rows = rows.lock().unwrap().clone();
    rows.sort();
    assert_eq!(rows.len(), p, "missing worker results");
    for (w, bits) in &rows {
        assert_eq!(bits, &rows[0].1, "worker {w} diverged from worker 0");
    }
    let (retransmits, corruption_detected) = *counters.lock().unwrap();
    RunOut {
        bits: rows[0].1.clone(),
        retransmits,
        corruption_detected,
    }
}

fn algos_for(p: usize) -> Vec<Option<AllReduceAlgo>> {
    let mut algos = vec![Some(AllReduceAlgo::Ring), Some(AllReduceAlgo::Tree)];
    if p.is_power_of_two() {
        algos.push(Some(AllReduceAlgo::Rhd));
    }
    algos.push(None); // auto selector
    algos
}

/// Every decentralized algorithm and the live queue-pair reducer
/// service deliver the same bits as the canonical fold, for all three
/// ops, on the same group.
#[test]
fn all_algorithms_match_live_central_reducer() {
    const P: usize = 4;
    const N: usize = 11;
    for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
        let want = expected_bits(op, (0..P).map(|w| leaf(w, N)).collect());

        // Live central reducer: a dedicated reducer task serves one
        // round of the paper's Fig. 5 queue-pair workflow.
        let cfg = LaunchConfig::simulated(
            kebnekaise_k80(),
            vec![JobSpec::new("reducer", 1, 0), JobSpec::new("worker", P, 1)],
            Protocol::Rdma,
        );
        let rows: Arc<Mutex<Vec<Vec<u64>>>> = Arc::new(Mutex::new(Vec::new()));
        let rows_in = Arc::clone(&rows);
        launch(&cfg, move |ctx| {
            if ctx.job() == "reducer" {
                Reducer::new(ctx.server.clone(), "ar", P, op).serve_round()
            } else {
                let w = ctx.index();
                let r = worker_all_reduce(
                    &ctx.server,
                    &TaskKey::new("reducer", 0),
                    "ar",
                    w,
                    leaf(w, N),
                    Some(0),
                )?;
                let bits: Vec<u64> = r.as_f64()?.iter().map(|x| x.to_bits()).collect();
                rows_in.lock().unwrap().push(bits);
                Ok(())
            }
        })
        .expect("reducer launch");
        for bits in rows.lock().unwrap().iter() {
            assert_eq!(bits, &want, "queue-pair reducer diverged ({op:?})");
        }

        for algo in algos_for(P) {
            let got = run_algo(
                algo,
                P,
                op,
                Protocol::Rdma,
                Arc::new(move |w| leaf(w, N)),
                None,
            );
            assert_eq!(
                got.bits, want,
                "{algo:?} diverged from central fold ({op:?})"
            );
        }
    }
}

/// Odd vector lengths and non-power-of-two groups (including P > n,
/// where trailing ring chunks are empty) on the staged-copy wire.
#[test]
fn non_pow2_groups_and_odd_lengths_match_canonical() {
    for (p, n) in [(3usize, 7usize), (5, 1), (6, 33), (7, 13), (4, 2)] {
        let want = expected_bits(ReduceOp::Sum, (0..p).map(|w| leaf(w, n)).collect());
        for algo in algos_for(p) {
            let got = run_algo(
                algo,
                p,
                ReduceOp::Sum,
                Protocol::Grpc,
                Arc::new(move |w| leaf(w, n)),
                None,
            );
            assert_eq!(got.bits, want, "{algo:?} diverged at p={p} n={n}");
        }
    }
}

/// Leaves carved out of a larger buffer at odd offsets: the slice
/// views have unaligned storage offsets, so any code path that assumes
/// aligned or zero-based layouts would diverge here.
#[test]
fn unaligned_slice_offsets_match_canonical() {
    const P: usize = 4;
    const BASE: usize = 64;
    const LEN: usize = 17;
    for off in [3usize, 5] {
        let make = move |w: usize| {
            leaf(w, BASE)
                .slice_range(off, off + LEN)
                .expect("slice leaf")
        };
        let want = expected_bits(ReduceOp::Sum, (0..P).map(make).collect());
        for algo in algos_for(P) {
            let got = run_algo(algo, P, ReduceOp::Sum, Protocol::Rdma, Arc::new(make), None);
            assert_eq!(got.bits, want, "{algo:?} diverged at offset {off}");
        }
    }
}

/// Min/Max flow through every algorithm on both wire transports
/// (Grpc resolves to staged-copy, Rdma to zero-copy).
#[test]
fn min_max_parity_across_algorithms_and_transports() {
    const P: usize = 4;
    const N: usize = 13;
    for op in [ReduceOp::Min, ReduceOp::Max] {
        let want = expected_bits(op, (0..P).map(|w| leaf(w, N)).collect());
        for protocol in [Protocol::Grpc, Protocol::Rdma] {
            for algo in algos_for(P) {
                let got = run_algo(algo, P, op, protocol, Arc::new(move |w| leaf(w, N)), None);
                assert_eq!(got.bits, want, "{algo:?} diverged ({op:?}, {protocol:?})");
            }
        }
    }
}

/// Seeded corruption windows plus a deterministic window on node 0
/// (Kebnekaise packs the whole 4-task group onto it) force the framed
/// slow path and retransmissions — and the delivered bits must still
/// be the canonical fold, because the retry layer replays corrupted
/// transfers until the CRC passes.
#[test]
fn corruption_windows_with_retransmit_preserve_bits() {
    const P: usize = 4;
    const N: usize = 257;
    const HORIZON_S: f64 = 4.0e-4;
    let want = expected_bits(ReduceOp::Sum, (0..P).map(|w| leaf(w, N)).collect());
    let mut total_retransmits = 0u64;
    let mut total_detected = 0u64;
    for algo in algos_for(P) {
        let plan = FaultPlan::new()
            .link_corrupt(0, 0.0, 1.2e-4)
            .merged(FaultPlan::seeded_corruption(fault_seed(), 2, HORIZON_S));
        let got = run_algo(
            algo,
            P,
            ReduceOp::Sum,
            Protocol::Rdma,
            Arc::new(move |w| leaf(w, N)),
            Some((plan, RetryConfig::new(8, 5.0e-5))),
        );
        assert_eq!(
            got.bits,
            want,
            "{algo:?} diverged under corruption (seed {})",
            fault_seed()
        );
        total_retransmits += got.retransmits;
        total_detected += got.corruption_detected;
    }
    assert!(
        total_retransmits > 0,
        "corruption windows never forced a retransmission (seed {})",
        fault_seed()
    );
    assert!(
        total_detected >= total_retransmits,
        "every retransmission should follow a detection"
    );
}
