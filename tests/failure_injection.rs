//! Failure injection: the framework must fail loudly and accurately —
//! closed queues, deadlocks (detected by the DES), device OOM, GPU
//! over-subscription, unserializable graphs and unfed placeholders —
//! and recover deterministically from *injected* faults: peer death
//! unblocks parked consumers with `Unavailable`, deadlines expire at
//! the exact virtual instant, transient link faults are retried (and
//! counted in `RunMetadata`), and a crash-injected CG run restarts
//! from its checkpoint to the bit-identical residual.
//!
//! The seeded tests honor `TFHPC_FAULT_SEED` (CI sweeps 17/42/1337).

use std::sync::Arc;
use tfhpc_apps::{run_cg_supervised, run_cg_with_store, CgConfig, CgReduction, FaultSetup};
use tfhpc_core::{
    CoreError, DeviceCtx, Graph, OpKernel, Placement, Resources, Result as CoreResult, RetryConfig,
    Session,
};
use tfhpc_dist::{
    launch, recv_deadline, send, JobSpec, LaunchConfig, RendezvousKey, SupervisorConfig, TaskKey,
};
use tfhpc_sim::des::Sim;
use tfhpc_sim::fault::FaultPlan;
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::{tegner_k420, tegner_k80};
use tfhpc_tensor::{DType, Tensor};

#[test]
fn queue_closed_mid_run_surfaces_out_of_range() {
    // Consumer drains a queue that the producer closes after 3 items:
    // dequeues past the drain must error with QueueClosed.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("cons", 1, 0), JobSpec::new("prod", 1, 0)],
        Protocol::Rdma,
    );
    let outcomes = Arc::new(parking_lot::Mutex::new((0usize, false)));
    let outcomes2 = Arc::clone(&outcomes);
    launch(&cfg, move |ctx| {
        if ctx.job() == "cons" {
            let q = ctx.server.resources.create_queue("work", 8);
            loop {
                match q.dequeue() {
                    Ok(_) => outcomes2.lock().0 += 1,
                    Err(CoreError::QueueClosed(_)) => {
                        outcomes2.lock().1 = true;
                        return Ok(());
                    }
                    Err(e) => return Err(e),
                }
            }
        } else {
            for i in 0..3 {
                ctx.server.remote_enqueue(
                    &TaskKey::new("cons", 0),
                    "work",
                    vec![Tensor::scalar_i64(i)],
                    None,
                )?;
            }
            ctx.server
                .cluster()
                .server(&TaskKey::new("cons", 0))?
                .resources
                .queue("work")?
                .close();
            Ok(())
        }
    })
    .unwrap();
    assert_eq!(*outcomes.lock(), (3, true));
}

#[test]
fn deadlocked_protocol_is_detected_not_hung() {
    // Two tasks each waiting on the other's queue: the DES must detect
    // the all-blocked state and abort with a diagnostic, not hang.
    let result = std::panic::catch_unwind(|| {
        let sim = Sim::new();
        let q1 = Arc::new(parking_lot::Mutex::new(None::<Arc<tfhpc_core::FifoQueue>>));
        let q2 = Arc::new(parking_lot::Mutex::new(None::<Arc<tfhpc_core::FifoQueue>>));
        {
            let q1 = Arc::clone(&q1);
            let q2 = Arc::clone(&q2);
            sim.spawn("a", move || {
                let mine = tfhpc_core::FifoQueue::new("qa", 1);
                *q1.lock() = Some(Arc::clone(&mine));
                // Wait for b's queue then block on it while b blocks on ours.
                loop {
                    if let Some(q) = q2.lock().clone() {
                        let _ = q.dequeue();
                        return;
                    }
                    tfhpc_sim::des::current().unwrap().advance(0.001);
                }
            });
        }
        {
            let q1 = Arc::clone(&q1);
            let q2 = Arc::clone(&q2);
            sim.spawn("b", move || {
                let mine = tfhpc_core::FifoQueue::new("qb", 1);
                *q2.lock() = Some(Arc::clone(&mine));
                loop {
                    if let Some(q) = q1.lock().clone() {
                        let _ = q.dequeue();
                        return;
                    }
                    tfhpc_sim::des::current().unwrap().advance(0.001);
                }
            });
        }
        sim.run();
    });
    let err = result.expect_err("deadlock must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("deadlock"), "got: {msg}");
    assert!(msg.contains("waiting on"), "diagnostic dump missing: {msg}");
}

#[test]
fn k420_oom_on_oversized_working_set() {
    // A K420 exposes ~0.9 GB usable: a 512 MB x 2 + 512 MB matmul
    // working set cannot fit — the session must report OOM, mirroring
    // why the paper had to shrink K420 tiles.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("worker", 1, 1)],
        Protocol::Rdma,
    );
    let result = launch(&cfg, |ctx| {
        let mut g = Graph::new();
        let n = 12000; // 12000^2 f32 = 576 MB per operand
        let a = g.constant(Tensor::synthetic(DType::F32, [n, n], 1));
        let b = g.constant(Tensor::synthetic(DType::F32, [n, n], 2));
        let c = g.with_device(Placement::Gpu(0), |g| g.matmul(a, b));
        let sess = ctx.server.session(Arc::new(g));
        sess.run(&[c], &[]).map(|_| ())
    });
    match result {
        Err(err) => assert!(err.to_string().contains("out of memory"), "got: {err}"),
        Ok(_) => panic!("OOM must fail the launch (without panicking it)"),
    }
}

#[test]
fn same_working_set_fits_on_k80() {
    // The identical graph runs fine on a 12 GB GK210.
    let cfg = LaunchConfig::simulated(
        tegner_k80(),
        vec![JobSpec::new("worker", 1, 1)],
        Protocol::Rdma,
    );
    launch(&cfg, |ctx| {
        let mut g = Graph::new();
        let n = 12000;
        let a = g.constant(Tensor::synthetic(DType::F32, [n, n], 1));
        let b = g.constant(Tensor::synthetic(DType::F32, [n, n], 2));
        let c = g.with_device(Placement::Gpu(0), |g| g.matmul(a, b));
        let sess = ctx.server.session(Arc::new(g));
        sess.run(&[c], &[]).map(|_| ())
    })
    .unwrap();
}

#[test]
fn gpu_oversubscription_rejected_at_launch() {
    // K420 nodes have one GPU; two GPUs per task cannot be satisfied.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("worker", 2, 2)],
        Protocol::Rdma,
    );
    assert!(matches!(
        launch(&cfg, |_| Ok(())),
        Err(CoreError::Invalid(_))
    ));
}

#[test]
fn unfed_placeholder_and_bad_feed_shapes() {
    let mut g = Graph::new();
    let p = g.placeholder(DType::F64, Some([4].into()));
    let n = g.neg(p);
    let sess = Session::new(Arc::new(g), Resources::new(), DeviceCtx::real(0));
    assert!(matches!(sess.run(&[n], &[]), Err(CoreError::Graph(_))));
    let wrong_shape = Tensor::zeros(DType::F64, [5]);
    assert!(sess.run(&[n], &[(p, wrong_shape)]).is_err());
    let wrong_dtype = Tensor::zeros(DType::F32, [4]);
    assert!(sess.run(&[n], &[(p, wrong_dtype)]).is_err());
}

#[test]
fn pyfunc_graph_serialization_rejected() {
    let mut g = Graph::new();
    let a = g.constant(Tensor::scalar_f64(1.0));
    g.py_func("host", &[a], 1, 0.0, Arc::new(|_, i| Ok(i.to_vec())));
    assert!(tfhpc_core::graph_to_bytes(&g).is_err());
}

#[test]
fn missing_resources_reported_by_name() {
    let mut g = Graph::new();
    let v = g.var_read("not_created");
    let sess = Session::new(Arc::new(g), Resources::new(), DeviceCtx::real(0));
    match sess.run(&[v], &[]) {
        Err(CoreError::NotFound(msg)) => assert!(msg.contains("not_created")),
        other => panic!("expected NotFound, got {other:?}"),
    }
}

// ---- the injected-fault plane ------------------------------------------

#[test]
fn peer_death_unblocks_parked_dequeue_with_unavailable() {
    // Consumer parks on an empty queue; the producer dies at t=0.5.
    // Instead of a DES deadlock, the supervisor drains the gang and the
    // parked dequeue wakes with `Unavailable`.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("cons", 1, 0), JobSpec::new("prod", 1, 0)],
        Protocol::Rdma,
    );
    let observed = Arc::new(parking_lot::Mutex::new(String::new()));
    let obs = Arc::clone(&observed);
    let result = launch(&cfg, move |ctx| {
        if ctx.job() == "cons" {
            let q = ctx.server.resources.create_queue("work", 4);
            match q.dequeue() {
                Err(e @ CoreError::Unavailable(_)) => {
                    *obs.lock() = e.to_string();
                    Err(e)
                }
                other => Err(CoreError::Invalid(format!(
                    "expected Unavailable, got {other:?}"
                ))),
            }
        } else {
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(0.5);
            }
            Err(CoreError::Invalid("producer exploded".into()))
        }
    });
    match result {
        Err(err) => assert!(err.to_string().contains("producer exploded"), "{err}"),
        Ok(_) => panic!("producer death must fail the launch"),
    }
    let seen = observed.lock().clone();
    assert!(seen.contains("gang draining"), "consumer saw: {seen}");
}

#[test]
fn recv_deadline_expires_at_the_exact_virtual_instant() {
    // The producer sends at t=1.0; a 0.25 s deadline on the consumer
    // must expire at *exactly* t=0.25 virtual (timers jump the clock to
    // the deadline, not past it), and a second wait sees the value.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("src", 1, 0), JobSpec::new("dst", 1, 0)],
        Protocol::Rdma,
    );
    let observed = Arc::new(parking_lot::Mutex::new(f64::NAN));
    let obs = Arc::clone(&observed);
    launch(&cfg, move |ctx| {
        let key = RendezvousKey::new(TaskKey::new("src", 0), TaskKey::new("dst", 0), "edge", 7);
        if ctx.job() == "dst" {
            match recv_deadline(&ctx.server, &key, None, 0.25) {
                Err(CoreError::DeadlineExceeded(_)) => *obs.lock() = ctx.now(),
                other => {
                    return Err(CoreError::Invalid(format!(
                        "expected DeadlineExceeded, got {other:?}"
                    )))
                }
            }
            let v = recv_deadline(&ctx.server, &key, None, 10.0)?;
            assert_eq!(v.scalar_value_f64()?, 42.0);
            Ok(())
        } else {
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(1.0);
            }
            send(&ctx.server, &key, Tensor::scalar_f64(42.0), None)
        }
    })
    .unwrap();
    let t = *observed.lock();
    assert_eq!(t.to_bits(), 0.25f64.to_bits(), "deadline expired at t={t}");
}

/// Worker-side kernel pushing one scalar into the ps accumulator —
/// routed through a session so the retry shows up in `RunMetadata`.
struct PushAcc {
    server: Arc<tfhpc_dist::Server>,
}

impl OpKernel for PushAcc {
    fn name(&self) -> &str {
        "PushAcc"
    }

    fn compute(&self, _res: &Resources, _inputs: &[Tensor]) -> CoreResult<Vec<Tensor>> {
        self.server.remote_assign_add(
            &TaskKey::new("ps", 0),
            "acc",
            &Tensor::scalar_f64(1.0),
            None,
            None,
        )?;
        Ok(vec![Tensor::scalar_f64(1.0)])
    }
}

#[test]
fn transient_link_fault_is_retried_and_counted_in_run_metadata() {
    // The ps node's links drop traffic during [0, 0.2): the worker's
    // remote push at t≈0.05 fails with `Unavailable`, the retry policy
    // backs off past the window, and the second attempt lands. The
    // transparent retry is visible in the run's `RunMetadata`.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("ps", 1, 0), JobSpec::new("worker", 1, 0)],
        Protocol::Rdma,
    )
    .with_faults(FaultPlan::new().link_fault(0, 0.0, 0.2))
    .with_retry(RetryConfig::new(5, 0.2));
    let retries = Arc::new(parking_lot::Mutex::new(0u64));
    let r2 = Arc::clone(&retries);
    let out = launch(&cfg, move |ctx| {
        if ctx.job() == "ps" {
            ctx.server
                .resources
                .create_variable("acc", Tensor::scalar_f64(0.0));
            return Ok(());
        }
        if let Some(me) = tfhpc_sim::des::current() {
            me.advance(0.05);
        }
        let mut g = Graph::new();
        let kernel: Arc<dyn OpKernel> = Arc::new(PushAcc {
            server: Arc::clone(&ctx.server),
        });
        let op = g.custom(kernel, &[], &[]);
        let sess = ctx.server.session(Arc::new(g));
        let (_, meta) = sess.run_with_metadata(&[op], &[])?;
        *r2.lock() = meta.retries;
        Ok(())
    })
    .unwrap();
    assert_eq!(*retries.lock(), 1, "exactly one transparent retry");
    let ps = out.cluster.server(&TaskKey::new("ps", 0)).unwrap();
    assert_eq!(
        ps.resources
            .variable("acc")
            .unwrap()
            .read()
            .scalar_value_f64()
            .unwrap(),
        1.0,
        "the retried push must land exactly once"
    );
}

#[test]
fn partial_restart_fences_deadlines_to_exact_virtual_instants() {
    // A healthy consumer holds timed waits (`recv_deadline`,
    // `dequeue_timeout`) while its peer crashes and is *partially*
    // restarted onto a spare node. The deadlines must expire at their
    // exact virtual instants (unperturbed by the repair), the parked
    // wait must survive the peer's replacement and then receive from
    // the new incarnation, and the consumer's own attempt counter must
    // stay at 0 — no collateral restart.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("dst", 1, 0), JobSpec::new("src", 1, 0)],
        Protocol::Rdma,
    )
    .with_faults(FaultPlan::new().crash(1, 0.5))
    .with_supervisor(
        SupervisorConfig::restarting(1)
            .with_partial_restart(["src"])
            .with_spares(1),
    );
    let out = launch(&cfg, move |ctx| {
        let key = RendezvousKey::new(TaskKey::new("src", 0), TaskKey::new("dst", 0), "edge", 7);
        if ctx.job() == "dst" {
            let q = ctx.server.resources.create_queue("work", 4);
            match recv_deadline(&ctx.server, &key, None, 0.25) {
                Err(CoreError::DeadlineExceeded(_)) => {
                    assert_eq!(ctx.now().to_bits(), 0.25f64.to_bits(), "{}", ctx.now());
                }
                other => {
                    return Err(CoreError::Invalid(format!(
                        "expected DeadlineExceeded, got {other:?}"
                    )))
                }
            }
            match q.dequeue_timeout(0.15) {
                Err(CoreError::DeadlineExceeded(_)) => {
                    assert_eq!(ctx.now().to_bits(), 0.4f64.to_bits(), "{}", ctx.now());
                }
                other => {
                    return Err(CoreError::Invalid(format!(
                        "expected DeadlineExceeded, got {other:?}"
                    )))
                }
            }
            // Park across the peer's crash (t=0.5) and partial repair:
            // the replacement incarnation (attempt 1) must feed both
            // the rendezvous and the queue.
            let v = recv_deadline(&ctx.server, &key, None, 10.0)?;
            assert_eq!(v.scalar_value_f64()?, 1.0, "sender was not attempt 1");
            let tuple = q.dequeue()?;
            assert_eq!(tuple[0].scalar_value_f64()?, 1.0);
            Ok(())
        } else {
            if ctx.attempt() == 0 {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(0.6);
                }
                ctx.check_faults()?;
                return Err(CoreError::Invalid("crash at 0.5 did not fire".into()));
            }
            let stamp = Tensor::scalar_f64(ctx.attempt() as f64);
            send(&ctx.server, &key, stamp.clone(), None)?;
            ctx.server
                .remote_enqueue(&TaskKey::new("dst", 0), "work", vec![stamp], None)
        }
    })
    .unwrap();
    assert_eq!(out.restarts, 1);
    assert_eq!(out.replacements.len(), 1, "src must move to the spare");
    assert_eq!(out.replacements[0].0, TaskKey::new("src", 0));
    for exit in &out.task_exits {
        if exit.key.job == "dst" {
            assert_eq!(exit.attempt, 0, "healthy task restarted: {:?}", exit.key);
            assert!(exit.error.is_none());
        }
    }
}

#[test]
fn hang_with_zero_budget_is_fatal_not_deadlocked() {
    // Liveness detection with no restart budget: the hang must still be
    // *detected* (the run cannot sit in a silent deadlock), the fatal
    // drain must unwind a healthy peer parked in `recv_deadline`, and
    // the launch must fail with the detector's verdict.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("dst", 1, 0), JobSpec::new("src", 1, 0)],
        Protocol::Rdma,
    )
    .with_faults(FaultPlan::new().hang(1, 0.3))
    .with_supervisor(SupervisorConfig::default().with_heartbeats(0.05, 0.2));
    let unwound = Arc::new(parking_lot::Mutex::new(false));
    let unwound2 = Arc::clone(&unwound);
    let result = launch(&cfg, move |ctx| {
        let key = RendezvousKey::new(TaskKey::new("src", 0), TaskKey::new("dst", 0), "edge", 1);
        if ctx.job() == "dst" {
            // Nothing will ever arrive: the sender hangs at t=0.3. The
            // fatal path must abort this wait well before its deadline.
            match recv_deadline(&ctx.server, &key, None, 100.0) {
                Err(e) => {
                    assert!(ctx.now() < 1.0, "drain came too late: {}", ctx.now());
                    *unwound2.lock() = true;
                    Err(e)
                }
                Ok(_) => Err(CoreError::Invalid("received from a hung peer".into())),
            }
        } else {
            loop {
                if let Some(me) = tfhpc_sim::des::current() {
                    me.advance(0.05);
                }
                ctx.check_faults()?;
            }
        }
    });
    let err = match result {
        Err(e) => e,
        Ok(_) => panic!("zero budget must fail the launch"),
    };
    assert!(err.to_string().contains("heartbeat silence"), "{err}");
    assert!(*unwound.lock(), "parked recv was not unwound by the drain");
}

#[test]
fn repeated_hangs_exhaust_the_restart_budget() {
    // First hang (t=0.3) is detected and consumes the single restart;
    // the second (t=1.0) hits the replacement generation and must turn
    // fatal — exercising the exhausted-budget supervisor path end to
    // end in virtual time.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("worker", 2, 1)],
        Protocol::Rdma,
    )
    .with_faults(FaultPlan::new().hang(1, 0.3).hang(1, 1.0))
    .with_supervisor(SupervisorConfig::restarting(1).with_heartbeats(0.05, 0.2));
    let result = launch(&cfg, |ctx| {
        for _ in 0..20 {
            if let Some(me) = tfhpc_sim::des::current() {
                me.advance(0.1);
            }
            ctx.check_faults()?;
        }
        Ok(())
    });
    let err = match result {
        Err(e) => e,
        Ok(_) => panic!("second hang must exhaust the budget"),
    };
    assert!(err.to_string().contains("heartbeat silence"), "{err}");
}

fn crash_cg_cfg(iterations: usize) -> CgConfig {
    CgConfig {
        n: 256,
        workers: 2,
        iterations,
        protocol: Protocol::Rdma,
        simulated: true,
        checkpoint_every: Some(4),
        resume: false,
        reduction: CgReduction::QueuePair,
    }
}

#[test]
fn crash_injected_cg_restarts_from_checkpoint_bit_exactly() {
    // The tentpole demonstration: crash worker 1's node (node 2 —
    // reducer on 0, worker 0 on 1) halfway through a checkpointed CG
    // run. The supervisor gang-restarts from the latest common
    // checkpoint and the final residual is bit-identical to the
    // uninterrupted run; the whole faulty schedule is byte-for-byte
    // reproducible across repeats.
    let p = tegner_k420();
    let cfg = crash_cg_cfg(16);
    let (clean, _) = run_cg_with_store(&p, &cfg, None).unwrap();
    assert_eq!(clean.restarts, 0);

    let faults = FaultSetup::new(FaultPlan::new().crash(2, clean.elapsed_s * 0.5), 2);
    let (a, _) = run_cg_supervised(&p, &cfg, &faults).unwrap();
    let (b, _) = run_cg_supervised(&p, &cfg, &faults).unwrap();
    assert_eq!(a.restarts, 1, "one gang restart expected");
    assert_eq!(
        a.rs_final.to_bits(),
        clean.rs_final.to_bits(),
        "checkpoint restart must reproduce the uninterrupted residual: {} vs {}",
        a.rs_final,
        clean.rs_final
    );
    assert!(
        a.elapsed_s > clean.elapsed_s,
        "the rerun costs virtual time"
    );
    // Determinism of the injected schedule itself.
    assert_eq!(b.restarts, a.restarts);
    assert_eq!(b.rs_final.to_bits(), a.rs_final.to_bits());
    assert_eq!(b.elapsed_s.to_bits(), a.elapsed_s.to_bits());
}

#[test]
fn seeded_fault_plan_perturbs_timing_not_results() {
    // A seeded transient-fault schedule (link faults + delay spikes, no
    // crashes) under a generous retry policy: the residual matches the
    // fault-free run bit for bit — transient faults cost time, never
    // correctness — and two runs of the same seed are byte-identical.
    // CI sweeps TFHPC_FAULT_SEED over {17, 42, 1337}.
    let seed: u64 = std::env::var("TFHPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let p = tegner_k420();
    let cfg = crash_cg_cfg(12);
    let (clean, _) = run_cg_with_store(&p, &cfg, None).unwrap();

    let plan = FaultPlan::seeded(seed, 3, clean.elapsed_s);
    let setup = FaultSetup::new(plan, 0).with_retry(RetryConfig::new(10, clean.elapsed_s * 0.05));
    let (a, _) = run_cg_supervised(&p, &cfg, &setup).unwrap();
    let (b, _) = run_cg_supervised(&p, &cfg, &setup).unwrap();
    assert_eq!(a.restarts, 0, "transient faults must not consume restarts");
    assert_eq!(
        a.rs_final.to_bits(),
        clean.rs_final.to_bits(),
        "seed {seed}: transient faults changed the residual"
    );
    assert_eq!(a.elapsed_s.to_bits(), b.elapsed_s.to_bits());
    assert_eq!(a.rs_final.to_bits(), b.rs_final.to_bits());
    assert!(
        a.elapsed_s >= clean.elapsed_s,
        "seed {seed}: faults cannot make the run faster ({} vs {})",
        a.elapsed_s,
        clean.elapsed_s
    );
}
