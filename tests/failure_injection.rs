//! Failure injection: the framework must fail loudly and accurately —
//! closed queues, deadlocks (detected by the DES), device OOM, GPU
//! over-subscription, unserializable graphs and unfed placeholders.

use std::sync::Arc;
use tfhpc_core::{CoreError, DeviceCtx, Graph, Placement, Resources, Session};
use tfhpc_dist::{launch, JobSpec, LaunchConfig, TaskKey};
use tfhpc_sim::des::Sim;
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::{tegner_k420, tegner_k80};
use tfhpc_tensor::{DType, Tensor};

#[test]
fn queue_closed_mid_run_surfaces_out_of_range() {
    // Consumer drains a queue that the producer closes after 3 items:
    // dequeues past the drain must error with QueueClosed.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("cons", 1, 0), JobSpec::new("prod", 1, 0)],
        Protocol::Rdma,
    );
    let outcomes = Arc::new(parking_lot::Mutex::new((0usize, false)));
    let outcomes2 = Arc::clone(&outcomes);
    launch(&cfg, move |ctx| {
        if ctx.job() == "cons" {
            let q = ctx.server.resources.create_queue("work", 8);
            loop {
                match q.dequeue() {
                    Ok(_) => outcomes2.lock().0 += 1,
                    Err(CoreError::QueueClosed(_)) => {
                        outcomes2.lock().1 = true;
                        return Ok(());
                    }
                    Err(e) => return Err(e),
                }
            }
        } else {
            for i in 0..3 {
                ctx.server.remote_enqueue(
                    &TaskKey::new("cons", 0),
                    "work",
                    vec![Tensor::scalar_i64(i)],
                    None,
                )?;
            }
            ctx.server
                .cluster()
                .server(&TaskKey::new("cons", 0))?
                .resources
                .queue("work")?
                .close();
            Ok(())
        }
    })
    .unwrap();
    assert_eq!(*outcomes.lock(), (3, true));
}

#[test]
fn deadlocked_protocol_is_detected_not_hung() {
    // Two tasks each waiting on the other's queue: the DES must detect
    // the all-blocked state and abort with a diagnostic, not hang.
    let result = std::panic::catch_unwind(|| {
        let sim = Sim::new();
        let q1 = Arc::new(parking_lot::Mutex::new(None::<Arc<tfhpc_core::FifoQueue>>));
        let q2 = Arc::new(parking_lot::Mutex::new(None::<Arc<tfhpc_core::FifoQueue>>));
        {
            let q1 = Arc::clone(&q1);
            let q2 = Arc::clone(&q2);
            sim.spawn("a", move || {
                let mine = tfhpc_core::FifoQueue::new("qa", 1);
                *q1.lock() = Some(Arc::clone(&mine));
                // Wait for b's queue then block on it while b blocks on ours.
                loop {
                    if let Some(q) = q2.lock().clone() {
                        let _ = q.dequeue();
                        return;
                    }
                    tfhpc_sim::des::current().unwrap().advance(0.001);
                }
            });
        }
        {
            let q1 = Arc::clone(&q1);
            let q2 = Arc::clone(&q2);
            sim.spawn("b", move || {
                let mine = tfhpc_core::FifoQueue::new("qb", 1);
                *q2.lock() = Some(Arc::clone(&mine));
                loop {
                    if let Some(q) = q1.lock().clone() {
                        let _ = q.dequeue();
                        return;
                    }
                    tfhpc_sim::des::current().unwrap().advance(0.001);
                }
            });
        }
        sim.run();
    });
    let err = result.expect_err("deadlock must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("deadlock"), "got: {msg}");
    assert!(msg.contains("waiting on"), "diagnostic dump missing: {msg}");
}

#[test]
fn k420_oom_on_oversized_working_set() {
    // A K420 exposes ~0.9 GB usable: a 512 MB x 2 + 512 MB matmul
    // working set cannot fit — the session must report OOM, mirroring
    // why the paper had to shrink K420 tiles.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("worker", 1, 1)],
        Protocol::Rdma,
    );
    let result = std::panic::catch_unwind(|| {
        launch(&cfg, |ctx| {
            let mut g = Graph::new();
            let n = 12000; // 12000^2 f32 = 576 MB per operand
            let a = g.constant(Tensor::synthetic(DType::F32, [n, n], 1));
            let b = g.constant(Tensor::synthetic(DType::F32, [n, n], 2));
            let c = g.with_device(Placement::Gpu(0), |g| g.matmul(a, b));
            let sess = ctx.server.session(Arc::new(g));
            sess.run(&[c], &[]).map(|_| ())
        })
        .unwrap();
    });
    let err = result.expect_err("OOM must abort the run");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("out of memory"), "got: {msg}");
}

#[test]
fn same_working_set_fits_on_k80() {
    // The identical graph runs fine on a 12 GB GK210.
    let cfg = LaunchConfig::simulated(
        tegner_k80(),
        vec![JobSpec::new("worker", 1, 1)],
        Protocol::Rdma,
    );
    launch(&cfg, |ctx| {
        let mut g = Graph::new();
        let n = 12000;
        let a = g.constant(Tensor::synthetic(DType::F32, [n, n], 1));
        let b = g.constant(Tensor::synthetic(DType::F32, [n, n], 2));
        let c = g.with_device(Placement::Gpu(0), |g| g.matmul(a, b));
        let sess = ctx.server.session(Arc::new(g));
        sess.run(&[c], &[]).map(|_| ())
    })
    .unwrap();
}

#[test]
fn gpu_oversubscription_rejected_at_launch() {
    // K420 nodes have one GPU; two GPUs per task cannot be satisfied.
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("worker", 2, 2)],
        Protocol::Rdma,
    );
    assert!(matches!(
        launch(&cfg, |_| Ok(())),
        Err(CoreError::Invalid(_))
    ));
}

#[test]
fn unfed_placeholder_and_bad_feed_shapes() {
    let mut g = Graph::new();
    let p = g.placeholder(DType::F64, Some([4].into()));
    let n = g.neg(p);
    let sess = Session::new(Arc::new(g), Resources::new(), DeviceCtx::real(0));
    assert!(matches!(sess.run(&[n], &[]), Err(CoreError::Graph(_))));
    let wrong_shape = Tensor::zeros(DType::F64, [5]);
    assert!(sess.run(&[n], &[(p, wrong_shape)]).is_err());
    let wrong_dtype = Tensor::zeros(DType::F32, [4]);
    assert!(sess.run(&[n], &[(p, wrong_dtype)]).is_err());
}

#[test]
fn pyfunc_graph_serialization_rejected() {
    let mut g = Graph::new();
    let a = g.constant(Tensor::scalar_f64(1.0));
    g.py_func("host", &[a], 1, 0.0, Arc::new(|_, i| Ok(i.to_vec())));
    assert!(tfhpc_core::graph_to_bytes(&g).is_err());
}

#[test]
fn missing_resources_reported_by_name() {
    let mut g = Graph::new();
    let v = g.var_read("not_created");
    let sess = Session::new(Arc::new(g), Resources::new(), DeviceCtx::real(0));
    match sess.run(&[v], &[]) {
        Err(CoreError::NotFound(msg)) => assert!(msg.contains("not_created")),
        other => panic!("expected NotFound, got {other:?}"),
    }
}
