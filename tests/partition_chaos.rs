//! Partition & overload robustness: split-brain fencing under network
//! partitions, exactly-once decider handoff, post-heal bit-identical
//! CG resume, dup/reorder delivery dedup, and breaker fast-fail.
//!
//! The invariants under test:
//!   * a minority-partitioned task self-fences (parks as `Fenced`)
//!     within the heartbeat timeout plus two monitor sweeps, and after
//!     partial restart **exactly one** incarnation executes each step —
//!     the superseded corpse never commits again (no split-brain);
//!   * a CG run that loses a worker to a partition window resumes
//!     after the heal to the bit-identical residual of the fault-free
//!     run, with zero gang restarts — fencing + retries absorb it;
//!   * a dup/reorder window delivers every enqueue twice on the wire
//!     but applies it exactly once at the queue;
//!   * an open circuit breaker fails fast — well under one retry
//!     backoff period — instead of burning the full retry schedule.
//!
//! The seeded tests honor `TFHPC_FAULT_SEED` (CI sweeps 17/42/1337).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use tfhpc_apps::{run_cg_supervised, run_cg_with_store, CgConfig, CgReduction, FaultSetup};
use tfhpc_core::{CoreError, RetryConfig};
use tfhpc_dist::{
    launch, BreakerConfig, BreakerSet, BreakerState, ClusterSpec, JobSpec, LaunchConfig, Liveness,
    Server, SupervisorConfig, TaskKey, TfCluster,
};
use tfhpc_sim::fault::FaultPlan;
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::tegner_k420;
use tfhpc_tensor::Tensor;

fn fault_seed() -> u64 {
    std::env::var("TFHPC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn retry_for(horizon_s: f64) -> RetryConfig {
    // Cumulative exponential backoff (base × 63 over 7 attempts) far
    // exceeds the widest partition window (≤ 35% of horizon), so ops
    // from the majority side ride out the fence instead of exhausting.
    RetryConfig::new(7, horizon_s * 0.05)
}

fn two_node_cluster() -> (Arc<TfCluster>, Arc<Server>, Arc<Server>) {
    let spec = ClusterSpec::new([
        ("ps".to_string(), vec!["a:8888".to_string()]),
        ("worker".to_string(), vec!["b:8888".to_string()]),
    ]);
    let cluster = TfCluster::new(spec, Protocol::Rdma, None);
    let ps = cluster.start_server(TaskKey::new("ps", 0), 0, vec![]);
    let worker = cluster.start_server(TaskKey::new("worker", 0), 1, vec![0]);
    (cluster, ps, worker)
}

/// A 3-task gang steps through a checkpointed loop while node 2 is cut
/// off by a symmetric partition. The minority task must self-fence
/// (never electing itself a decider), the liveness monitor must declare
/// it dead within the timeout + 2 sweeps, and the partial restart must
/// respawn it on a spare node — with every step executed by exactly
/// one incarnation.
#[test]
fn minority_partition_fences_exactly_one_decider() {
    const STEPS: usize = 40;
    const STEP_S: f64 = 0.005;
    const PART_AT: f64 = 0.05;
    const HB_PERIOD: f64 = 0.01;
    const HB_TIMEOUT: f64 = 0.04;

    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("worker", 3, 1)],
        Protocol::Rdma,
    )
    .with_faults(FaultPlan::new().partition(vec![vec![2]], PART_AT, 0.6))
    .with_supervisor(
        SupervisorConfig::restarting(2)
            .with_heartbeats(HB_PERIOD, HB_TIMEOUT)
            .with_partial_restart(["worker"])
            .with_spares(1),
    );

    // `committed[idx]` is the durable resume point; `log` records which
    // incarnation executed which step. A split-brain (fenced corpse
    // still deciding) would show up as a step executed twice.
    let committed: Arc<Mutex<HashMap<usize, usize>>> = Arc::new(Mutex::new(HashMap::new()));
    let log: Arc<Mutex<Vec<(usize, u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let committed2 = Arc::clone(&committed);
    let log2 = Arc::clone(&log);

    let out = launch(&cfg, move |ctx| {
        let me = tfhpc_sim::des::current().expect("simulated launch");
        let idx = ctx.index();
        let attempt = ctx.attempt();
        let mut step = committed2.lock().get(&idx).copied().unwrap_or(0);
        while step < STEPS {
            // The fence gate: a minority task parks here instead of
            // committing another step.
            ctx.check_faults()?;
            me.advance(STEP_S);
            log2.lock().push((idx, attempt, step));
            committed2.lock().insert(idx, step + 1);
            step += 1;
        }
        Ok(())
    })
    .unwrap();

    // The minority task fenced itself, within timeout + 2 sweeps of the
    // partition onset (step cadence granularity included).
    let fences = out.cluster.fence_events();
    assert!(!fences.is_empty(), "minority task never fenced");
    for f in &fences {
        assert_eq!(f.key, TaskKey::new("worker", 2));
        assert_eq!(f.node, 2);
    }
    let fence_bound = HB_TIMEOUT + 2.0 * HB_PERIOD + STEP_S;
    assert!(
        fences[0].at_s >= PART_AT - 1e-9 && fences[0].at_s - PART_AT <= fence_bound,
        "fence at t={:.4}, outside [{PART_AT}, {PART_AT} + {fence_bound}]",
        fences[0].at_s
    );

    // The monitor declared it dead from heartbeat silence on schedule.
    let membership = out.membership.as_ref().expect("heartbeats enabled");
    let death = membership
        .events()
        .into_iter()
        .find(|e| e.key == TaskKey::new("worker", 2) && e.to == Liveness::Dead)
        .expect("no death verdict for the partitioned task");
    assert!(
        death.at_s - PART_AT <= HB_TIMEOUT + 2.0 * HB_PERIOD + 1e-9,
        "death verdict at t={:.4} too late after onset t={PART_AT}",
        death.at_s
    );

    // Partial restart replaced it on the spare node (the majority
    // island), not its partitioned home.
    assert!(out.restarts >= 1, "no partial restart happened");
    assert_eq!(out.replacements.len(), 1);
    let (key, old_node, new_node) = &out.replacements[0];
    assert_eq!(key, &TaskKey::new("worker", 2));
    assert_eq!(*old_node, 2);
    assert_eq!(*new_node, 3, "replacement must land on the spare");

    // Exactly-once: every (task, step) pair executed by exactly one
    // incarnation, and the handoff is gapless and monotone.
    let log = log.lock();
    let mut seen = HashSet::new();
    for &(idx, _attempt, step) in log.iter() {
        assert!(
            seen.insert((idx, step)),
            "step {step} of worker {idx} executed twice — split-brain"
        );
    }
    assert_eq!(seen.len(), 3 * STEPS, "steps lost");
    let corpse_max = log
        .iter()
        .filter(|(i, a, _)| *i == 2 && *a == 0)
        .map(|&(_, _, s)| s)
        .max()
        .expect("attempt 0 of worker 2 ran");
    let heir_min = log
        .iter()
        .filter(|(i, a, _)| *i == 2 && *a == 1)
        .map(|&(_, _, s)| s)
        .min()
        .expect("attempt 1 of worker 2 ran");
    assert_eq!(
        heir_min,
        corpse_max + 1,
        "replacement resumed at the wrong step"
    );
}

/// CG with a worker node partitioned for a mid-run window: the fenced
/// worker parks until the heal, the majority's remote ops to it retry
/// across the window, and the final residual is bit-identical to the
/// fault-free run with zero gang restarts.
#[test]
fn cg_resumes_bit_identically_after_partition_heals() {
    let p = tegner_k420();
    let cfg = CgConfig {
        n: 256,
        workers: 2,
        iterations: 12,
        protocol: Protocol::Rdma,
        simulated: true,
        checkpoint_every: Some(4),
        resume: false,
        reduction: CgReduction::QueuePair,
    };
    let (clean, _) = run_cg_with_store(&p, &cfg, None).unwrap();
    let t = clean.elapsed_s;

    // Node 1 hosts CG worker 0 (the reducer sits on node 0): isolating
    // it guarantees a task that issues remote ops inside the window,
    // so the fence park is actually exercised.
    let plan = FaultPlan::new().partition(vec![vec![1]], 0.35 * t, 0.6 * t);
    let before = tfhpc_obs::global().counter("tfhpc_fenced_total").get();
    let faults = FaultSetup::new(plan, 2).with_retry(retry_for(t));
    let (faulted, _) = run_cg_supervised(&p, &cfg, &faults).unwrap();

    assert!(
        tfhpc_obs::global().counter("tfhpc_fenced_total").get() > before,
        "the minority worker never entered the quorum fence"
    );
    assert_eq!(
        faulted.restarts, 0,
        "fence + retries should absorb the partition without a gang restart"
    );
    assert_eq!(
        faulted.rs_final.to_bits(),
        clean.rs_final.to_bits(),
        "post-heal residual drifted: {} vs clean {}",
        faulted.rs_final,
        clean.rs_final
    );
}

/// Same bit-identity invariant under the *seeded* composite plan
/// (minority split plus optional blackhole and dup/reorder windows,
/// drawn from `TFHPC_FAULT_SEED`).
#[test]
fn cg_survives_seeded_partition_plan() {
    let p = tegner_k420();
    let cfg = CgConfig {
        n: 256,
        workers: 2,
        iterations: 12,
        protocol: Protocol::Rdma,
        simulated: true,
        checkpoint_every: Some(4),
        resume: false,
        reduction: CgReduction::QueuePair,
    };
    let (clean, _) = run_cg_with_store(&p, &cfg, None).unwrap();
    let t = clean.elapsed_s;

    let plan = FaultPlan::seeded_partition(fault_seed(), 3, t);
    assert!(plan.has_partition_events(), "seeded plan must partition");
    let faults = FaultSetup::new(plan, 4).with_retry(retry_for(t));
    let (faulted, _) = run_cg_supervised(&p, &cfg, &faults).unwrap();

    assert_eq!(
        faulted.rs_final.to_bits(),
        clean.rs_final.to_bits(),
        "seeded-partition residual drifted (seed {})",
        fault_seed()
    );
}

/// A dup/reorder window on the sender delivers each enqueue frame
/// twice; the receiver's dedup ledger must apply it exactly once, and
/// export the suppressed duplicates.
#[test]
fn dup_window_never_double_applies_enqueue() {
    let (cluster, ps, worker) = two_node_cluster();
    cluster.set_faults(Some(Arc::new(FaultPlan::new().dup_reorder(1, 0.0, 1e9))));
    let q = ps.resources.create_queue("inbox", 8);

    let before = tfhpc_obs::global().counter("tfhpc_dup_dropped_total").get();
    for i in 0..3 {
        worker
            .remote_enqueue(
                &TaskKey::new("ps", 0),
                "inbox",
                vec![Tensor::scalar_i64(i)],
                None,
            )
            .unwrap();
    }

    // Three sends, each delivered twice on the wire — but the queue
    // holds exactly three elements.
    assert_eq!(q.len(), 3, "duplicate delivery was applied");
    assert!(
        tfhpc_obs::global().counter("tfhpc_dup_dropped_total").get() - before >= 3,
        "suppressed duplicates were not counted"
    );
    for _ in 0..3 {
        assert!(q.try_dequeue().unwrap().is_some());
    }
    assert!(q.try_dequeue().unwrap().is_none(), "ghost element queued");
}

/// Once the per-destination breaker opens, calls must fail fast with
/// `ResourceExhausted` — strictly under one retry backoff period —
/// instead of re-walking the whole retry schedule against a dead
/// route.
#[test]
fn breaker_open_fails_fast() {
    const BACKOFF_S: f64 = 0.2;
    let (cluster, _ps, worker) = two_node_cluster();
    // A permanent total partition: every remote op is doomed.
    cluster.set_faults(Some(Arc::new(FaultPlan::new().partition(
        vec![vec![1]],
        0.0,
        1e9,
    ))));
    cluster.set_retry(RetryConfig::new(3, BACKOFF_S));
    let breakers = Arc::new(BreakerSet::new(BreakerConfig::new(1, 30.0)));
    cluster.set_breakers(Some(Arc::clone(&breakers)));
    let ps_key = TaskKey::new("ps", 0);

    // First call: the transient failure trips the breaker (threshold
    // 1); the next admission check inside the retry loop then fails
    // fast and non-transiently.
    let e1 = worker.remote_var_read(&ps_key, "v", None).unwrap_err();
    assert!(
        matches!(e1, CoreError::ResourceExhausted(_)),
        "expected breaker rejection, got: {e1}"
    );
    assert_eq!(breakers.state(&ps_key), BreakerState::Open);
    assert_eq!(breakers.total_trips(), 1);

    // Second call: rejected at admission before any backoff sleep.
    let t0 = std::time::Instant::now();
    let e2 = worker.remote_var_read(&ps_key, "v", None).unwrap_err();
    let elapsed = t0.elapsed().as_secs_f64();
    assert!(
        matches!(e2, CoreError::ResourceExhausted(_)),
        "expected breaker rejection, got: {e2}"
    );
    assert!(
        elapsed < BACKOFF_S,
        "breaker-open call took {elapsed:.3}s — at least one full backoff period, not a fast-fail"
    );
    assert_eq!(breakers.total_trips(), 1, "fast-fail must not re-trip");
}
