//! Concurrency coverage for the inter-op dataflow scheduler: overlap of
//! independent ops, control-dependency ordering, determinism across
//! thread counts, and clean error propagation mid-graph.

use std::sync::Arc;
use tfhpc_core::{
    CoreError, DeviceCtx, Graph, NodeId, Resources, Session, SessionOptions, Timeline,
};
use tfhpc_tensor::{rng, DType, Tensor};

fn options(inter: usize) -> SessionOptions {
    SessionOptions {
        inter_op_threads: inter,
        // Pinned so kernels are single-threaded: inter-op overlap is
        // the variable under test, and float reductions stay bitwise
        // reproducible.
        intra_op_threads: 1,
        ..SessionOptions::default()
    }
}

fn session_with(g: Graph, inter: usize) -> Session {
    Session::with_options(
        Arc::new(g),
        Resources::new(),
        DeviceCtx::real(0),
        options(inter),
    )
}

/// Eight independent MatMuls on four inter-op threads must produce
/// overlapping Timeline intervals — the scheduler actually runs
/// independent nodes concurrently, not merely out of order.
#[test]
fn independent_matmuls_overlap_on_timeline() {
    let n = 128usize;
    let mut g = Graph::new();
    let fetches: Vec<NodeId> = (0..8)
        .map(|i| {
            let a = g.constant(rng::random_uniform(DType::F64, [n, n], 2 * i + 1).unwrap());
            let b = g.constant(rng::random_uniform(DType::F64, [n, n], 2 * i + 2).unwrap());
            g.matmul(a, b)
        })
        .collect();
    let mut sess = session_with(g, 4);
    let timeline = Arc::new(Timeline::new());
    sess.set_timeline(Arc::clone(&timeline));
    sess.run(&fetches, &[]).unwrap();

    let events = timeline.events();
    let matmuls: Vec<_> = events
        .iter()
        .filter(|e| e.name.contains("MatMul"))
        .collect();
    assert_eq!(matmuls.len(), 8);
    let mut overlapping_pairs = 0usize;
    for i in 0..matmuls.len() {
        for j in i + 1..matmuls.len() {
            if matmuls[i].overlaps(matmuls[j]) {
                overlapping_pairs += 1;
            }
        }
    }
    assert!(
        overlapping_pairs > 0,
        "expected concurrent MatMul intervals with inter_op_threads=4, got none \
         over {} events",
        events.len()
    );
}

/// Control dependencies must order side effects under the parallel
/// scheduler exactly as they do sequentially: each read observes every
/// increment it is control-gated behind, on all thread counts.
#[test]
fn control_dependencies_order_side_effects_in_parallel() {
    for inter in [1usize, 4] {
        let mut g = Graph::new();
        let one = g.constant(Tensor::scalar_f64(1.0));
        // A chain of three increments; the read is gated behind all of
        // them, and each increment behind the previous one.
        let bump1 = g.assign_add("ctr", one);
        let bump2 = g.assign_add("ctr", one);
        let bump3 = g.assign_add("ctr", one);
        g.add_control(bump2, bump1).unwrap();
        g.add_control(bump3, bump2).unwrap();
        let read = g.var_read("ctr");
        g.add_control(read, bump3).unwrap();
        // Parallel noise around the chain: independent work that the
        // scheduler is free to interleave.
        let noise: Vec<NodeId> = (0..6)
            .map(|i| {
                let c = g.constant(rng::random_uniform(DType::F64, [64, 64], i + 10).unwrap());
                g.matmul(c, c)
            })
            .collect();
        let sess = session_with(g, inter);
        sess.resources()
            .create_variable("ctr", Tensor::scalar_f64(0.0));
        let mut fetches = vec![read];
        fetches.extend(noise);
        let out = sess.run(&fetches, &[]).unwrap();
        assert_eq!(
            out[0].scalar_value_f64().unwrap(),
            3.0,
            "read must observe all 3 control-gated increments (inter={inter})"
        );
    }
}

/// Fetch values must be identical whether the graph runs on one or four
/// inter-op threads (intra-op pinned to 1 so reductions are bitwise
/// stable).
#[test]
fn fetches_are_deterministic_across_thread_counts() {
    let build = || {
        let mut g = Graph::new();
        let fetches: Vec<NodeId> = (0..6)
            .map(|i| {
                let a = g.constant(rng::random_uniform(DType::F64, [48, 48], 7 * i + 1).unwrap());
                let b = g.constant(rng::random_uniform(DType::F64, [48, 48], 7 * i + 2).unwrap());
                let m = g.matmul(a, b);
                let s = g.sum(m);
                g.sqrt(s)
            })
            .collect();
        (g, fetches)
    };
    let run = |inter: usize| -> Vec<Vec<f64>> {
        let (g, fetches) = build();
        let sess = session_with(g, inter);
        sess.run(&fetches, &[])
            .unwrap()
            .iter()
            .map(|t| t.as_f64().unwrap().to_vec())
            .collect()
    };
    assert_eq!(run(1), run(4));
}

/// A kernel error mid-graph (reading a variable that does not exist)
/// must cancel the run cleanly: the error surfaces, no panic, and the
/// session stays usable for subsequent runs.
#[test]
fn mid_graph_error_cancels_cleanly() {
    let mut g = Graph::new();
    // Plenty of healthy work in flight around the failing node.
    let healthy: Vec<NodeId> = (0..6)
        .map(|i| {
            let c = g.constant(rng::random_uniform(DType::F64, [96, 96], i + 1).unwrap());
            g.matmul(c, c)
        })
        .collect();
    let bad = g.var_read("does_not_exist");
    let sess = session_with(g, 4);

    let mut fetches = healthy.clone();
    fetches.push(bad);
    match sess.run(&fetches, &[]) {
        Err(CoreError::NotFound(_)) => {}
        other => panic!("expected NotFound for missing variable, got {other:?}"),
    }

    // The session is not poisoned: the healthy subset still runs.
    let out = sess.run(&healthy, &[]).unwrap();
    assert_eq!(out.len(), 6);
    for t in &out {
        assert_eq!(t.shape().dims(), &[96, 96]);
    }
}

/// RunMetadata counters must agree between executors: same ops, same
/// bytes, regardless of scheduling.
#[test]
fn run_metadata_agrees_across_executors() {
    let build = || {
        let mut g = Graph::new();
        let fetches: Vec<NodeId> = (0..5)
            .map(|i| {
                let c = g.constant(Tensor::from_f64([32], vec![i as f64; 32]).unwrap());
                let n1 = g.neg(c);
                g.add(n1, c)
            })
            .collect();
        (g, fetches)
    };
    let run = |inter: usize| {
        let (g, fetches) = build();
        let sess = session_with(g, inter);
        let (_, meta) = sess.run_with_metadata(&fetches, &[]).unwrap();
        (meta.ops_executed, meta.output_bytes, meta.kernel_seconds)
    };
    let (seq_ops, seq_bytes, seq_kernel) = run(1);
    let (par_ops, par_bytes, par_kernel) = run(4);
    assert_eq!(seq_ops, par_ops);
    assert_eq!(seq_bytes, par_bytes);
    // Real mode charges no modeled kernel time on either path.
    assert_eq!(seq_kernel, 0.0);
    assert_eq!(par_kernel, 0.0);
}
