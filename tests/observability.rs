//! Observability integration: the subsystem must be invisible to the
//! numerics (byte-identical solver results and per-run stats whether or
//! not sinks/tracing are enabled) while exposing a parseable Prometheus
//! snapshot and a Chrome trace covering queue depths, link bytes and
//! retry counters.

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;
use tfhpc_apps::cg::{run_cg, run_cg_traced, CgConfig, CgReduction};
use tfhpc_core::{Graph, SessionOptions};
use tfhpc_dist::{launch, JobSpec, LaunchConfig, TaskKey};
use tfhpc_obs::json::{self, JsonValue};
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::{tegner_k420, tegner_k80};
use tfhpc_tensor::Tensor;

fn cg_cfg() -> CgConfig {
    CgConfig {
        n: 2048,
        workers: 2,
        iterations: 5,
        protocol: Protocol::Rdma,
        simulated: true,
        checkpoint_every: None,
        resume: false,
        reduction: CgReduction::QueuePair,
    }
}

#[test]
fn cg_results_identical_with_and_without_observability() {
    let cfg = cg_cfg();
    let plain = run_cg(&tegner_k80(), &cfg).expect("plain run");
    let (traced, json) = run_cg_traced(&tegner_k80(), &cfg).expect("traced run");
    // Observability on (DES tracing + global tracer recording every
    // span, flow and queue counter) must not move a single bit of the
    // solver's outputs or its virtual timing.
    assert_eq!(plain.rs_final.to_bits(), traced.rs_final.to_bits());
    assert_eq!(plain.elapsed_s.to_bits(), traced.elapsed_s.to_bits());
    assert_eq!(plain.gflops.to_bits(), traced.gflops.to_bits());
    assert!(!json.is_empty());
}

#[test]
fn traced_cg_trace_parses_with_spans_flows_and_queue_depths() {
    let (_report, json) = run_cg_traced(&tegner_k80(), &cg_cfg()).expect("traced run");
    let doc = json::parse(&json).expect("trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    let name = |e: &JsonValue| e.get("name").and_then(JsonValue::as_str).map(String::from);
    let ph = |e: &JsonValue| e.get("ph").and_then(JsonValue::as_str).map(String::from);
    // Nested iteration/phase spans from the structured tracer.
    assert!(
        events
            .iter()
            .any(|e| name(e).as_deref() == Some("cg.iteration") && ph(e).as_deref() == Some("X")),
        "no cg.iteration span in the merged trace"
    );
    assert!(events
        .iter()
        .any(|e| name(e).as_deref() == Some("cg.reduce.pap")));
    // Queue depth counter samples.
    assert!(
        events.iter().any(|e| ph(e).as_deref() == Some("C")
            && name(e).is_some_and(|n| n.starts_with("queue.") && n.ends_with(".depth"))),
        "no queue depth counter events"
    );
    // Queue flow events stitching enqueue→dequeue across tasks.
    let starts = events
        .iter()
        .filter(|e| ph(e).as_deref() == Some("s"))
        .count();
    let ends = events
        .iter()
        .filter(|e| ph(e).as_deref() == Some("f"))
        .count();
    assert!(
        starts > 0 && ends > 0,
        "flow events missing: {starts} s / {ends} f"
    );
    // DES occupancy rows are merged into the same document.
    assert!(
        events
            .iter()
            .any(|e| e.get("tid").and_then(JsonValue::as_str) == Some("/job:reducer/task:0")),
        "DES task rows missing from the merged trace"
    );
}

#[test]
fn prometheus_snapshot_covers_queues_links_and_retries() {
    run_cg(&tegner_k80(), &cg_cfg()).expect("sim run");
    let text = tfhpc_obs::global().to_prometheus();
    for needle in [
        "# TYPE tfhpc_queue_enqueued_total counter",
        "# TYPE tfhpc_queue_depth gauge",
        "# TYPE tfhpc_queue_residency_seconds histogram",
        "tfhpc_queue_residency_seconds_bucket",
        "tfhpc_link_bytes_total{protocol=\"RDMA\"}",
        "tfhpc_link_messages_total{protocol=\"RDMA\"}",
        "tfhpc_retries_total",
        "tfhpc_ops_executed_total",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    // And the JSON exposition of the same registry parses.
    let doc = json::parse(&tfhpc_obs::global().to_json()).expect("metrics JSON parses");
    assert!(doc.get("tfhpc_ops_executed_total").is_some());
}

/// One simulated run of a two-job pipeline whose sink drives a session
/// with per-run `StepStats`; returns the concatenated Debug rendering
/// of every run's stats (ops, queues, links, retries — including f64
/// device times and residencies).
fn step_stats_fingerprint() -> String {
    let cfg = LaunchConfig::simulated(
        tegner_k420(),
        vec![JobSpec::new("sink", 1, 0), JobSpec::new("source", 2, 1)],
        Protocol::Rdma,
    );
    let out = Arc::new(Mutex::new(String::new()));
    let out2 = Arc::clone(&out);
    launch(&cfg, move |ctx| {
        if ctx.job() == "sink" {
            ctx.server.resources.create_queue("data", 4);
            let mut g = Graph::new();
            let deq = g.queue_dequeue("data", 1);
            let n = g.neg(deq[0]);
            let sess = ctx
                .server
                .session_with_options(Arc::new(g), SessionOptions::from_env().unwrap());
            let mut all = String::new();
            for _ in 0..4 {
                let (_, md) = sess.run_with_metadata(&[n], &[])?;
                let _ = writeln!(all, "{:?}", md.step_stats);
            }
            *out2.lock() = all;
            Ok(())
        } else {
            for k in 0..2u64 {
                let t = Tensor::synthetic(
                    tfhpc_tensor::DType::F64,
                    [1 << 16],
                    (ctx.index() as u64) << 8 | k,
                );
                ctx.server
                    .remote_enqueue(&TaskKey::new("sink", 0), "data", vec![t], Some(0))?;
            }
            Ok(())
        }
    })
    .expect("launch");
    let s = out.lock().clone();
    assert!(!s.is_empty());
    s
}

#[test]
fn sim_step_stats_are_byte_deterministic_across_identical_runs() {
    let a = step_stats_fingerprint();
    let b = step_stats_fingerprint();
    assert_eq!(a, b, "StepStats diverged between identical sim runs");
    // The fingerprint actually covers the interesting fields.
    assert!(a.contains("OpStat"), "{a}");
    assert!(a.contains("QueueStat"), "{a}");
    assert!(a.contains("LinkStat"), "{a}");
}
