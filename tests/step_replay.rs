//! Step-replay fast path: memoized execution plans + in-place buffer
//! forwarding. Covers plan-cache hit/miss accounting and generation
//! invalidation, per-signature plan separation, bit-identity of the
//! cached/forwarding executor against the rebuild-every-step path
//! (session-level, across the paper's apps in both execution modes,
//! observability on and off, and under a seeded fault schedule), and
//! the forwarding safety invariant: an in-place kernel never mutates a
//! buffer a variable, a queue or a rendezvous table still references.
//!
//! The seeded test honors `TFHPC_FAULT_SEED` (CI sweeps 17/42/1337).

use std::sync::Arc;
use tfhpc_apps::cg::gather_solution;
use tfhpc_apps::{
    run_cg_supervised, run_cg_with_store, run_fft, run_matmul, run_stream, CgConfig, CgReduction,
    FaultSetup, FftConfig, MatmulConfig, StreamConfig,
};
use tfhpc_core::{DeviceCtx, Graph, Resources, RetryConfig, Session, SessionOptions};
use tfhpc_dist::{recv, send, ClusterSpec, RendezvousKey, TaskKey, TfCluster};
use tfhpc_sim::fault::FaultPlan;
use tfhpc_sim::net::Protocol;
use tfhpc_sim::platform::{tegner_k420, tegner_k80};
use tfhpc_tensor::{ops, rng, DType, Shape, Tensor};

fn session_for(g: Arc<Graph>, step_replay: bool) -> Session {
    Session::with_options(
        g,
        Resources::new(),
        DeviceCtx::real(0),
        SessionOptions {
            inter_op_threads: 1,
            // Single-threaded kernels keep float reductions bitwise
            // reproducible across the two executors under test.
            intra_op_threads: 1,
            step_replay,
            ..SessionOptions::default()
        },
    )
}

fn vec_f64(n: usize, seed: u64) -> Tensor {
    rng::random_uniform(DType::F64, [n], seed).unwrap()
}

#[test]
fn plan_cache_hits_and_graph_mutation_invalidates() {
    let mut gb = Graph::new();
    let a = gb.constant(vec_f64(32, 1));
    let b = gb.constant(vec_f64(32, 2));
    let c = gb.add(a, b);
    let d = gb.scale(c, 2.0);
    let g = Arc::new(gb);
    let s = session_for(Arc::clone(&g), true);

    let r1 = s.run(&[d], &[]).unwrap();
    let r2 = s.run(&[d], &[]).unwrap();
    assert_eq!(s.plan_cache_stats(), (1, 1), "second run must hit");

    // Out-of-band mutation: the stamped generation goes stale and the
    // next run rebuilds, after which the fresh plan is cached again.
    g.invalidate_plans();
    let r3 = s.run(&[d], &[]).unwrap();
    assert_eq!(s.plan_cache_stats(), (1, 2), "stale plan must rebuild");
    let r4 = s.run(&[d], &[]).unwrap();
    assert_eq!(s.plan_cache_stats(), (2, 2));

    for r in [&r2, &r3, &r4] {
        assert_eq!(
            r[0].as_f64().unwrap(),
            r1[0].as_f64().unwrap(),
            "cache churn must not change results"
        );
    }
}

#[test]
fn replay_disabled_rebuilds_every_step() {
    let mut gb = Graph::new();
    let a = gb.constant(vec_f64(8, 3));
    let b = gb.neg(a);
    let s = session_for(Arc::new(gb), false);
    for _ in 0..3 {
        s.run(&[b], &[]).unwrap();
    }
    assert_eq!(
        s.plan_cache_stats(),
        (0, 3),
        "step_replay off must never hit the plan cache"
    );
}

#[test]
fn distinct_run_signatures_get_distinct_plans() {
    let mut gb = Graph::new();
    let p = gb.placeholder(DType::F64, Some(Shape::vector(16)));
    let q = gb.placeholder(DType::F64, Some(Shape::vector(16)));
    let sum = gb.add(p, q);
    let scaled = gb.scale(sum, 3.0);
    let s = session_for(Arc::new(gb), true);

    let x = vec_f64(16, 10);
    let y = vec_f64(16, 11);
    let feeds = [(p, x.clone()), (q, y.clone())];

    // Three signatures: fetch {sum}, fetch {scaled}, fetch {sum} with a
    // larger feed set. Each gets its own cached plan; repeats hit.
    s.run(&[sum], &feeds).unwrap();
    s.run(&[sum], &feeds).unwrap();
    s.run(&[scaled], &feeds).unwrap();
    s.run(&[scaled], &feeds).unwrap();
    assert_eq!(s.plan_cache_stats(), (2, 2));

    let mut gb2 = Graph::new();
    let p2 = gb2.placeholder(DType::F64, Some(Shape::vector(16)));
    let q2 = gb2.placeholder(DType::F64, Some(Shape::vector(16)));
    let c2 = gb2.add(p2, p2);
    let _ = q2;
    let s2 = session_for(Arc::new(gb2), true);
    // Same fetch, different feed-node sets: the unused extra feed still
    // changes the run signature, so a separate plan is built.
    s2.run(&[c2], &[(p2, x.clone())]).unwrap();
    s2.run(&[c2], &[(p2, x.clone()), (q2, y.clone())]).unwrap();
    assert_eq!(s2.plan_cache_stats(), (0, 2));
    s2.run(&[c2], &[(p2, x)]).unwrap();
    assert_eq!(s2.plan_cache_stats(), (1, 2));
}

/// A CG-shaped elementwise mix (shared operands, an intermediate that
/// is both fetched and consumed downstream, duplicate fetches) run for
/// several steps through both executors: every fetched tensor must
/// match bit for bit.
#[test]
fn cached_forwarding_executor_is_bit_identical_to_naive() {
    let build = || {
        let mut gb = Graph::new();
        let x = gb.placeholder(DType::F64, Some(Shape::vector(256)));
        let y = gb.placeholder(DType::F64, Some(Shape::vector(256)));
        let t1 = gb.add(x, y);
        let t2 = gb.mul(t1, x);
        let t3 = gb.neg(t2);
        let t4 = gb.scale(t1, 0.5);
        let t5 = gb.sub(t3, t4);
        let t6 = gb.add_n(&[t1, t3, t5]);
        let t7 = gb.dot(t6, t6);
        (gb, x, y, vec![t4, t6, t6, t7])
    };
    let (g1, x1, y1, f1) = build();
    let (g2, x2, y2, f2) = build();
    let fast = session_for(Arc::new(g1), true);
    let naive = session_for(Arc::new(g2), false);

    for step in 0..5u64 {
        let xv = vec_f64(256, 100 + step);
        let yv = vec_f64(256, 200 + step);
        let a = fast
            .run(&f1, &[(x1, xv.clone()), (y1, yv.clone())])
            .unwrap();
        let b = naive.run(&f2, &[(x2, xv), (y2, yv)]).unwrap();
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.iter().zip(&b) {
            let (va, vb) = (ta.as_f64().unwrap(), tb.as_f64().unwrap());
            assert_eq!(va.len(), vb.len());
            for (ea, eb) in va.iter().zip(vb) {
                assert_eq!(ea.to_bits(), eb.to_bits(), "step {step} diverged");
            }
        }
    }
    let (hits, misses) = fast.plan_cache_stats();
    assert_eq!((hits, misses), (4, 1), "steady state must replay the plan");
}

#[test]
fn forwarding_never_aliases_variable_storage() {
    let mut gb = Graph::new();
    let r = gb.var_read("v");
    // The read is this run's last (only) consumer of the variable's
    // tensor — forwarding hands it to scale_owned by value, but the
    // store still holds a reference, so the kernel must copy.
    let doubled = gb.scale(r, 2.0);
    let s = session_for(Arc::new(gb), true);
    s.resources()
        .create_variable("v", Tensor::from_f64([8], vec![1.0; 8]).unwrap());
    let held = s.resources().variable("v").unwrap().read();

    let out = s.run(&[doubled], &[]).unwrap();
    assert_eq!(out[0].as_f64().unwrap(), &[2.0; 8]);
    let after = s.resources().variable("v").unwrap().read();
    assert_eq!(
        after.as_f64().unwrap(),
        &[1.0; 8],
        "variable mutated in place"
    );
    assert_eq!(
        after.dense_ptr(),
        held.dense_ptr(),
        "variable storage must be untouched"
    );
    assert_ne!(
        out[0].dense_ptr(),
        held.dense_ptr(),
        "forwarded result must not share the variable's buffer"
    );
}

#[test]
fn forwarding_never_aliases_queued_tensors() {
    let mut gb = Graph::new();
    let c = gb.constant(Tensor::from_f64([4], vec![1.0, 2.0, 3.0, 4.0]).unwrap());
    let enq = gb.queue_enqueue("q", &[c]);
    let tripled = gb.scale(c, 3.0);
    let s = session_for(Arc::new(gb), true);
    s.resources().create_queue("q", 8);

    s.run_no_fetch(&[enq, tripled], &[]).unwrap();
    s.run_no_fetch(&[enq, tripled], &[]).unwrap();
    let q = s.resources().queue("q").unwrap();
    for _ in 0..2 {
        let tuple = q.dequeue().unwrap();
        assert_eq!(
            tuple[0].as_f64().unwrap(),
            &[1.0, 2.0, 3.0, 4.0],
            "queued tensor was mutated by an in-place consumer"
        );
    }
}

#[test]
fn forwarding_never_aliases_rendezvous_held_tensors() {
    let spec = ClusterSpec::new([
        ("a".to_string(), vec!["a:1".to_string()]),
        ("b".to_string(), vec!["b:1".to_string()]),
    ]);
    let c = TfCluster::new(spec, Protocol::Rdma, None);
    let a = c.start_server(TaskKey::new("a", 0), 0, vec![]);
    let b = c.start_server(TaskKey::new("b", 0), 1, vec![]);
    let key = RendezvousKey::new(a.key.clone(), b.key.clone(), "x", 0);

    let v = Tensor::from_f64([4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
    send(&a, &key, v.clone(), None).unwrap();
    // The rendezvous table still references `v`'s buffer; the owned
    // kernel must fall back to a copy rather than scaling in place.
    let doubled = ops::scale_owned(v, 2.0).unwrap();
    let got = recv(&b, &key, None).unwrap();
    assert_eq!(got.as_f64().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    assert_eq!(doubled.as_f64().unwrap(), &[2.0, 4.0, 6.0, 8.0]);
    assert_ne!(got.dense_ptr(), doubled.dense_ptr());
}

/// One test (not several) flips the process-global `TFHPC_STEP_REPLAY`
/// switch, so concurrently running tests never observe a transient
/// value. Covers: all four apps in sim mode (virtual times and results
/// bit-identical with replay on/off, trace sink on and off), real-mode
/// CG solutions bit-identical, and a seeded transient-fault CG run
/// (`TFHPC_FAULT_SEED` sweep) equal across both executors.
#[test]
fn apps_bit_identical_with_replay_on_and_off() {
    let p80 = tegner_k80();
    let cg_cfg = CgConfig {
        n: 64,
        workers: 2,
        iterations: 6,
        protocol: Protocol::Rdma,
        simulated: true,
        checkpoint_every: None,
        resume: false,
        reduction: CgReduction::QueuePair,
    };
    let sim_sweep = || {
        let (cg, _) = run_cg_with_store(&p80, &cg_cfg, None).unwrap();
        let mm = run_matmul(
            &p80,
            &MatmulConfig {
                n: 16384,
                tile: 8192,
                workers: 2,
                reducers: 1,
                protocol: Protocol::Rdma,
                simulated: true,
                prefetch: 2,
            },
        )
        .unwrap();
        let ff = run_fft(
            &p80,
            &FftConfig {
                log2_n: 20,
                tiles: 4,
                workers: 2,
                protocol: Protocol::Rdma,
                simulated: true,
                merge_cost_factor: 0.0,
            },
        )
        .unwrap();
        let st = run_stream(
            &p80,
            &StreamConfig {
                size_bytes: 1 << 20,
                invocations: 4,
                on_gpu: true,
                protocol: Protocol::Rdma,
                simulated: true,
            },
        )
        .unwrap();
        [
            cg.elapsed_s.to_bits(),
            cg.rs_final.to_bits(),
            cg.gflops.to_bits(),
            mm.elapsed_s.to_bits(),
            mm.gflops.to_bits(),
            ff.collect_s.to_bits(),
            ff.total_s.to_bits(),
            st.elapsed_s.to_bits(),
            st.mbs.to_bits(),
        ]
    };
    let real_cg = || {
        let cfg = CgConfig {
            simulated: false,
            ..cg_cfg.clone()
        };
        let (r, store) = run_cg_with_store(&p80, &cfg, None).unwrap();
        let x = gather_solution(&store, &cfg).unwrap();
        let bits: Vec<u64> = x.as_f64().unwrap().iter().map(|v| v.to_bits()).collect();
        (r.rs_final.to_bits(), bits)
    };
    let seeded_faults = || {
        let seed: u64 = std::env::var("TFHPC_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        let p = tegner_k420();
        let cfg = CgConfig {
            n: 128,
            workers: 2,
            iterations: 8,
            protocol: Protocol::Rdma,
            simulated: true,
            checkpoint_every: Some(4),
            resume: false,
            reduction: CgReduction::QueuePair,
        };
        let (clean, _) = run_cg_with_store(&p, &cfg, None).unwrap();
        let plan = FaultPlan::seeded(seed, 3, clean.elapsed_s);
        let setup =
            FaultSetup::new(plan, 0).with_retry(RetryConfig::new(10, clean.elapsed_s * 0.05));
        let (r, _) = run_cg_supervised(&p, &cfg, &setup).unwrap();
        (r.rs_final.to_bits(), r.elapsed_s.to_bits(), r.restarts)
    };

    std::env::set_var("TFHPC_STEP_REPLAY", "1");
    let sim_on = sim_sweep();
    let real_on = real_cg();
    let fault_on = seeded_faults();

    // Trace sink on for the replay-off pass: observability must not
    // perturb results either.
    tfhpc_obs::trace::global().enable();
    std::env::set_var("TFHPC_STEP_REPLAY", "off");
    let sim_off = sim_sweep();
    let real_off = real_cg();
    let fault_off = seeded_faults();
    tfhpc_obs::trace::global().disable();
    std::env::remove_var("TFHPC_STEP_REPLAY");

    assert_eq!(
        sim_on, sim_off,
        "sim-mode reports diverged across executors"
    );
    assert_eq!(real_on, real_off, "real-mode CG solution diverged");
    assert_eq!(fault_on, fault_off, "seeded fault run diverged");
}
